"""Wire protocol: newline-delimited JSON over TCP (version 1).

Every message is one JSON object on one ``\\n``-terminated line, UTF-8
encoded.  Requests carry an ``op`` and an optional ``id`` the server
echoes back, so clients can match responses while unsolicited pushes
(results, alerts) interleave freely.

Client -> server requests::

    {"op": "hello", "id": 1, "backpressure": "shed-newest"?}
    {"op": "register", "id": 2, "name": "q1", "query": "select ...",
     "fit": {"attrs": ["x"], "key_fields": ["id"], "constants": []}?}
    {"op": "subscribe", "id": 3, "query": "q1",
     "mode": "continuous"|"discrete", "error_bound": 0.05?}
    {"op": "unsubscribe", "id": 4, "subscription": 7}
    {"op": "attach", "id": 9, "subscription": 7, "from_cursor": 42?}
    {"op": "ingest", "id": 5, "stream": "objects",
     "tuples": [{"time": 0.0, "id": "a", "x": 1.5}, ...]}
    {"op": "flush", "id": 6}
    {"op": "stats", "id": 7}

Server -> client responses (``id`` echoed) and pushes (no ``id``)::

    {"type": "hello", "id": 1, "server": "pulse-repro", "protocol": 1,
     "queries": [...], "streams": [...]}
    {"type": "ack", "id": ..., ...op-specific fields...}
    {"type": "error", "id": ..., "code": "protocol"|"plan"|"server",
     "error": "..."}
    {"type": "result", "subscription": 7, "query": "q1",
     "mode": "continuous", "graph": "q1~c", "seq": 0, "cursor": 0,
     "results": [...]}
    {"type": "alert", "kind": "slow_solve", ...}
    {"type": "backpressure", "policy": ..., "shed": n, "blocked": n,
     "dropped_results": n}
    {"type": "breaker", "open": [["q1", ["key"]], ...]}

Subscriptions to one query share a single operator graph (the ``ack``
names it in ``graph`` and reports the graph's current ``solve_bound``
next to the subscription's own ``error_bound``); each ``result`` push
carries the subscription id plus that subscription's ``cursor`` — its
durable per-subscription delivery offset.  ``attach`` re-binds a
subscription that survived a server restart (sessions are ephemeral;
subscriptions and their cursors are durable) to the calling session.

**Fleet fields.**  Multi-node deployments put the router
(:mod:`.router`) between clients and N key-partitioned worker
servers; the fields that exist for its sake are usable by any client:

* ``attach`` may carry ``from_cursor``; against a server running with
  result retention (``retain_results``), the ack then carries
  ``replayed`` — the serialized outputs at cursor positions
  ``[from_cursor, cursor)``, re-delivered so a delivery stream torn by
  a crash resumes with no gap.  ``from_cursor`` older than the
  retention window is a typed ``plan`` error, never a silent gap.
* The router's own ``hello`` ack adds ``workers`` (fleet width) and
  ``role: "router"``; its ``result`` pushes carry ``seq`` — the
  router-merged global result sequence for that subscription.

Results are serialized segments in continuous mode (``key``,
``t_start``, ``t_end``, ``models`` mapping attribute -> ascending
coefficient list, ``constants``) and plain tuple objects in discrete
mode.  JSON floats round-trip exactly (``repr`` precision), which is
what makes the loopback parity tests bit-exact.

**The finite boundary.**  Python's ``json`` parses the non-standard
``NaN`` / ``Infinity`` / ``-Infinity`` literals into non-finite floats
by default, so the moment tuples arrive off the wire the replay bug
fixed in :func:`repro.workloads.replay.read_trace` would become
remotely triggerable.  :func:`validate_tuple` applies the same rule:
non-finite numerics are malformed, the tuple is rejected and counted,
and the engine never sees it.  On the way out, :func:`encode` sets
``allow_nan=False`` so a non-finite value can never be *emitted*
silently either — the engine's own guards make that unreachable, and
if they ever regress the server fails loudly instead of shipping
``NaN`` to clients.
"""

from __future__ import annotations

import json
import math
from typing import Mapping

from ..core.errors import PulseError
from ..core.segment import Segment
from ..engine.tuples import StreamTuple

#: Bumped when the wire format changes incompatibly.
PROTOCOL_VERSION = 1

SERVER_NAME = "pulse-repro"

#: Every request op the server understands.
OPS = (
    "hello",
    "register",
    "subscribe",
    "unsubscribe",
    "attach",
    "ingest",
    "flush",
    "checkpoint",
    "stats",
)

#: Subscription modes (the two engine paths).
MODES = ("continuous", "discrete")


class ProtocolError(PulseError):
    """A wire message violates the protocol; carries an error ``code``."""

    def __init__(self, message: str, code: str = "protocol"):
        self.code = code
        super().__init__(message)


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
def encode(message: Mapping) -> bytes:
    """One message -> one UTF-8 JSON line (strictly finite floats)."""
    return (
        json.dumps(message, separators=(",", ":"), allow_nan=False) + "\n"
    ).encode("utf-8")


def decode_line(line: bytes | str) -> dict:
    """One received line -> message object.

    Non-object payloads and invalid JSON raise :class:`ProtocolError`;
    non-finite float literals *parse* here (stock ``json.loads``
    behaviour) and are rejected per-tuple by :func:`validate_tuple`, so
    one poisoned tuple costs one rejection, not the whole batch.
    """
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"message is not UTF-8: {exc}") from exc
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"invalid JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"message must be a JSON object, got {type(obj).__name__}"
        )
    return obj


def validate_request(obj: dict) -> str:
    """Check the request envelope; returns the ``op``."""
    op = obj.get("op")
    if not isinstance(op, str):
        raise ProtocolError("request has no 'op' field")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r}; known ops: {list(OPS)}")
    req_id = obj.get("id")
    if req_id is not None and not isinstance(req_id, (int, str)):
        raise ProtocolError("'id' must be an integer or string")
    return op


# ----------------------------------------------------------------------
# tuples: the ingest boundary
# ----------------------------------------------------------------------
#: JSON scalar types admissible as tuple attribute values.
_SCALARS = (bool, int, float, str)


def validate_tuple(obj: object) -> StreamTuple:
    """Validate one ingested tuple; returns it as a :class:`StreamTuple`.

    Enforced here, before anything reaches the engine:

    * the tuple is a flat JSON object (no nested containers);
    * it carries a numeric, finite ``time`` field;
    * every numeric value is finite — ``NaN``/``Infinity`` literals
      that ``json.loads`` admits are rejected exactly like the CSV
      replay path rejects ``nan``/``inf`` text.

    Raises :class:`ProtocolError`; callers count the rejection and move
    on to the next tuple (skip-and-count, mirroring lenient replay).
    """
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"tuple must be a JSON object, got {type(obj).__name__}"
        )
    time_value = obj.get(StreamTuple.TIME_FIELD)
    if isinstance(time_value, bool) or not isinstance(
        time_value, (int, float)
    ):
        raise ProtocolError("tuple has no numeric 'time' field")
    for field, value in obj.items():
        if value is not None and not isinstance(value, _SCALARS):
            raise ProtocolError(
                f"field {field!r} must be a JSON scalar, got "
                f"{type(value).__name__}"
            )
        if isinstance(value, float) and not math.isfinite(value):
            raise ProtocolError(
                f"non-finite value {value!r} in field {field!r}",
                code="nonfinite",
            )
    return StreamTuple(obj)


# ----------------------------------------------------------------------
# results: the emit boundary
# ----------------------------------------------------------------------
def serialize_tuple(tup: Mapping) -> dict:
    """A discrete result tuple as a plain JSON object."""
    return dict(tup)


def serialize_segment(seg: Segment) -> dict:
    """A continuous result segment as a JSON object.

    Model polynomials ship as ascending coefficient lists (the
    :class:`~repro.core.polynomial.Polynomial` constructor's form), so
    a client can reconstruct and evaluate them; ``seg_id``/``lineage``
    are process-local identities and deliberately stay home.
    """
    return {
        "key": list(seg.key),
        "t_start": seg.t_start,
        "t_end": seg.t_end,
        "models": {
            attr: [float(c) for c in poly.coeffs]
            for attr, poly in seg.models.items()
        },
        "constants": dict(seg.constants),
    }


def serialize_results(outputs: list) -> list[dict]:
    """Serialize a drained output batch (segments and/or tuples)."""
    return [
        serialize_segment(out)
        if isinstance(out, Segment)
        else serialize_tuple(out)
        for out in outputs
    ]


def error_response(req_id, exc: Exception) -> dict:
    """Map an exception to an ``error`` response message."""
    if isinstance(exc, ProtocolError):
        code = exc.code
    elif isinstance(exc, PulseError):
        code = "plan"
    else:
        code = "server"
    msg: dict = {"type": "error", "code": code, "error": str(exc)}
    if req_id is not None:
        msg["id"] = req_id
    return msg
