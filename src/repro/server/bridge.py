"""Thread-safe bridge between the network layer and the query runtime.

The :class:`~repro.engine.scheduler.QueryRuntime` (and everything below
it: solve caches, the tracer, the shard dispatcher) is single-threaded
by design.  The server keeps it that way: one dedicated **engine
thread** owns the runtime, the fitting builders and all tracer access;
the asyncio event loop submits commands through a queue and awaits
their futures.  Nothing engine-side is ever touched from the loop
thread, so none of the hot-path structures grow locks.

Ordering guarantee: each command *pumps* the runtime (drains every
queue) and delivers outputs through ``on_outputs`` **before** its
future resolves.  Both the delivery callbacks and the future
resolution cross into the event loop via ``call_soon_threadsafe``,
which is FIFO — so by the time a client sees the ``ack`` for a
``flush``, every result that flush produced has already been written
ahead of it.  That is what makes the loopback parity tests exact
rather than eventually-consistent.

Query instances
---------------
A ``register`` stores the *parsed* query once.  Subscriptions then
instantiate it per ``(mode, error_bound)``:

* **discrete** — one instance per query; ingested tuples push straight
  through the lowered plan.
* **continuous** — one instance per ``(query, error_bound)``; each
  instance owns its own per-stream
  :class:`~repro.fitting.model_builder.StreamModelBuilder` with the
  subscription's bound as the fitting tolerance, so two subscribers
  asking for different precision get independently fitted segment
  streams (the paper's error bound is a model-precision knob, and here
  it is honoured per subscription).

Every instance registers with the runtime under a *namespaced* stream
name (``<instance>/<stream>``), so segments fitted at one tolerance
can never leak into an instance fitted at another.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from ..core.errors import PlanError, PulseError
from ..core.transform import TransformedQuery, to_continuous_plan
from ..engine import tracing
from ..engine.durability import Durability
from ..engine.lowering import LoweredQuery, to_discrete_plan
from ..engine.metrics import get_counter, get_histogram
from ..engine.scheduler import QueryRuntime
from ..engine.tuples import StreamTuple
from ..fitting.model_builder import StreamModelBuilder
from ..query import parse_query, plan_query
from .protocol import ProtocolError

_STOP = object()

#: Version stamp for bridge-level snapshot payloads.
BRIDGE_SNAPSHOT_VERSION = 1


class BridgeClosed(PulseError):
    """Command submitted to (or stranded in) a shut-down bridge.

    Typed so callers can tell "the server is going away" from an engine
    failure; futures rejected at shutdown carry this instead of hanging
    forever.
    """


@dataclass(frozen=True)
class FitSpec:
    """How to fit arriving tuples into segments for a continuous query.

    ``attrs`` are the modeled attributes; ``key_fields`` identify the
    entity; ``constants`` ride along unmodeled (defaulting to the key
    fields, which is what every workload preset wants).
    """

    attrs: tuple[str, ...]
    key_fields: tuple[str, ...] = ()
    constants: tuple[str, ...] | None = None

    @property
    def effective_constants(self) -> tuple[str, ...]:
        return self.key_fields if self.constants is None else self.constants

    @classmethod
    def from_wire(cls, obj: object) -> "FitSpec":
        if not isinstance(obj, dict):
            raise ProtocolError("'fit' must be a JSON object")
        attrs = obj.get("attrs")
        if not isinstance(attrs, list) or not all(
            isinstance(a, str) for a in attrs
        ) or not attrs:
            raise ProtocolError("'fit.attrs' must be a list of field names")
        key_fields = obj.get("key_fields", [])
        constants = obj.get("constants")
        for name, value in (("key_fields", key_fields), ("constants", constants)):
            if value is not None and (
                not isinstance(value, list)
                or not all(isinstance(v, str) for v in value)
            ):
                raise ProtocolError(
                    f"'fit.{name}' must be a list of field names"
                )
        return cls(
            attrs=tuple(attrs),
            key_fields=tuple(key_fields),
            constants=None if constants is None else tuple(constants),
        )


@dataclass
class _QueryEntry:
    """One registered logical query (parsed once, instantiated lazily)."""

    name: str
    text: str
    planned: object
    fit: FitSpec | None


@dataclass
class _Instance:
    """One runtime-registered (query, mode, bound) execution instance."""

    runtime_name: str
    entry: _QueryEntry
    mode: str
    bound: float | None
    #: Original (wire-visible) stream names this instance consumes.
    streams: tuple[str, ...]
    #: ``wire stream -> namespaced runtime stream``.
    stream_map: dict[str, str]
    #: Continuous only: per-stream incremental fitters.
    builders: dict[str, StreamModelBuilder] = field(default_factory=dict)
    subscribers: list[int] = field(default_factory=list)
    seq: int = 0
    fit_rejects: int = 0

    def info(self) -> dict:
        return {
            "query": self.entry.name,
            "mode": self.mode,
            "error_bound": self.bound,
            "instance": self.runtime_name,
        }


class EngineBridge:
    """Owns the runtime on a dedicated thread; commands cross a queue.

    Parameters
    ----------
    runtime_kwargs:
        Passed to :class:`~repro.engine.scheduler.QueryRuntime`
        (``queue_capacity``, ``backpressure``, ``num_shards``,
        ``slow_solve_budget_s``, ...).
    default_tolerance:
        Fitting tolerance for continuous subscriptions that specify no
        error bound and whose query text carries none.
    default_fit:
        Fallback :class:`FitSpec` for queries registered without one
        (the CLI derives it from the ``--workload`` preset).
    on_outputs:
        ``(sub_ids, instance_info, outputs) -> None``, called on the
        engine thread; the server trampolines it into the loop.
    on_notify:
        ``(kind, payload) -> None`` for watchdog / backpressure /
        breaker pushes, same threading rule.
    wal_dir:
        Directory for the ingest WAL + checkpoints.  When set, every
        state-changing command (register / instance creation / ingest
        batch / flush) is logged *before* it executes, and
        :meth:`start` recovers from the newest valid snapshot plus a
        WAL-tail replay before the first command runs.  The WAL sits
        at the tuple boundary — *raw* tuples are logged, before model
        fitting — because the fitting builders are part of the state
        that must reconverge.
    checkpoint_every:
        Auto-checkpoint after this many WAL-logged ingest tuples
        (``None`` = manual ``checkpoint`` commands only).
    fsync_every:
        WAL fsync batching (records per fsync; 1 = every record).
    """

    def __init__(
        self,
        runtime_kwargs: Mapping | None = None,
        *,
        default_tolerance: float = 0.05,
        default_fit: FitSpec | None = None,
        on_outputs: Callable[[list[int], dict, list], None] | None = None,
        on_notify: Callable[[str, dict], None] | None = None,
        wal_dir: str | None = None,
        checkpoint_every: int | None = None,
        fsync_every: int = 32,
    ):
        self.runtime = QueryRuntime(**dict(runtime_kwargs or {}))
        self.default_tolerance = default_tolerance
        self.default_fit = default_fit
        self.on_outputs = on_outputs
        self.on_notify = on_notify
        self._durability = (
            Durability(wal_dir, fsync_every=fsync_every)
            if wal_dir
            else None
        )
        self.checkpoint_every = checkpoint_every
        #: Cumulative WAL-logged ingest tuples (survives restarts via
        #: the snapshot); the client-facing durable resume offset.
        self.ingest_tuples = 0
        self._tuples_at_checkpoint = 0
        self._replaying = False
        self.recovery_report = None
        self._closed = False
        self._commands: queue.Queue = queue.Queue()
        self._thread: threading.Thread | None = None
        self._entries: dict[str, _QueryEntry] = {}
        self._instances: dict[tuple, _Instance] = {}
        self._subs: dict[int, tuple[_Instance, int]] = {}
        self._session_spans: dict[int, object] = {}
        self._last_shed = 0
        self._last_dropped = 0
        self._last_slow = 0
        self._last_open: frozenset = frozenset()
        self._ingest_hist = get_histogram("server.ingest_batch_seconds")
        self._ingested_counter = get_counter("server.ingested_tuples")
        self._no_consumer_counter = get_counter("server.no_consumer_tuples")

    # ------------------------------------------------------------------
    # lifecycle (any thread)
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            raise RuntimeError("bridge already started")
        if self._closed:
            raise BridgeClosed("bridge was shut down")
        self._thread = threading.Thread(
            target=self._run, name="pulse-engine", daemon=True
        )
        self._thread.start()
        if self._durability is not None:
            # Recovery runs as the first engine-thread command, so no
            # client command can observe pre-recovery state; waiting on
            # the future keeps start() synchronous for callers that
            # immediately advertise readiness.
            self.submit(self._do_restore).result()

    def stop(self, timeout: float = 10.0) -> None:
        """Graceful shutdown: drain queued commands, then reject late ones.

        Commands already queued are processed (with their outputs
        delivered) before the engine thread exits; a final checkpoint
        is taken when durability is on, so a clean shutdown needs no
        replay on the next start.  Anything submitted after shutdown
        begins — or still queued if the drain deadline expires — gets
        a typed :class:`BridgeClosed` instead of a hanging future.
        """
        thread = self._thread
        if thread is None:
            self._closed = True
            self._reject_pending()
            return
        if self._durability is not None and thread.is_alive():
            self._commands.put((self._do_checkpoint, Future()))
        self._commands.put(_STOP)
        self._closed = True
        thread.join(timeout)
        alive = thread.is_alive()
        self._reject_pending()
        if alive:
            raise RuntimeError("engine thread did not stop")
        self._thread = None
        self.runtime.close()
        if self._durability is not None:
            self._durability.close()

    def _reject_pending(self) -> None:
        """Fail every still-queued future with :class:`BridgeClosed`."""
        while True:
            try:
                cmd = self._commands.get_nowait()
            except queue.Empty:
                return
            if cmd is _STOP:
                continue
            _fn, future = cmd
            if not future.done():
                future.set_exception(
                    BridgeClosed("bridge shut down before command ran")
                )

    def submit(self, fn: Callable[[], object]) -> Future:
        """Run ``fn`` on the engine thread; resolve the future after
        the post-command pump has delivered all outputs.  After
        :meth:`stop` begins, the future fails immediately with
        :class:`BridgeClosed`."""
        future: Future = Future()
        if self._closed:
            future.set_exception(BridgeClosed("bridge is shut down"))
            return future
        self._commands.put((fn, future))
        return future

    # ------------------------------------------------------------------
    # commands (construct on any thread, run on the engine thread)
    # ------------------------------------------------------------------
    def register_query(
        self, name: str, text: str, fit: FitSpec | None = None
    ) -> Future:
        return self.submit(lambda: self._do_register(name, text, fit))

    def subscribe(
        self,
        sub_id: int,
        query: str,
        mode: str,
        bound: float | None,
        session_id: int | None = None,
    ) -> Future:
        return self.submit(
            lambda: self._do_subscribe(sub_id, query, mode, bound, session_id)
        )

    def unsubscribe(self, sub_id: int) -> Future:
        return self.submit(lambda: self._do_unsubscribe(sub_id))

    def ingest(
        self,
        session_id: int | None,
        stream: str,
        tuples: Sequence[StreamTuple],
        policy: str | None = None,
    ) -> Future:
        return self.submit(
            lambda: self._do_ingest(session_id, stream, tuples, policy)
        )

    def flush(self) -> Future:
        return self.submit(self._do_flush)

    def checkpoint(self) -> Future:
        return self.submit(self._do_checkpoint)

    def stats(self) -> Future:
        return self.submit(self._do_stats)

    def open_session(self, session_id: int, peer: str) -> Future:
        return self.submit(lambda: self._do_open_session(session_id, peer))

    def close_session(self, session_id: int) -> Future:
        return self.submit(lambda: self._do_close_session(session_id))

    # ------------------------------------------------------------------
    # engine thread
    # ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            cmd = self._commands.get()
            if cmd is _STOP:
                break
            fn, future = cmd
            try:
                result = fn()
                # Deliveries happen inside fn's pump; resolving after
                # them is the results-before-ack ordering guarantee.
                future.set_result(result)
            except BaseException as exc:  # noqa: BLE001 — future carries it
                future.set_exception(exc)

    def _log(self, record: tuple) -> int:
        """WAL one state-changing command (no-op when ephemeral)."""
        if self._durability is None or self._replaying:
            return 0
        return self._durability.log(record)

    def _do_register(
        self, name: str, text: str, fit: FitSpec | None
    ) -> dict:
        if name in self._entries:
            raise PlanError(f"query {name!r} already registered")
        planned = plan_query(parse_query(text))
        self._log(("register", name, text, fit))
        entry = _QueryEntry(name, text, planned, fit or self.default_fit)
        self._entries[name] = entry
        return {
            "registered": name,
            "streams": sorted(planned.stream_sources),
        }

    def _resolve_bound(
        self, entry: _QueryEntry, bound: float | None
    ) -> float:
        if bound is not None:
            return float(bound)
        spec = entry.planned.error_spec
        if spec is not None:
            return float(spec.bound)
        return self.default_tolerance

    def _do_subscribe(
        self,
        sub_id: int,
        query: str,
        mode: str,
        bound: float | None,
        session_id: int | None,
    ) -> dict:
        entry = self._entries.get(query)
        if entry is None:
            raise PlanError(
                f"query {query!r} is not registered; "
                f"known queries: {sorted(self._entries)}"
            )
        if mode == "continuous":
            bound = self._resolve_bound(entry, bound)
            key = (query, mode, bound)
        else:
            bound = None
            key = (query, mode)
        instance = self._instances.get(key)
        if instance is None:
            # Instance creation (not the subscription itself) is
            # durable state: fitted builders and plan buffers hang off
            # it.  Subscribers are connection-scoped and die with the
            # process; clients re-subscribe after a restart.
            self._log(("instance", entry.name, mode, bound))
            instance = self._make_instance(entry, mode, bound)
            self._instances[key] = instance
        instance.subscribers.append(sub_id)
        self._subs[sub_id] = (instance, session_id)
        return {
            "subscription": sub_id,
            "instance": instance.runtime_name,
            "mode": mode,
            "error_bound": bound,
            "streams": list(instance.streams),
        }

    def _make_instance(
        self, entry: _QueryEntry, mode: str, bound: float | None
    ) -> _Instance:
        streams = tuple(entry.planned.stream_sources)
        if mode == "continuous":
            runtime_name = f"{entry.name}~c@{bound:g}"
            compiled = to_continuous_plan(entry.planned)
        else:
            runtime_name = f"{entry.name}~d"
            compiled = to_discrete_plan(entry.planned)
        stream_map = {s: f"{runtime_name}/{s}" for s in streams}
        namespaced_sources = {
            stream_map[s]: compiled.stream_sources[s] for s in streams
        }
        if mode == "continuous":
            namespaced = TransformedQuery(
                compiled.plan,
                namespaced_sources,
                sample_period=compiled.sample_period,
                inferred_period=compiled.inferred_period,
                error_bound=compiled.error_bound,
            )
        else:
            namespaced = LoweredQuery(compiled.plan, namespaced_sources)
        instance = _Instance(
            runtime_name=runtime_name,
            entry=entry,
            mode=mode,
            bound=bound,
            streams=streams,
            stream_map=stream_map,
        )
        if mode == "continuous":
            fit = entry.fit
            if fit is None:
                raise PlanError(
                    f"continuous subscription to {entry.name!r} needs a "
                    f"fit spec (attrs/key_fields) and none was registered"
                )
            for s in streams:
                instance.builders[s] = StreamModelBuilder(
                    fit.attrs,
                    bound,
                    key_fields=fit.key_fields,
                    constants=fit.effective_constants,
                )
        self.runtime.register(runtime_name, namespaced)
        return instance

    def _do_unsubscribe(self, sub_id: int) -> dict:
        entry = self._subs.pop(sub_id, None)
        if entry is None:
            raise PlanError(f"unknown subscription {sub_id}")
        instance, _session = entry
        instance.subscribers.remove(sub_id)
        # The instance stays registered: its fitted state (open
        # segmenter windows, join buffers) is expensive to rebuild and
        # a re-subscriber at the same bound reattaches to it.
        return {"subscription": sub_id}

    def _do_ingest(
        self,
        session_id: int | None,
        stream: str,
        tuples: Sequence[StreamTuple],
        policy: str | None,
    ) -> dict:
        t0 = time.perf_counter()
        tracer = tracing.current_tracer()
        span = None
        if tracer is not None:
            parent = self._session_spans.get(session_id)
            span = tracer.start_detached(
                "ingest",
                "ingest",
                parent_id=parent.span_id if parent is not None else None,
                stream=stream,
                tuples=len(tuples),
            )
        counts = {
            "accepted": 0,
            "blocked": 0,
            "shed": 0,
            "no_consumer": 0,
            "fit_rejected": 0,
        }
        if self._durability is not None and not self._replaying:
            # Write-ahead at the tuple boundary: raw tuples go to disk
            # before fitting can fold them into builder state.
            self._log(("ingest", stream, list(tuples), policy))
            self.ingest_tuples += len(tuples)
        consumers = [
            inst
            for inst in self._instances.values()
            if stream in inst.stream_map
        ]
        previous_policy = self.runtime.backpressure
        if policy is not None:
            # Per-connection back-pressure: the policy rides with the
            # batch and is restored afterwards — commands on the engine
            # thread are serialized, so this cannot interleave.
            self.runtime.backpressure = policy
        try:
            for tup in tuples:
                if not consumers:
                    counts["no_consumer"] += 1
                    continue
                admitted = True
                for inst in consumers:
                    if inst.mode == "discrete":
                        if not self.runtime.enqueue(
                            inst.stream_map[stream], tup
                        ):
                            admitted = False
                    else:
                        segments = self._fit(inst, stream, tup, counts)
                        for seg in segments:
                            if not self.runtime.enqueue(
                                inst.stream_map[stream], seg
                            ):
                                admitted = False
                if admitted:
                    counts["accepted"] += 1
                else:
                    bp = self.runtime.backpressure
                    counts["shed" if bp == "shed-newest" else "blocked"] += 1
        finally:
            self.runtime.backpressure = previous_policy
        self._ingested_counter.bump(counts["accepted"])
        if counts["no_consumer"]:
            self._no_consumer_counter.bump(counts["no_consumer"])
        self._pump()
        self._ingest_hist.observe(time.perf_counter() - t0)
        if tracer is not None and span is not None:
            tracer.finish_detached(span, **counts)
        if (
            self.checkpoint_every
            and self._durability is not None
            and not self._replaying
            and self.ingest_tuples - self._tuples_at_checkpoint
            >= self.checkpoint_every
        ):
            self._do_checkpoint()
        return counts

    def _fit(
        self, inst: _Instance, stream: str, tup: StreamTuple, counts: dict
    ) -> list:
        """One tuple through the instance's segmenter; [] on rejection.

        Fit preconditions (modeled attrs and key fields present and
        numeric where modeled) are checked *before* the segmenter sees
        the tuple: ``MultiAttributeSegmenter.add`` consumes the point
        attribute-by-attribute, so letting it raise midway would leave
        the per-attribute windows inconsistent.
        """
        fit = inst.entry.fit
        for attr in fit.attrs:
            value = tup.get(attr)
            if isinstance(value, bool) or not isinstance(
                value, (int, float)
            ):
                counts["fit_rejected"] += 1
                inst.fit_rejects += 1
                return []
        for key_field in fit.key_fields:
            if key_field not in tup:
                counts["fit_rejected"] += 1
                inst.fit_rejects += 1
                return []
        return inst.builders[stream].add(tup)

    def _do_flush(self) -> dict:
        """End-of-stream barrier: close every open fitted segment,
        drain the runtime, deliver everything."""
        # Flush mutates builder state (open windows close), so it is a
        # WAL event like any other state-changing command.
        self._log(("flush",))
        flushed = 0
        for instance in self._instances.values():
            for stream, builder in instance.builders.items():
                for seg in builder.finish():
                    # finish() is called at end of trace; admission uses
                    # the server's standing policy, not any connection's.
                    if self.runtime.enqueue(instance.stream_map[stream], seg):
                        flushed += 1
        processed = self._pump()
        return {"flushed_segments": flushed, "processed": processed}

    # ------------------------------------------------------------------
    # durability (engine thread)
    # ------------------------------------------------------------------
    def _do_checkpoint(self) -> dict:
        """Atomic snapshot of entries, instances, builders and runtime."""
        if self._durability is None:
            raise PlanError("server has no WAL directory configured")
        state = {
            "version": BRIDGE_SNAPSHOT_VERSION,
            "entries": [
                (e.name, e.text, e.fit) for e in self._entries.values()
            ],
            "instances": [
                {
                    "key": key,
                    "runtime_name": inst.runtime_name,
                    "query": inst.entry.name,
                    "mode": inst.mode,
                    "bound": inst.bound,
                    "builders": inst.builders,
                    "seq": inst.seq,
                    "fit_rejects": inst.fit_rejects,
                }
                for key, inst in self._instances.items()
            ],
            "runtime": self.runtime.checkpoint_state(),
            "ingest_tuples": self.ingest_tuples,
        }
        info = self._durability.checkpoint(state)
        self._tuples_at_checkpoint = self.ingest_tuples
        return {
            "seq": info["seq"],
            "bytes": info["bytes"],
            "duration_s": info["duration_s"],
            "ingest_tuples": self.ingest_tuples,
        }

    def _load_snapshot(self, state: Mapping) -> None:
        version = state.get("version")
        if version != BRIDGE_SNAPSHOT_VERSION:
            raise PlanError(
                f"unsupported bridge snapshot version {version!r}"
            )
        self._entries = {}
        for name, text, fit in state["entries"]:
            # Query plans are re-derived from text (deterministic and
            # robust across code changes); operator *state* rides in
            # the runtime snapshot's pickled plan graph instead.
            planned = plan_query(parse_query(text))
            self._entries[name] = _QueryEntry(name, text, planned, fit)
        self.runtime.restore_state(state["runtime"])
        self._instances = {}
        for item in state["instances"]:
            entry = self._entries[item["query"]]
            streams = tuple(entry.planned.stream_sources)
            runtime_name = item["runtime_name"]
            instance = _Instance(
                runtime_name=runtime_name,
                entry=entry,
                mode=item["mode"],
                bound=item["bound"],
                streams=streams,
                stream_map={
                    s: f"{runtime_name}/{s}" for s in streams
                },
                builders=item["builders"],
                seq=item["seq"],
                fit_rejects=item["fit_rejects"],
            )
            self._instances[item["key"]] = instance
        self.ingest_tuples = state["ingest_tuples"]

    def _apply_record(self, record: tuple) -> None:
        """Replay one WAL record through the normal command paths."""
        kind = record[0]
        if kind == "register":
            _, name, text, fit = record
            if name not in self._entries:
                self._do_register(name, text, fit)
        elif kind == "instance":
            _, qname, mode, bound = record
            key = (
                (qname, mode, bound)
                if mode == "continuous"
                else (qname, mode)
            )
            entry = self._entries.get(qname)
            if entry is not None and key not in self._instances:
                self._instances[key] = self._make_instance(
                    entry, mode, bound
                )
        elif kind == "ingest":
            _, stream, tuples, policy = record
            self.ingest_tuples += len(tuples)
            self._do_ingest(None, stream, tuples, policy)
        elif kind == "flush":
            self._do_flush()
        # Unknown kinds: skip (forward compatibility), never crash.

    def _do_restore(self) -> dict:
        """Recover on start: newest valid snapshot + WAL-tail replay.

        Replayed outputs are discarded naturally — no subscriptions
        exist yet, so the pump drains and drops them; clients that
        reconnect resume from ``ingest_tuples``.  Damaged WAL frames
        are skipped with accounting in the returned report.
        """
        tracer = tracing.current_tracer()
        span = (
            tracer.start_detached("recovery", "recovery") if tracer else None
        )
        start = time.perf_counter()
        state, report, records = self._durability.recover()
        self._replaying = True
        try:
            if state is not None:
                self._load_snapshot(state)
            for _seq, record in records:
                self._apply_record(record)
        finally:
            self._replaying = False
        self._durability.finish_recovery(report)
        report.duration_s = time.perf_counter() - start
        self.recovery_report = report.as_dict()
        self._sync_notification_baseline()
        if report.replayed:
            # Fold the replayed tail into a fresh checkpoint so a
            # crash loop never replays the same tail twice.
            self._do_checkpoint()
        else:
            self._tuples_at_checkpoint = self.ingest_tuples
        if tracer and span is not None:
            tracer.finish_detached(
                span,
                snapshot_seq=report.snapshot_seq,
                replayed=report.replayed,
                recovered_seq=report.recovered_seq,
            )
        return self.recovery_report

    def _sync_notification_baseline(self) -> None:
        """Replay re-trips sheds/breakers; don't re-notify history."""
        self._last_shed = self.runtime.items_shed
        self._last_dropped = self.runtime.items_dropped
        watchdog = self.runtime.resilience_stats().get("watchdog")
        if watchdog is not None:
            self._last_slow = watchdog["slow_solves"]
        if self.runtime.breaker is not None:
            self._last_open = frozenset(self.runtime.breaker.open_keys())

    def _do_stats(self) -> dict:
        stats: dict = {
            "queries": sorted(self._entries),
            "query_streams": {
                name: sorted(entry.planned.stream_sources)
                for name, entry in self._entries.items()
            },
            "instances": {
                inst.runtime_name: {
                    **inst.info(),
                    "subscribers": len(inst.subscribers),
                    "fit_rejected": inst.fit_rejects,
                }
                for inst in self._instances.values()
            },
            "queue_depths": dict(self.runtime.queue_depths()),
            "total_pending": self.runtime.total_pending,
            "items_enqueued": self.runtime.items_enqueued,
            "items_shed": self.runtime.items_shed,
            "items_dropped": self.runtime.items_dropped,
            "resilience": _json_safe(self.runtime.resilience_stats()),
        }
        parallel = self.runtime.parallel_stats()
        if parallel is not None:
            stats["parallel"] = _json_safe(parallel)
        if self._durability is not None:
            stats["durability"] = _json_safe(
                {
                    "wal_dir": self._durability.directory,
                    "ingest_tuples": self.ingest_tuples,
                    "wal_seq": self._durability.last_seq,
                    "recovery": self.recovery_report,
                }
            )
        return stats

    def _do_open_session(self, session_id: int, peer: str) -> None:
        tracer = tracing.current_tracer()
        if tracer is not None:
            self._session_spans[session_id] = tracer.start_detached(
                "session", "session", peer=peer, session=session_id
            )

    def _do_close_session(self, session_id: int) -> None:
        # Subscriptions owned by the session die with it.
        for sub_id, (instance, sid) in list(self._subs.items()):
            if sid == session_id:
                instance.subscribers.remove(sub_id)
                del self._subs[sub_id]
        span = self._session_spans.pop(session_id, None)
        if span is not None:
            tracer = tracing.current_tracer()
            if tracer is not None:
                tracer.finish_detached(span)

    # ------------------------------------------------------------------
    # the pump: drain, deliver, notify
    # ------------------------------------------------------------------
    def _pump(self) -> int:
        processed = self.runtime.run_until_idle()
        tracer = tracing.current_tracer()
        for instance in self._instances.values():
            outputs = self.runtime.outputs(instance.runtime_name)
            if not outputs:
                continue
            if not instance.subscribers:
                continue  # drained and dropped: nobody is listening
            if tracer is not None:
                for sub_id in instance.subscribers:
                    _inst, session_id = self._subs[sub_id]
                    parent = self._session_spans.get(session_id)
                    tracer.event_under(
                        parent.span_id if parent is not None else None,
                        "emit",
                        "emit",
                        subscription=sub_id,
                        outputs=len(outputs),
                    )
            if self.on_outputs is not None:
                self.on_outputs(
                    list(instance.subscribers), instance.info(), outputs
                )
        self._emit_notifications()
        return processed

    def _emit_notifications(self) -> None:
        if self.on_notify is None or self._replaying:
            return
        shed, dropped = self.runtime.items_shed, self.runtime.items_dropped
        if shed > self._last_shed or dropped > self._last_dropped:
            self.on_notify(
                "backpressure",
                {
                    "policy": self.runtime.backpressure,
                    "shed": shed - self._last_shed,
                    "dropped": dropped - self._last_dropped,
                },
            )
            self._last_shed, self._last_dropped = shed, dropped
        watchdog = self.runtime.resilience_stats().get("watchdog")
        if watchdog is not None and watchdog["slow_solves"] > self._last_slow:
            self.on_notify(
                "alert",
                {
                    "kind": "slow_solve",
                    "count": watchdog["slow_solves"] - self._last_slow,
                    "budget_s": watchdog["budget_s"],
                },
            )
            self._last_slow = watchdog["slow_solves"]
        breaker = self.runtime.breaker
        if breaker is not None:
            open_now = frozenset(breaker.open_keys())
            if open_now != self._last_open:
                self.on_notify(
                    "breaker",
                    {
                        "open": sorted(
                            [q, _json_safe(k)] for q, k in open_now
                        ),
                        "snapshot": breaker.snapshot(),
                    },
                )
                self._last_open = open_now


def _json_safe(value):
    """Recursively coerce stats structures to JSON-encodable shapes."""
    if isinstance(value, Mapping):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_json_safe(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, PulseError) or isinstance(value, Exception):
        return repr(value)
    return repr(value)
