"""Thread-safe bridge between the network layer and the query runtime.

The :class:`~repro.engine.scheduler.QueryRuntime` (and everything below
it: solve caches, the tracer, the shard dispatcher) is single-threaded
by design.  The server keeps it that way: one dedicated **engine
thread** owns the runtime, the fitting builders and all tracer access;
the asyncio event loop submits commands through a queue and awaits
their futures.  Nothing engine-side is ever touched from the loop
thread, so none of the hot-path structures grow locks.

Ordering guarantee: each command *pumps* the runtime (drains every
queue) and delivers outputs through ``on_outputs`` **before** its
future resolves.  Both the delivery callbacks and the future
resolution cross into the event loop via ``call_soon_threadsafe``,
which is FIFO — so by the time a client sees the ``ack`` for a
``flush``, every result that flush produced has already been written
ahead of it.  That is what makes the loopback parity tests exact
rather than eventually-consistent.

Shared plans
------------
A ``register`` stores the *parsed* query once.  Subscriptions then
share **one operator graph per (query, mode)** — the shared-plan
economy the paper's Sec. IV lineage makes sound: an equation system
solved at a tight error bound is valid for every looser bound, so one
graph solved at the *tightest currently-subscribed bound* serves all
subscribers, each holding only lightweight per-subscription state (its
own bound, an output cursor, its owning session).

* **discrete** — one graph per query; ingested tuples push straight
  through the lowered plan.  Error bounds do not apply.
* **continuous** — one graph per query, fitted and solved at
  ``min(bound for live subscriptions)``.  When a tighter subscriber
  arrives (or the tightest one leaves), the graph **retargets**: open
  fitting windows seal at the old bound (their segments flow to the
  subscribers that bound served) and future fitting/solving happens at
  the new tightest bound.  That is the only re-solve subscribe/
  unsubscribe can cost; joining at a bound the graph already satisfies
  is free.

The last unsubscribe tears the graph down — runtime registration,
builders and delta trackers are all released, so subscription churn
leaves no residue (the ``subs.active`` / ``subs.shared_graphs`` gauges
and the churn soak test pin this).

Each graph registers with the runtime under a *namespaced* stream name
(``<graph>/<stream>``), so two registered queries over the same wire
stream never share queues.

Durability
----------
Subscriptions are durable state: ``subscribe`` / ``unsubscribe`` are
WAL-logged and the subscription table (with per-subscription cursors)
rides in checkpoints, so recovery rebuilds the shared graphs *and*
their subscriber tables bit-exactly.  Recovered subscriptions are
**detached** (their session died with the process); a reconnecting
client either re-subscribes (joining the shared graph as a new
subscriber) or ``attach``-es to its old subscription id to resume its
cursor.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from ..core.errors import PlanError, PulseError
from ..core.transform import TransformedQuery, to_continuous_plan
from ..engine import tracing
from ..engine.durability import Durability
from ..engine.lowering import LoweredQuery, to_discrete_plan
from ..engine.metrics import get_counter, get_gauge, get_histogram
from ..engine.scheduler import QueryRuntime
from ..engine.tuples import StreamTuple
from ..fitting.model_builder import StreamModelBuilder
from ..query import parse_query, plan_query
from .protocol import ProtocolError, serialize_results

_STOP = object()

#: Version stamp for bridge-level snapshot payloads.  v2: per-(query,
#: mode) shared graphs with a durable subscription table replaced the
#: v1 per-(query, mode, bound) instances.
BRIDGE_SNAPSHOT_VERSION = 2


class BridgeClosed(PulseError):
    """Command submitted to (or stranded in) a shut-down bridge.

    Typed so callers can tell "the server is going away" from an engine
    failure; futures rejected at shutdown carry this instead of hanging
    forever.
    """


@dataclass(frozen=True)
class FitSpec:
    """How to fit arriving tuples into segments for a continuous query.

    ``attrs`` are the modeled attributes; ``key_fields`` identify the
    entity; ``constants`` ride along unmodeled (defaulting to the key
    fields, which is what every workload preset wants).
    """

    attrs: tuple[str, ...]
    key_fields: tuple[str, ...] = ()
    constants: tuple[str, ...] | None = None

    @property
    def effective_constants(self) -> tuple[str, ...]:
        return self.key_fields if self.constants is None else self.constants

    @classmethod
    def from_wire(cls, obj: object) -> "FitSpec":
        if not isinstance(obj, dict):
            raise ProtocolError("'fit' must be a JSON object")
        attrs = obj.get("attrs")
        if not isinstance(attrs, list) or not all(
            isinstance(a, str) for a in attrs
        ) or not attrs:
            raise ProtocolError("'fit.attrs' must be a list of field names")
        key_fields = obj.get("key_fields", [])
        constants = obj.get("constants")
        for name, value in (("key_fields", key_fields), ("constants", constants)):
            if value is not None and (
                not isinstance(value, list)
                or not all(isinstance(v, str) for v in value)
            ):
                raise ProtocolError(
                    f"'fit.{name}' must be a list of field names"
                )
        return cls(
            attrs=tuple(attrs),
            key_fields=tuple(key_fields),
            constants=None if constants is None else tuple(constants),
        )


@dataclass
class _QueryEntry:
    """One registered logical query (parsed once, instantiated lazily)."""

    name: str
    text: str
    planned: object
    fit: FitSpec | None


@dataclass
class _Subscription:
    """Per-subscriber state over a shared graph: a bound and a cursor.

    ``bound`` is the precision this subscriber asked for — always at
    least as loose as the graph's ``solve_bound``, which is what makes
    fanning the shared output stream out to it sound.  ``cursor``
    counts the results delivered to this subscription; it advances
    deterministically with the shared output stream (connection-alive
    or not) so it survives recovery bit-exactly.  ``session_id`` is
    the owning connection, ``None`` when detached (recovered).
    """

    sub_id: int
    graph: "_SharedGraph"
    bound: float | None
    session_id: int | None = None
    cursor: int = 0
    #: Bounded tail of raw outputs at cursor positions
    #: ``[cursor - len(retained), cursor)`` — only populated when the
    #: bridge was built with ``retain_results > 0``.  This is what
    #: makes ``attach(from_cursor=...)`` able to re-deliver outputs a
    #: subscriber's connection lost across a crash (the fleet router's
    #: exactly-once merge depends on it).
    retained: deque | None = None


@dataclass
class _SharedGraph:
    """One runtime-registered (query, mode) shared operator graph."""

    runtime_name: str
    entry: _QueryEntry
    mode: str
    #: Continuous: the tightest currently-subscribed bound — fitting
    #: tolerance and equation-system target alike.  Discrete: ``None``.
    solve_bound: float | None
    #: Original (wire-visible) stream names this graph consumes.
    streams: tuple[str, ...]
    #: ``wire stream -> namespaced runtime stream``.
    stream_map: dict[str, str]
    #: Continuous only: per-stream incremental fitters at ``solve_bound``.
    builders: dict[str, StreamModelBuilder] = field(default_factory=dict)
    subs: dict[int, _Subscription] = field(default_factory=dict)
    seq: int = 0
    fit_rejects: int = 0
    #: Bound retargets (tighten + relax) this graph has performed.
    retightens: int = 0

    def tightest_bound(self) -> float | None:
        bounds = [s.bound for s in self.subs.values() if s.bound is not None]
        return min(bounds) if bounds else None

    def info(self) -> dict:
        return {
            "query": self.entry.name,
            "mode": self.mode,
            "error_bound": self.solve_bound,
            "graph": self.runtime_name,
        }


class EngineBridge:
    """Owns the runtime on a dedicated thread; commands cross a queue.

    Parameters
    ----------
    runtime_kwargs:
        Passed to :class:`~repro.engine.scheduler.QueryRuntime`
        (``queue_capacity``, ``backpressure``, ``num_shards``,
        ``slow_solve_budget_s``, ...).
    default_tolerance:
        Fitting tolerance for continuous subscriptions that specify no
        error bound and whose query text carries none.
    default_fit:
        Fallback :class:`FitSpec` for queries registered without one
        (the CLI derives it from the ``--workload`` preset).
    on_outputs:
        ``(subscribers, graph_info, outputs) -> None`` where
        ``subscribers`` is ``[(sub_id, cursor), ...]`` — the cursor is
        each subscription's delivery offset *before* this batch.
        Called on the engine thread; the server trampolines it into
        the loop.
    on_notify:
        ``(kind, payload) -> None`` for watchdog / backpressure /
        breaker pushes, same threading rule.
    wal_dir:
        Directory for the ingest WAL + checkpoints.  When set, every
        state-changing command (register / subscribe / unsubscribe /
        ingest batch / flush) is logged *before* it executes, and
        :meth:`start` recovers from the newest valid snapshot plus a
        WAL-tail replay before the first command runs.  The WAL sits
        at the tuple boundary — *raw* tuples are logged, before model
        fitting — because the fitting builders are part of the state
        that must reconverge.
    checkpoint_every:
        Auto-checkpoint after this many WAL-logged ingest tuples
        (``None`` = manual ``checkpoint`` commands only).
    fsync_every:
        WAL fsync batching (records per fsync; 1 = every record).
    retain_results:
        Keep the last N raw outputs per subscription (0 = off).  The
        retained tail rides in checkpoints and refills during WAL
        replay, so after a crash ``attach(from_cursor=...)`` can
        re-deliver exactly the outputs whose in-flight delivery the
        crash destroyed — the replay-aware half of the fleet router's
        exactly-once merge.
    """

    def __init__(
        self,
        runtime_kwargs: Mapping | None = None,
        *,
        default_tolerance: float = 0.05,
        default_fit: FitSpec | None = None,
        on_outputs: Callable[[list, dict, list], None] | None = None,
        on_notify: Callable[[str, dict], None] | None = None,
        wal_dir: str | None = None,
        checkpoint_every: int | None = None,
        fsync_every: int = 32,
        retain_results: int = 0,
    ):
        self.runtime = QueryRuntime(**dict(runtime_kwargs or {}))
        self.retain_results = retain_results
        self.default_tolerance = default_tolerance
        self.default_fit = default_fit
        self.on_outputs = on_outputs
        self.on_notify = on_notify
        self._durability = (
            Durability(wal_dir, fsync_every=fsync_every)
            if wal_dir
            else None
        )
        self.checkpoint_every = checkpoint_every
        #: Cumulative WAL-logged ingest tuples (survives restarts via
        #: the snapshot); the client-facing durable resume offset.
        self.ingest_tuples = 0
        self._tuples_at_checkpoint = 0
        self._replaying = False
        self.recovery_report = None
        self._closed = False
        self._commands: queue.Queue = queue.Queue()
        self._thread: threading.Thread | None = None
        self._entries: dict[str, _QueryEntry] = {}
        self._graphs: dict[tuple[str, str], _SharedGraph] = {}
        self._subs: dict[int, _Subscription] = {}
        #: Highest subscription id ever granted (durable): restarted
        #: servers allocate fresh ids above it so recovered and new
        #: subscriptions never collide.
        self.max_sub_id = 0
        self._sessions: set[int] = set()
        self._session_spans: dict[int, object] = {}
        self._last_shed = 0
        self._last_dropped = 0
        self._last_slow = 0
        self._last_open: frozenset = frozenset()
        self._ingest_hist = get_histogram("server.ingest_batch_seconds")
        self._ingested_counter = get_counter("server.ingested_tuples")
        self._no_consumer_counter = get_counter("server.no_consumer_tuples")
        self._active_subs_gauge = get_gauge("subs.active")
        self._shared_graphs_gauge = get_gauge("subs.shared_graphs")
        self._retighten_counter = get_counter("subs.retighten_resolves")

    # ------------------------------------------------------------------
    # lifecycle (any thread)
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            raise RuntimeError("bridge already started")
        if self._closed:
            raise BridgeClosed("bridge was shut down")
        self._thread = threading.Thread(
            target=self._run, name="pulse-engine", daemon=True
        )
        self._thread.start()
        if self._durability is not None:
            # Recovery runs as the first engine-thread command, so no
            # client command can observe pre-recovery state; waiting on
            # the future keeps start() synchronous for callers that
            # immediately advertise readiness.
            self.submit(self._do_restore).result()

    def stop(self, timeout: float = 10.0) -> None:
        """Graceful shutdown: drain queued commands, then reject late ones.

        Commands already queued are processed (with their outputs
        delivered) before the engine thread exits; a final checkpoint
        is taken when durability is on, so a clean shutdown needs no
        replay on the next start.  Anything submitted after shutdown
        begins — or still queued if the drain deadline expires — gets
        a typed :class:`BridgeClosed` instead of a hanging future.
        """
        thread = self._thread
        if thread is None:
            self._closed = True
            self._reject_pending()
            return
        if self._durability is not None and thread.is_alive():
            self._commands.put((self._do_checkpoint, Future()))
        self._commands.put(_STOP)
        self._closed = True
        thread.join(timeout)
        alive = thread.is_alive()
        self._reject_pending()
        if alive:
            raise RuntimeError("engine thread did not stop")
        self._thread = None
        self.runtime.close()
        if self._durability is not None:
            self._durability.close()

    def _reject_pending(self) -> None:
        """Fail every still-queued future with :class:`BridgeClosed`."""
        while True:
            try:
                cmd = self._commands.get_nowait()
            except queue.Empty:
                return
            if cmd is _STOP:
                continue
            _fn, future = cmd
            if not future.done():
                future.set_exception(
                    BridgeClosed("bridge shut down before command ran")
                )

    def submit(self, fn: Callable[[], object]) -> Future:
        """Run ``fn`` on the engine thread; resolve the future after
        the post-command pump has delivered all outputs.  After
        :meth:`stop` begins, the future fails immediately with
        :class:`BridgeClosed`."""
        future: Future = Future()
        if self._closed:
            future.set_exception(BridgeClosed("bridge is shut down"))
            return future
        self._commands.put((fn, future))
        return future

    # ------------------------------------------------------------------
    # commands (construct on any thread, run on the engine thread)
    # ------------------------------------------------------------------
    def register_query(
        self, name: str, text: str, fit: FitSpec | None = None
    ) -> Future:
        return self.submit(lambda: self._do_register(name, text, fit))

    def subscribe(
        self,
        sub_id: int,
        query: str,
        mode: str,
        bound: float | None,
        session_id: int | None = None,
    ) -> Future:
        return self.submit(
            lambda: self._do_subscribe(sub_id, query, mode, bound, session_id)
        )

    def unsubscribe(self, sub_id: int) -> Future:
        return self.submit(lambda: self._do_unsubscribe(sub_id))

    def attach(
        self,
        sub_id: int,
        session_id: int | None,
        from_cursor: int | None = None,
    ) -> Future:
        return self.submit(
            lambda: self._do_attach(sub_id, session_id, from_cursor)
        )

    def ingest(
        self,
        session_id: int | None,
        stream: str,
        tuples: Sequence[StreamTuple],
        policy: str | None = None,
    ) -> Future:
        return self.submit(
            lambda: self._do_ingest(session_id, stream, tuples, policy)
        )

    def flush(self) -> Future:
        return self.submit(self._do_flush)

    def checkpoint(self) -> Future:
        return self.submit(self._do_checkpoint)

    def stats(self) -> Future:
        return self.submit(self._do_stats)

    def open_session(self, session_id: int, peer: str) -> Future:
        return self.submit(lambda: self._do_open_session(session_id, peer))

    def close_session(self, session_id: int) -> Future:
        return self.submit(lambda: self._do_close_session(session_id))

    # ------------------------------------------------------------------
    # engine thread
    # ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            cmd = self._commands.get()
            if cmd is _STOP:
                break
            fn, future = cmd
            try:
                result = fn()
                # Deliveries happen inside fn's pump; resolving after
                # them is the results-before-ack ordering guarantee.
                future.set_result(result)
            except BaseException as exc:  # noqa: BLE001 — future carries it
                future.set_exception(exc)

    def _log(self, record: tuple) -> int:
        """WAL one state-changing command (no-op when ephemeral)."""
        if self._durability is None or self._replaying:
            return 0
        return self._durability.log(record)

    def _do_register(
        self, name: str, text: str, fit: FitSpec | None
    ) -> dict:
        if name in self._entries:
            raise PlanError(f"query {name!r} already registered")
        planned = plan_query(parse_query(text))
        self._log(("register", name, text, fit))
        entry = _QueryEntry(name, text, planned, fit or self.default_fit)
        self._entries[name] = entry
        return {
            "registered": name,
            "streams": sorted(planned.stream_sources),
        }

    def _resolve_bound(
        self, entry: _QueryEntry, bound: float | None
    ) -> float:
        if bound is not None:
            return float(bound)
        spec = entry.planned.error_spec
        if spec is not None:
            return float(spec.bound)
        return self.default_tolerance

    def _do_subscribe(
        self,
        sub_id: int,
        query: str,
        mode: str,
        bound: float | None,
        session_id: int | None,
    ) -> dict:
        entry = self._entries.get(query)
        if entry is None:
            raise PlanError(
                f"query {query!r} is not registered; "
                f"known queries: {sorted(self._entries)}"
            )
        if sub_id in self._subs:
            raise PlanError(f"subscription {sub_id} already exists")
        if mode == "continuous":
            if entry.fit is None:
                raise PlanError(
                    f"continuous subscription to {entry.name!r} needs a "
                    f"fit spec (attrs/key_fields) and none was registered"
                )
            bound = self._resolve_bound(entry, bound)
        else:
            bound = None
        # Every precondition above is checked before the WAL write, so
        # a logged subscribe always re-executes cleanly on replay.
        self._log(("subscribe", sub_id, query, mode, bound))
        key = (query, mode)
        graph = self._graphs.get(key)
        if graph is None:
            graph = self._make_graph(entry, mode, bound)
            self._graphs[key] = graph
        elif (
            mode == "continuous"
            and graph.solve_bound is not None
            and bound < graph.solve_bound
        ):
            # A tighter subscriber arrived: retarget the shared graph
            # *before* admitting it, so segments sealed at the old
            # bound fan out only to the subscribers that bound served.
            self._retarget_graph(graph, bound)
        sub = _Subscription(
            sub_id=sub_id,
            graph=graph,
            bound=bound,
            session_id=session_id,
            retained=self._new_retained(),
        )
        graph.subs[sub_id] = sub
        self._subs[sub_id] = sub
        self.max_sub_id = max(self.max_sub_id, sub_id)
        self._update_sub_gauges()
        return {
            "subscription": sub_id,
            "graph": graph.runtime_name,
            "mode": mode,
            "error_bound": bound,
            "solve_bound": graph.solve_bound,
            "cursor": sub.cursor,
            "streams": list(graph.streams),
        }

    def _make_graph(
        self, entry: _QueryEntry, mode: str, bound: float | None
    ) -> _SharedGraph:
        streams = tuple(entry.planned.stream_sources)
        if mode == "continuous":
            runtime_name = f"{entry.name}~c"
            compiled = to_continuous_plan(entry.planned)
        else:
            runtime_name = f"{entry.name}~d"
            compiled = to_discrete_plan(entry.planned)
        stream_map = {s: f"{runtime_name}/{s}" for s in streams}
        namespaced_sources = {
            stream_map[s]: compiled.stream_sources[s] for s in streams
        }
        if mode == "continuous":
            namespaced = TransformedQuery(
                compiled.plan,
                namespaced_sources,
                sample_period=compiled.sample_period,
                inferred_period=compiled.inferred_period,
                error_bound=compiled.error_bound,
            )
        else:
            namespaced = LoweredQuery(compiled.plan, namespaced_sources)
        graph = _SharedGraph(
            runtime_name=runtime_name,
            entry=entry,
            mode=mode,
            solve_bound=bound if mode == "continuous" else None,
            streams=streams,
            stream_map=stream_map,
        )
        if mode == "continuous":
            fit = entry.fit
            if fit is None:
                raise PlanError(
                    f"continuous subscription to {entry.name!r} needs a "
                    f"fit spec (attrs/key_fields) and none was registered"
                )
            for s in streams:
                graph.builders[s] = StreamModelBuilder(
                    fit.attrs,
                    bound,
                    key_fields=fit.key_fields,
                    constants=fit.effective_constants,
                )
        self.runtime.register(runtime_name, namespaced)
        if mode == "continuous":
            self.runtime.rebind_bound(runtime_name, bound)
        return graph

    def _retarget_graph(self, graph: _SharedGraph, bound: float) -> None:
        """Move a shared graph's solve bound to ``bound`` (the new
        tightest subscribed bound, tighter or looser than before).

        Open fitting windows cannot be re-fit without the raw tuples,
        so they seal at the *old* bound — those segments were promised
        to the subscribers that bound served and flow to them through
        the normal pump — and every tuple from here on fits (and every
        equation system solves) at the new bound.
        """
        for stream, builder in graph.builders.items():
            for seg in builder.retarget(bound):
                self.runtime.enqueue(graph.stream_map[stream], seg)
        graph.solve_bound = bound
        self.runtime.rebind_bound(graph.runtime_name, bound)
        graph.retightens += 1
        self._retighten_counter.bump()
        self._pump()

    def _do_unsubscribe(self, sub_id: int) -> dict:
        sub = self._subs.get(sub_id)
        if sub is None:
            raise PlanError(f"unknown subscription {sub_id}")
        self._log(("unsubscribe", sub_id))
        del self._subs[sub_id]
        graph = sub.graph
        del graph.subs[sub_id]
        if not graph.subs:
            # Last subscriber gone: tear the shared graph down.  Its
            # fitted state only had meaning relative to live bounds;
            # keeping it alive leaked the runtime registration, the
            # builders and the delta tracker forever.
            self._teardown_graph(graph)
        elif (
            graph.mode == "continuous"
            and sub.bound == graph.solve_bound
            and graph.tightest_bound() != graph.solve_bound
        ):
            # The departed subscriber was the (sole) tightest: relax
            # the shared bound to the tightest remaining one.
            self._retarget_graph(graph, graph.tightest_bound())
        self._update_sub_gauges()
        return {"subscription": sub_id}

    def _teardown_graph(self, graph: _SharedGraph) -> None:
        self.runtime.unregister(graph.runtime_name)
        del self._graphs[(graph.entry.name, graph.mode)]
        graph.builders.clear()

    def _new_retained(self) -> deque | None:
        return (
            deque(maxlen=self.retain_results)
            if self.retain_results
            else None
        )

    def _do_attach(
        self,
        sub_id: int,
        session_id: int | None,
        from_cursor: int | None = None,
    ) -> dict:
        """Re-bind a detached (recovered) subscription to a session.

        Session binding is ephemeral by design — it dies with the
        process and is *not* WAL-logged; only the subscription itself
        (and its cursor) is durable.

        With ``from_cursor``, the ack also carries ``replayed``: the
        serialized outputs at cursor positions ``[from_cursor,
        cursor)``, re-delivered from the retained tail so a subscriber
        that saw its connection die mid-delivery resumes with no gap.
        Asking for history older than the retention window is a typed
        error — the gap is real and must not be papered over.
        """
        sub = self._subs.get(sub_id)
        if sub is None:
            raise PlanError(f"unknown subscription {sub_id}")
        if (
            sub.session_id is not None
            and sub.session_id != session_id
            and sub.session_id in self._sessions
        ):
            raise PlanError(
                f"subscription {sub_id} is attached to a live session"
            )
        replayed: list = []
        if from_cursor is not None:
            if not 0 <= from_cursor <= sub.cursor:
                raise PlanError(
                    f"from_cursor {from_cursor} outside [0, {sub.cursor}] "
                    f"for subscription {sub_id}"
                )
            missing = sub.cursor - from_cursor
            retained = sub.retained if sub.retained is not None else ()
            if missing > len(retained):
                raise PlanError(
                    f"retention exceeded: subscription {sub_id} is at "
                    f"cursor {sub.cursor} but only {len(retained)} "
                    f"outputs are retained; cannot replay from "
                    f"{from_cursor}"
                )
            if missing:
                replayed = list(retained)[len(retained) - missing:]
        sub.session_id = session_id
        graph = sub.graph
        return {
            "subscription": sub_id,
            "graph": graph.runtime_name,
            "query": graph.entry.name,
            "mode": graph.mode,
            "error_bound": sub.bound,
            "solve_bound": graph.solve_bound,
            "cursor": sub.cursor,
            "streams": list(graph.streams),
            "replayed": serialize_results(replayed),
        }

    def _update_sub_gauges(self) -> None:
        self._active_subs_gauge.set(len(self._subs))
        self._shared_graphs_gauge.set(len(self._graphs))

    def _do_ingest(
        self,
        session_id: int | None,
        stream: str,
        tuples: Sequence[StreamTuple],
        policy: str | None,
    ) -> dict:
        t0 = time.perf_counter()
        tracer = tracing.current_tracer()
        span = None
        if tracer is not None:
            parent = self._session_spans.get(session_id)
            span = tracer.start_detached(
                "ingest",
                "ingest",
                parent_id=parent.span_id if parent is not None else None,
                stream=stream,
                tuples=len(tuples),
            )
        counts = {
            "accepted": 0,
            "blocked": 0,
            "shed": 0,
            "no_consumer": 0,
            "fit_rejected": 0,
        }
        if self._durability is not None and not self._replaying:
            # Write-ahead at the tuple boundary: raw tuples go to disk
            # before fitting can fold them into builder state.
            self._log(("ingest", stream, list(tuples), policy))
            self.ingest_tuples += len(tuples)
        consumers = [
            graph
            for graph in self._graphs.values()
            if stream in graph.stream_map
        ]
        previous_policy = self.runtime.backpressure
        if policy is not None:
            # Per-connection back-pressure: the policy rides with the
            # batch and is restored afterwards — commands on the engine
            # thread are serialized, so this cannot interleave.
            self.runtime.backpressure = policy
        try:
            for tup in tuples:
                if not consumers:
                    counts["no_consumer"] += 1
                    continue
                admitted = True
                for graph in consumers:
                    if graph.mode == "discrete":
                        if not self.runtime.enqueue(
                            graph.stream_map[stream], tup
                        ):
                            admitted = False
                    else:
                        segments = self._fit(graph, stream, tup, counts)
                        for seg in segments:
                            if not self.runtime.enqueue(
                                graph.stream_map[stream], seg
                            ):
                                admitted = False
                if admitted:
                    counts["accepted"] += 1
                else:
                    bp = self.runtime.backpressure
                    counts["shed" if bp == "shed-newest" else "blocked"] += 1
        finally:
            self.runtime.backpressure = previous_policy
        self._ingested_counter.bump(counts["accepted"])
        if counts["no_consumer"]:
            self._no_consumer_counter.bump(counts["no_consumer"])
        self._pump()
        self._ingest_hist.observe(time.perf_counter() - t0)
        if tracer is not None and span is not None:
            tracer.finish_detached(span, **counts)
        if (
            self.checkpoint_every
            and self._durability is not None
            and not self._replaying
            and self.ingest_tuples - self._tuples_at_checkpoint
            >= self.checkpoint_every
        ):
            self._do_checkpoint()
        return counts

    def _fit(
        self, graph: _SharedGraph, stream: str, tup: StreamTuple, counts: dict
    ) -> list:
        """One tuple through the graph's segmenter; [] on rejection.

        Fit preconditions (modeled attrs and key fields present and
        numeric where modeled) are checked *before* the segmenter sees
        the tuple: ``MultiAttributeSegmenter.add`` consumes the point
        attribute-by-attribute, so letting it raise midway would leave
        the per-attribute windows inconsistent.
        """
        fit = graph.entry.fit
        for attr in fit.attrs:
            value = tup.get(attr)
            if isinstance(value, bool) or not isinstance(
                value, (int, float)
            ):
                counts["fit_rejected"] += 1
                graph.fit_rejects += 1
                return []
        for key_field in fit.key_fields:
            if key_field not in tup:
                counts["fit_rejected"] += 1
                graph.fit_rejects += 1
                return []
        return graph.builders[stream].add(tup)

    def _do_flush(self) -> dict:
        """End-of-stream barrier: close every open fitted segment,
        drain the runtime, deliver everything."""
        # Flush mutates builder state (open windows close), so it is a
        # WAL event like any other state-changing command.
        self._log(("flush",))
        flushed = 0
        for graph in self._graphs.values():
            for stream, builder in graph.builders.items():
                for seg in builder.finish():
                    # finish() is called at end of trace; admission uses
                    # the server's standing policy, not any connection's.
                    if self.runtime.enqueue(graph.stream_map[stream], seg):
                        flushed += 1
        processed = self._pump()
        return {"flushed_segments": flushed, "processed": processed}

    # ------------------------------------------------------------------
    # durability (engine thread)
    # ------------------------------------------------------------------
    def _do_checkpoint(self) -> dict:
        """Atomic snapshot of entries, graphs, subscriptions, builders
        and the runtime."""
        if self._durability is None:
            raise PlanError("server has no WAL directory configured")
        state = {
            "version": BRIDGE_SNAPSHOT_VERSION,
            "entries": [
                (e.name, e.text, e.fit) for e in self._entries.values()
            ],
            "graphs": [
                {
                    "query": graph.entry.name,
                    "mode": graph.mode,
                    "runtime_name": graph.runtime_name,
                    "solve_bound": graph.solve_bound,
                    "builders": graph.builders,
                    "seq": graph.seq,
                    "fit_rejects": graph.fit_rejects,
                    "retightens": graph.retightens,
                }
                for graph in self._graphs.values()
            ],
            "subscriptions": [
                {
                    "sub_id": sub.sub_id,
                    "query": sub.graph.entry.name,
                    "mode": sub.graph.mode,
                    "bound": sub.bound,
                    "cursor": sub.cursor,
                    # The retained output tail must survive snapshots:
                    # a checkpoint can cover outputs whose delivery the
                    # crash then destroys, and WAL replay only refills
                    # retention for post-snapshot commands.
                    "retained": list(sub.retained or ()),
                }
                for sub in self._subs.values()
            ],
            "max_sub_id": self.max_sub_id,
            "runtime": self.runtime.checkpoint_state(),
            "ingest_tuples": self.ingest_tuples,
        }
        info = self._durability.checkpoint(state)
        self._tuples_at_checkpoint = self.ingest_tuples
        return {
            "seq": info["seq"],
            "bytes": info["bytes"],
            "duration_s": info["duration_s"],
            "ingest_tuples": self.ingest_tuples,
        }

    def _load_snapshot(self, state: Mapping) -> None:
        version = state.get("version")
        if version != BRIDGE_SNAPSHOT_VERSION:
            raise PlanError(
                f"unsupported bridge snapshot version {version!r}"
            )
        self._entries = {}
        for name, text, fit in state["entries"]:
            # Query plans are re-derived from text (deterministic and
            # robust across code changes); operator *state* rides in
            # the runtime snapshot's pickled plan graph instead.
            planned = plan_query(parse_query(text))
            self._entries[name] = _QueryEntry(name, text, planned, fit)
        self.runtime.restore_state(state["runtime"])
        self._graphs = {}
        for item in state["graphs"]:
            entry = self._entries[item["query"]]
            streams = tuple(entry.planned.stream_sources)
            runtime_name = item["runtime_name"]
            graph = _SharedGraph(
                runtime_name=runtime_name,
                entry=entry,
                mode=item["mode"],
                solve_bound=item["solve_bound"],
                streams=streams,
                stream_map={
                    s: f"{runtime_name}/{s}" for s in streams
                },
                builders=item["builders"],
                seq=item["seq"],
                fit_rejects=item["fit_rejects"],
                retightens=item["retightens"],
            )
            self._graphs[(entry.name, item["mode"])] = graph
        self._subs = {}
        for item in state["subscriptions"]:
            graph = self._graphs[(item["query"], item["mode"])]
            retained = self._new_retained()
            if retained is not None:
                retained.extend(item.get("retained", ()))
            sub = _Subscription(
                sub_id=item["sub_id"],
                graph=graph,
                bound=item["bound"],
                session_id=None,  # sessions die with the process
                cursor=item["cursor"],
                retained=retained,
            )
            graph.subs[sub.sub_id] = sub
            self._subs[sub.sub_id] = sub
        self.max_sub_id = state["max_sub_id"]
        self.ingest_tuples = state["ingest_tuples"]
        self._update_sub_gauges()

    def _apply_record(self, record: tuple) -> None:
        """Replay one WAL record through the normal command paths."""
        kind = record[0]
        if kind == "register":
            _, name, text, fit = record
            if name not in self._entries:
                self._do_register(name, text, fit)
        elif kind == "subscribe":
            _, sub_id, qname, mode, bound = record
            if qname in self._entries and sub_id not in self._subs:
                self._do_subscribe(sub_id, qname, mode, bound, None)
        elif kind == "unsubscribe":
            _, sub_id = record
            if sub_id in self._subs:
                self._do_unsubscribe(sub_id)
        elif kind == "ingest":
            _, stream, tuples, policy = record
            self.ingest_tuples += len(tuples)
            self._do_ingest(None, stream, tuples, policy)
        elif kind == "flush":
            self._do_flush()
        # Unknown kinds: skip (forward compatibility), never crash.

    def _do_restore(self) -> dict:
        """Recover on start: newest valid snapshot + WAL-tail replay.

        The subscription table recovers with the graphs: restored
        subscriptions are *detached* (no session) but keep advancing
        their cursors through the replayed tail, so a client that
        ``attach``-es after reconnect resumes from a cursor that is
        bit-exact with the pre-crash delivery stream.  Delivery itself
        is suppressed during replay (``on_outputs`` never fires while
        ``_replaying``).  Damaged WAL frames are skipped with
        accounting in the returned report.
        """
        tracer = tracing.current_tracer()
        span = (
            tracer.start_detached("recovery", "recovery") if tracer else None
        )
        start = time.perf_counter()
        state, report, records = self._durability.recover()
        self._replaying = True
        try:
            if state is not None:
                self._load_snapshot(state)
            for _seq, record in records:
                self._apply_record(record)
        finally:
            self._replaying = False
        self._durability.finish_recovery(report)
        report.duration_s = time.perf_counter() - start
        self.recovery_report = report.as_dict()
        self._sync_notification_baseline()
        if report.replayed:
            # Fold the replayed tail into a fresh checkpoint so a
            # crash loop never replays the same tail twice.
            self._do_checkpoint()
        else:
            self._tuples_at_checkpoint = self.ingest_tuples
        if tracer and span is not None:
            tracer.finish_detached(
                span,
                snapshot_seq=report.snapshot_seq,
                replayed=report.replayed,
                recovered_seq=report.recovered_seq,
            )
        return self.recovery_report

    def _sync_notification_baseline(self) -> None:
        """Replay re-trips sheds/breakers; don't re-notify history."""
        self._last_shed = self.runtime.items_shed
        self._last_dropped = self.runtime.items_dropped
        watchdog = self.runtime.resilience_stats().get("watchdog")
        if watchdog is not None:
            self._last_slow = watchdog["slow_solves"]
        if self.runtime.breaker is not None:
            self._last_open = frozenset(self.runtime.breaker.open_keys())

    def _do_stats(self) -> dict:
        stats: dict = {
            "queries": sorted(self._entries),
            "query_streams": {
                name: sorted(entry.planned.stream_sources)
                for name, entry in self._entries.items()
            },
            "graphs": {
                graph.runtime_name: {
                    **graph.info(),
                    "subscribers": len(graph.subs),
                    "fit_rejected": graph.fit_rejects,
                    "retightens": graph.retightens,
                    "outputs_emitted": graph.seq,
                }
                for graph in self._graphs.values()
            },
            "subscriptions": {
                str(sub.sub_id): {
                    "query": sub.graph.entry.name,
                    "mode": sub.graph.mode,
                    "error_bound": sub.bound,
                    "solve_bound": sub.graph.solve_bound,
                    "cursor": sub.cursor,
                    "attached": sub.session_id in self._sessions,
                }
                for sub in self._subs.values()
            },
            "queue_depths": dict(self.runtime.queue_depths()),
            "total_pending": self.runtime.total_pending,
            "items_enqueued": self.runtime.items_enqueued,
            "items_shed": self.runtime.items_shed,
            "items_dropped": self.runtime.items_dropped,
            "resilience": _json_safe(self.runtime.resilience_stats()),
        }
        parallel = self.runtime.parallel_stats()
        if parallel is not None:
            stats["parallel"] = _json_safe(parallel)
        if self._durability is not None:
            stats["durability"] = _json_safe(
                {
                    "wal_dir": self._durability.directory,
                    "ingest_tuples": self.ingest_tuples,
                    "wal_seq": self._durability.last_seq,
                    "recovery": self.recovery_report,
                }
            )
        return stats

    def _do_open_session(self, session_id: int, peer: str) -> None:
        self._sessions.add(session_id)
        tracer = tracing.current_tracer()
        if tracer is not None:
            self._session_spans[session_id] = tracer.start_detached(
                "session", "session", peer=peer, session=session_id
            )

    def _do_close_session(self, session_id: int) -> None:
        # Subscriptions owned by the session die with it — durably, so
        # the last departure tears the shared graph down exactly as an
        # explicit unsubscribe would.
        for sub_id, sub in list(self._subs.items()):
            if sub.session_id == session_id:
                self._do_unsubscribe(sub_id)
        self._sessions.discard(session_id)
        span = self._session_spans.pop(session_id, None)
        if span is not None:
            tracer = tracing.current_tracer()
            if tracer is not None:
                tracer.finish_detached(span)

    # ------------------------------------------------------------------
    # the pump: drain, deliver, notify
    # ------------------------------------------------------------------
    def _pump(self) -> int:
        """Drain the runtime, fan each graph's outputs out per
        subscriber, advance cursors, notify.

        Cursors advance for **every** subscription of a graph whenever
        the graph emits — connection-alive, detached, or mid-replay —
        which is what makes them a deterministic function of the
        durable command stream and therefore bit-exact across a crash
        and recovery.  Delivery (``on_outputs``) and tracing are
        suppressed during replay; the cursor arithmetic is not.
        """
        processed = self.runtime.run_until_idle()
        tracer = tracing.current_tracer()
        for graph in self._graphs.values():
            outputs = self.runtime.outputs(graph.runtime_name)
            if not outputs:
                continue
            graph.seq += len(outputs)
            subscribers: list[tuple[int, int]] = []
            for sub in graph.subs.values():
                at = sub.cursor
                sub.cursor += len(outputs)
                if sub.retained is not None:
                    # Retention advances with the cursor everywhere the
                    # cursor does — replay included — so the tail always
                    # holds the positions just below ``cursor``.
                    sub.retained.extend(outputs)
                subscribers.append((sub.sub_id, at))
                if tracer is not None and not self._replaying:
                    parent = self._session_spans.get(sub.session_id)
                    tracer.event_under(
                        parent.span_id if parent is not None else None,
                        "emit",
                        "emit",
                        subscription=sub.sub_id,
                        outputs=len(outputs),
                        cursor=at,
                    )
            if (
                self.on_outputs is not None
                and subscribers
                and not self._replaying
            ):
                self.on_outputs(subscribers, graph.info(), outputs)
        self._emit_notifications()
        return processed

    def _emit_notifications(self) -> None:
        if self.on_notify is None or self._replaying:
            return
        shed, dropped = self.runtime.items_shed, self.runtime.items_dropped
        if shed > self._last_shed or dropped > self._last_dropped:
            self.on_notify(
                "backpressure",
                {
                    "policy": self.runtime.backpressure,
                    "shed": shed - self._last_shed,
                    "dropped": dropped - self._last_dropped,
                },
            )
            self._last_shed, self._last_dropped = shed, dropped
        watchdog = self.runtime.resilience_stats().get("watchdog")
        if watchdog is not None and watchdog["slow_solves"] > self._last_slow:
            self.on_notify(
                "alert",
                {
                    "kind": "slow_solve",
                    "count": watchdog["slow_solves"] - self._last_slow,
                    "budget_s": watchdog["budget_s"],
                },
            )
            self._last_slow = watchdog["slow_solves"]
        breaker = self.runtime.breaker
        if breaker is not None:
            open_now = frozenset(breaker.open_keys())
            if open_now != self._last_open:
                self.on_notify(
                    "breaker",
                    {
                        "open": sorted(
                            [q, _json_safe(k)] for q, k in open_now
                        ),
                        "snapshot": breaker.snapshot(),
                    },
                )
                self._last_open = open_now


def _json_safe(value):
    """Recursively coerce stats structures to JSON-encodable shapes."""
    if isinstance(value, Mapping):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_json_safe(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, PulseError) or isinstance(value, Exception):
        return repr(value)
    return repr(value)
