"""Multi-node fleet front end: key-routed ingest with a deterministic
merge edge.

:class:`PulseRouter` speaks the same NDJSON protocol as
:class:`~.server.PulseServer` but owns no engine.  It holds one
:class:`~.client.PulseClient` per worker server and composes three
previously independent subsystems into a distributed runtime:

* **Shard routing** (PR 3): every ingested tuple is assigned a worker
  by :func:`~repro.engine.sharding.shard_of` on its routing key — the
  same BLAKE2b assignment the in-process parallel runtime uses, so the
  placement is stable across processes, restarts and machines.
  Routing keys come from registered fit specs (``key_fields``), which
  is exactly the granularity at which Pulse's equation systems are
  independent: a worker that owns a key owns *all* of that key's
  arrivals, so for per-key-partitionable queries each worker produces,
  for its arrivals, bit-for-bit the outputs a single server would
  have.
* **The wire protocol** (PR 5): ``register``/``subscribe``/``flush``
  fan out to every worker; ``ingest`` splits into *runs* (maximal
  spans of consecutive same-worker tuples) that are pipelined — at
  most one request in flight per worker — and merged back in run
  order, which is global arrival order.
* **Durability** (PR 7): each worker keeps its own WAL and recovers
  independently; the router turns that into a *fleet* guarantee (see
  below).

**The merge edge.**  Result pushes from workers are not forwarded
blindly.  Per ``(worker, subscription)`` the router tracks
``collected`` — the worker-side cursor it has merged through; each
push carries the worker's cursor, so a re-delivered output is trimmed
(``results[collected - cursor:]``) and can never reach a subscriber
twice, while a cursor *ahead* of ``collected`` is a loud
inconsistency, never a silent gap.  Merged pushes carry ``seq`` — the
router-level per-subscription sequence — plus the originating
``worker``.  Flush tails are the one place worker streams interleave
*within* one request: a single engine drains its fitted-model tails in
key arrival order since the last flush (builders are cleared at every
barrier), a fleet drains worker-major; the router records each key's
since-last-flush arrival ordinal at routing time
(:class:`~repro.engine.sharding.KeyOrdinals`, reset per barrier) and
stable-sorts the buffered flush tail back into the single-engine
order.

**Fleet recovery.**  Workers run ``fsync_every=1`` and
``retain_results > 0``.  When a worker socket dies, the router marks
the worker down and finishes nothing early: recovery runs exactly when
the dead worker's next run reaches its merge position, so no other
worker's results are reordered around the outage.  Recovery replays
the bounded :meth:`~.client.PulseClient.reconnect` dance, then:

1. merges any pushes read before the crash (advancing ``collected``);
2. reads the worker's recovered durable offset
   (``stats.engine.durability.ingest_tuples``);
3. re-binds every subscription with ``attach(from_cursor=collected)``
   — the worker's retained-output replay closes the gap between what
   the router merged and what the worker recovered, exactly once;
4. re-ingests the sent-but-unacked tuples at offsets the worker's WAL
   never saw (``offset >= durable`` are retransmitted; older ones are
   already folded into worker state and their outputs arrived in
   step 3).

Because at most one run per worker is ever outstanding, the
sent-but-unacked window is one run, the retention window a worker
needs is one run's outputs, and the merged subscriber stream is
bit-exact through a worker ``SIGKILL`` — no duplicate, no gap, no
reordering.

The contract: queries must be per-key partitionable (filters,
per-key windows — anything whose output for a key depends only on
that key's arrivals).  Cross-key operators (joins across keys, global
aggregates) need a different placement and are rejected by review,
not by the router.
"""

from __future__ import annotations

import socket
import threading
from collections import deque
from dataclasses import dataclass, field

from ..core.errors import PulseError
from ..engine.metrics import get_counter
from ..engine.sharding import KeyOrdinals, shard_of, tuple_key
from . import protocol
from .client import PulseClient, ServerError

#: Counts an ingest ack's admission fields when summing across runs.
_COUNT_FIELDS = (
    "accepted", "blocked", "shed", "no_consumer", "fit_rejected",
)


@dataclass(frozen=True)
class RouterConfig:
    """Everything a router needs besides its workers' addresses."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral, read back from .port after start()
    #: Worker addresses as ``(host, port)`` pairs, in shard order:
    #: worker ``i`` owns the keys with ``shard_of(key, N) == i``.
    workers: tuple[tuple[str, int], ...] = ()
    #: Routing key fields for streams with no registered fit spec.
    #: Streams learn their real key fields from ``register`` requests
    #: that carry a fit; until then (or without one) this default
    #: applies, and an empty default routes the whole stream to
    #: worker 0 — consistent, just not spread.
    default_key_fields: tuple[str, ...] = ()
    #: Socket timeout for worker connections.
    timeout: float = 30.0
    #: Worker reconnect budget (see :meth:`PulseClient.reconnect`).
    reconnect_attempts: int = 40
    reconnect_base_s: float = 0.05
    reconnect_max_s: float = 0.5


class _WorkerLink:
    """The router's half of one worker connection."""

    __slots__ = (
        "index", "addr", "client", "sent", "unacked", "sub_map",
        "dead", "recoveries",
    )

    def __init__(self, index: int, addr: tuple[str, int],
                 config: RouterConfig):
        self.index = index
        self.addr = addr
        self.client = PulseClient(
            addr[0],
            addr[1],
            timeout=config.timeout,
            reconnect_attempts=config.reconnect_attempts,
            reconnect_base_s=config.reconnect_base_s,
            reconnect_max_s=config.reconnect_max_s,
        )
        self.client.connect()
        #: Tuples ever routed here; mirrors the worker's durable
        #: ``ingest_tuples`` offset once everything in flight is acked.
        self.sent = 0
        #: ``(offset, stream, tuple)`` sent but not yet acked — at most
        #: one run, thanks to the one-in-flight discipline.
        self.unacked: deque[tuple[int, str, dict]] = deque()
        #: worker-side subscription id -> router subscription id.
        self.sub_map: dict[int, int] = {}
        self.dead = False
        self.recoveries = 0


@dataclass
class _RouterSub:
    """One router-level subscription fanned out across the fleet."""

    sub_id: int
    query: str
    mode: str
    session_id: int
    graph: str | None = None
    #: Key fields used to order this subscription's flush tail.
    key_fields: tuple[str, ...] = ()
    #: Per-worker subscription ids (index = worker index).
    worker_subs: list = field(default_factory=list)
    #: Per-worker cursor merged through (the dedup line).
    collected: list = field(default_factory=list)
    #: Router-level cursor: results emitted to the subscriber.
    emitted: int = 0


@dataclass
class _Session:
    """One accepted client connection (handled on its own thread)."""

    session_id: int
    sock: socket.socket
    peer: str
    subscriptions: set = field(default_factory=set)
    requests: int = 0
    closing: bool = False


class PulseRouter:
    """A thread-per-session TCP front end over N worker servers.

    All request dispatch and all merge/emit work runs under one
    router-wide lock: client requests serialize exactly like commands
    on a single server's engine thread, which is what makes "global
    arrival order" well defined for the fleet.  Worker I/O is blocking
    and happens while holding the lock — workers only push during
    router-issued requests, so there is nothing to wait on otherwise.
    """

    def __init__(self, config: RouterConfig):
        if not config.workers:
            raise ValueError("router needs at least one worker address")
        self.config = config
        self._lock = threading.RLock()
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._workers: list[_WorkerLink] = []
        self._sessions: dict[int, _Session] = {}
        self._subs: dict[int, _RouterSub] = {}
        self._next_session = 1
        self._next_sub = 1
        #: stream name -> routing key fields (learned from registers).
        self._stream_keys: dict[str, tuple[str, ...]] = {}
        self._key_ordinals = KeyOrdinals()
        #: Flush-tail merge order.  A single engine's model builders
        #: are cleared at every flush and re-inserted on each key's
        #: next arrival, so its tails drain in arrival-since-last-flush
        #: order — hence a second ordinal map, reset at each barrier.
        self._flush_ordinals = KeyOrdinals()
        #: When set (during flush), merged results buffer here per
        #: router sub instead of being emitted immediately.
        self._flush_buffer: dict[int, list] | None = None
        self._stopping = False
        self.port: int | None = None
        self._routed_counter = get_counter("router.tuples_routed")
        self._merged_counter = get_counter("router.results_merged")
        self._recovery_counter = get_counter("router.worker_recoveries")

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "PulseRouter":
        for index, addr in enumerate(self.config.workers):
            self._workers.append(
                _WorkerLink(index, tuple(addr), self.config)
            )
        listener = socket.create_server(
            (self.config.host, self.config.port), reuse_port=False
        )
        listener.listen(32)
        self._listener = listener
        self.port = listener.getsockname()[1]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="pulse-router-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        self._stopping = True
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        with self._lock:
            for session in list(self._sessions.values()):
                session.closing = True
                try:
                    session.sock.close()
                except OSError:
                    pass
            self._sessions.clear()
            for worker in self._workers:
                try:
                    worker.client.close()
                except OSError:
                    pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
            self._accept_thread = None

    def __enter__(self) -> "PulseRouter":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # sessions
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        listener = self._listener
        while listener is not None and not self._stopping:
            try:
                sock, peername = listener.accept()
            except OSError:
                return  # listener closed
            with self._lock:
                session_id = self._next_session
                self._next_session += 1
                peer = f"{peername[0]}:{peername[1]}" if peername else "?"
                session = _Session(session_id, sock, peer)
                self._sessions[session_id] = session
            thread = threading.Thread(
                target=self._session_loop,
                args=(session,),
                name=f"pulse-router-session-{session_id}",
                daemon=True,
            )
            thread.start()

    def _session_loop(self, session: _Session) -> None:
        reader = session.sock.makefile("rb")
        try:
            while not session.closing:
                line = reader.readline()
                if not line:
                    break
                if line.strip() == b"":
                    continue
                self._dispatch(session, line)
        except (OSError, ValueError):
            pass
        finally:
            self._close_session(session)

    def _close_session(self, session: _Session) -> None:
        with self._lock:
            session.closing = True
            self._sessions.pop(session.session_id, None)
            for sub_id in list(session.subscriptions):
                sub = self._subs.pop(sub_id, None)
                if sub is None:
                    continue
                for worker in self._workers:
                    wsub = sub.worker_subs[worker.index]
                    worker.sub_map.pop(wsub, None)
                    try:
                        self._ensure_alive(worker)
                        worker.client.unsubscribe(wsub)
                        self._merge_worker_pushes(worker)
                    except (OSError, PulseError):
                        worker.dead = True
            session.subscriptions.clear()
            try:
                session.sock.close()
            except OSError:
                pass

    def _write(self, session: _Session, message: dict) -> None:
        if session.closing:
            return
        try:
            session.sock.sendall(protocol.encode(message))
        except OSError:
            session.closing = True

    def _broadcast(self, message: dict) -> None:
        for session in self._sessions.values():
            self._write(session, message)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, session: _Session, line: bytes) -> None:
        req_id = None
        with self._lock:
            session.requests += 1
            try:
                obj = protocol.decode_line(line)
                req_id = obj.get("id")
                op = protocol.validate_request(obj)
                handler = getattr(self, f"_op_{op}")
                response = handler(session, obj)
                if req_id is not None:
                    response["id"] = req_id
                self._write(session, response)
            except Exception as exc:  # one bad request never kills a session
                self._write(session, self._error_response(req_id, exc))

    @staticmethod
    def _error_response(req_id, exc: Exception) -> dict:
        if isinstance(exc, ServerError):
            # A worker's typed error passes through with its code.
            msg: dict = {"type": "error", "code": exc.code,
                         "error": str(exc)}
            if req_id is not None:
                msg["id"] = req_id
            return msg
        return protocol.error_response(req_id, exc)

    # ------------------------------------------------------------------
    # the merge edge
    # ------------------------------------------------------------------
    def _merge_worker_pushes(self, worker: _WorkerLink) -> None:
        """Drain one worker's buffered pushes through dedup into the
        subscriber stream (or the flush buffer)."""
        client = worker.client
        while client.pushed:
            msg = client.pushed.popleft()
            if msg.get("type") != "result":
                notice = dict(msg)
                notice["worker"] = worker.index
                self._broadcast(notice)
                continue
            sub_id = worker.sub_map.get(msg.get("subscription"))
            sub = self._subs.get(sub_id) if sub_id is not None else None
            if sub is None:
                continue  # unsubscribed since; nothing to deliver to
            results = msg.get("results", [])
            expected = sub.collected[worker.index]
            cursor = msg.get("cursor", expected)
            if cursor > expected:
                raise PulseError(
                    f"merge gap: worker {worker.index} pushed cursor "
                    f"{cursor} for subscription {sub.sub_id} but only "
                    f"{expected} outputs were merged"
                )
            fresh = results[expected - cursor:]
            sub.collected[worker.index] = max(
                expected, cursor + len(results)
            )
            if not fresh:
                continue  # fully re-delivered; dedup swallowed it
            if self._flush_buffer is not None:
                self._flush_buffer.setdefault(sub.sub_id, []).extend(
                    (self._result_ordinal(sub, res), res)
                    for res in fresh
                )
            else:
                self._emit(sub, msg, fresh, worker.index)

    def _emit(self, sub: _RouterSub, template: dict, results: list,
              worker_index: int) -> None:
        message = {
            "type": "result",
            "subscription": sub.sub_id,
            "query": template.get("query", sub.query),
            "mode": template.get("mode", sub.mode),
            "graph": template.get("graph", sub.graph),
            "seq": sub.emitted,
            "cursor": sub.emitted,
            "worker": worker_index,
            "results": results,
        }
        sub.emitted += len(results)
        self._merged_counter.bump(len(results))
        session = self._sessions.get(sub.session_id)
        if session is not None:
            self._write(session, message)

    def _result_ordinal(self, sub: _RouterSub, result: dict) -> int:
        """A result's key's arrival-since-last-flush ordinal (the
        single-engine flush-tail drain order)."""
        key = result.get("key")
        if key is not None:
            return self._flush_ordinals.ordinal_of(tuple(key))
        return self._flush_ordinals.ordinal_of(
            tuple_key(result, sub.key_fields)
        )

    # ------------------------------------------------------------------
    # fleet recovery
    # ------------------------------------------------------------------
    def _ensure_alive(self, worker: _WorkerLink) -> dict | None:
        """Recover a down worker; returns the recovery's synthesized
        ingest counts (``None`` when the worker was already healthy)."""
        if not worker.dead:
            return None
        return self._recover_worker(worker)

    def _recover_worker(self, worker: _WorkerLink) -> dict:
        """The fleet half of crash recovery (see the module docstring).

        Runs at the dead worker's next merge position, so recovered
        outputs land exactly where the lost run's outputs belonged.
        """
        # 1. Pushes read before the crash advance the dedup line first,
        #    so attach's from_cursor never re-requests merged outputs.
        self._merge_worker_pushes(worker)
        worker.client.reconnect()  # bounded; ReconnectExhausted surfaces
        worker.recoveries += 1
        self._recovery_counter.bump()
        # 2. What did the worker's WAL see?
        stats = worker.client.stats()
        self._merge_worker_pushes(worker)
        durability = stats.get("engine", {}).get("durability")
        if not durability:
            raise ServerError(
                f"worker {worker.index} at {worker.addr[0]}:"
                f"{worker.addr[1]} is not durable; fleet recovery "
                f"requires workers with a WAL directory"
            )
        durable = durability["ingest_tuples"]
        # 3. Re-bind subscriptions; retained-output replay closes the
        #    delivery gap [collected, recovered cursor) exactly once.
        for sub_id, sub in self._subs.items():
            if worker.index >= len(sub.worker_subs):
                continue  # mid-fan-out: this worker never saw the sub
            wsub = sub.worker_subs[worker.index]
            worker.client.attach(
                wsub, from_cursor=sub.collected[worker.index]
            )
            self._merge_worker_pushes(worker)
        # 4. Retransmit what the WAL never saw; older unacked tuples
        #    are already in worker state (their outputs came via the
        #    attach replay) and must NOT be re-ingested.
        resend = [entry for entry in worker.unacked if entry[0] >= durable]
        recovered = len(worker.unacked) - len(resend)
        worker.unacked.clear()
        counts = {name: 0 for name in _COUNT_FIELDS}
        counts["accepted"] = recovered  # durable => admitted pre-crash
        start = 0
        while start < len(resend):
            stream = resend[start][1]
            stop = start
            while stop < len(resend) and resend[stop][1] == stream:
                stop += 1
            batch = [dict(entry[2]) for entry in resend[start:stop]]
            ack = worker.client.ingest(stream, batch)
            self._merge_worker_pushes(worker)
            for name in _COUNT_FIELDS:
                counts[name] += ack.get(name, 0)
            start = stop
        worker.dead = False
        counts["recovered_durable"] = recovered
        counts["retransmitted"] = len(resend)
        return counts

    # ------------------------------------------------------------------
    # ingest: run-split fan-out with one in-flight request per worker
    # ------------------------------------------------------------------
    def _op_ingest(self, session: _Session, obj: dict) -> dict:
        stream = obj.get("stream")
        if not isinstance(stream, str) or not stream:
            raise protocol.ProtocolError(
                "'stream' must be a non-empty string"
            )
        raw_tuples = obj.get("tuples")
        if not isinstance(raw_tuples, list):
            raise protocol.ProtocolError("'tuples' must be a list")
        valid = []
        rejected = 0
        rejected_nonfinite = 0
        for raw in raw_tuples:
            try:
                valid.append(protocol.validate_tuple(raw))
            except protocol.ProtocolError as exc:
                rejected += 1
                if exc.code == "nonfinite":
                    rejected_nonfinite += 1
        key_fields = self._stream_keys.get(
            stream, self.config.default_key_fields
        )
        num_workers = len(self._workers)
        # Maximal spans of consecutive same-worker tuples: each run is
        # one worker request, and run order is global arrival order.
        runs: list[tuple[int, list[dict]]] = []
        for tup in valid:
            key = tuple_key(tup, key_fields)
            self._key_ordinals.observe(key)
            self._flush_ordinals.observe(key)
            target = shard_of(key, num_workers)
            if runs and runs[-1][0] == target:
                runs[-1][1].append(dict(tup))
            else:
                runs.append((target, [dict(tup)]))
        self._routed_counter.bump(len(valid))
        totals = {name: 0 for name in _COUNT_FIELDS}
        for ack in self._run_fanout(stream, runs):
            for name in _COUNT_FIELDS:
                totals[name] += ack.get(name, 0)
        return {
            "type": "ack",
            "stream": stream,
            "rejected": rejected,
            "rejected_nonfinite": rejected_nonfinite,
            "runs": len(runs),
            **totals,
        }

    def _run_fanout(
        self, stream: str, runs: list[tuple[int, list[dict]]]
    ) -> list[dict]:
        """Send runs with at most one in flight per worker; collect
        acks (and merge pushes) in global run order."""
        num_workers = len(self._workers)
        per_worker: list[list[int]] = [[] for _ in range(num_workers)]
        for index, (target, _tuples) in enumerate(runs):
            per_worker[target].append(index)
        next_run = [0] * num_workers  # per-worker send pointer
        inflight: list[int | None] = [None] * num_workers
        req_ids: dict[int, int | None] = {}

        def pump(worker: _WorkerLink) -> None:
            windex = worker.index
            if inflight[windex] is not None:
                return
            if next_run[windex] >= len(per_worker[windex]):
                return
            run_index = per_worker[windex][next_run[windex]]
            next_run[windex] += 1
            tuples = runs[run_index][1]
            base = worker.sent
            # Sent-accounting happens whether or not the bytes make it:
            # a send that errors mid-way may still have delivered the
            # full request, so recovery must treat it as in flight.
            worker.unacked.extend(
                (base + i, stream, tup) for i, tup in enumerate(tuples)
            )
            worker.sent += len(tuples)
            if worker.dead:
                req_ids[run_index] = None  # retransmitted at merge time
            else:
                try:
                    req_ids[run_index] = worker.client.send_request(
                        "ingest", stream=stream, tuples=tuples
                    )
                except OSError:
                    worker.dead = True
                    req_ids[run_index] = None
            inflight[windex] = run_index

        for worker in self._workers:
            pump(worker)

        acks: list[dict] = []
        for run_index, (target, tuples) in enumerate(runs):
            worker = self._workers[target]
            assert inflight[target] == run_index, "run collection order"
            req_id = req_ids.pop(run_index)
            ack: dict | None = None
            if not worker.dead and req_id is not None:
                try:
                    ack = worker.client.read_reply(req_id)
                    for _ in tuples:
                        worker.unacked.popleft()
                except (OSError, ServerError) as exc:
                    if isinstance(exc, ServerError) and exc.code != "eof":
                        raise  # a typed refusal, not a dead worker
                    worker.dead = True
            if worker.dead:
                # This run's merge position IS the recovery point.
                ack = self._recover_worker(worker)
            inflight[target] = None
            self._merge_worker_pushes(worker)
            acks.append(ack if ack is not None else {})
            pump(worker)
        return acks

    # ------------------------------------------------------------------
    # fan-out ops
    # ------------------------------------------------------------------
    def _op_hello(self, session: _Session, obj: dict) -> dict:
        if obj.get("backpressure") is not None:
            raise protocol.ProtocolError(
                "router sessions do not carry a per-session backpressure "
                "policy; configure the workers"
            )
        worker = self._workers[0]
        self._ensure_alive(worker)
        hello = worker.client.connect()
        self._merge_worker_pushes(worker)
        return {
            "type": "hello",
            "server": protocol.SERVER_NAME,
            "protocol": protocol.PROTOCOL_VERSION,
            "role": "router",
            "workers": len(self._workers),
            "queries": hello.get("queries", []),
            "streams": hello.get("streams", []),
        }

    def _op_register(self, session: _Session, obj: dict) -> dict:
        name = obj.get("name")
        text = obj.get("query")
        if not isinstance(name, str) or not name:
            raise protocol.ProtocolError("'name' must be a non-empty string")
        if not isinstance(text, str) or not text:
            raise protocol.ProtocolError("'query' must be a non-empty string")
        fit = obj.get("fit")
        first_ack: dict | None = None
        for worker in self._workers:
            self._ensure_alive(worker)
            try:
                ack = worker.client.register(name, text, fit)
            except ServerError as exc:
                if exc.code == "eof":
                    worker.dead = True
                    self._recover_worker(worker)
                    try:
                        ack = worker.client.register(name, text, fit)
                    except ServerError as retry_exc:
                        if "already registered" not in str(retry_exc):
                            raise
                        # The pre-crash register was durable.
                        ack = {"registered": name, "streams": []}
                elif worker.index > 0 and "already registered" in str(exc):
                    # A previous partially-failed register reached this
                    # worker; converging on registered is the fix.
                    ack = {"registered": name, "streams": []}
                else:
                    raise
            self._merge_worker_pushes(worker)
            if first_ack is None or ack.get("streams"):
                first_ack = ack
        assert first_ack is not None
        # Routing learns its key fields here: the fit's key_fields are
        # the granularity at which this query's streams partition.
        if isinstance(fit, dict) and fit.get("key_fields"):
            fields = tuple(fit["key_fields"])
            for stream in first_ack.get("streams", ()):
                self._stream_keys.setdefault(stream, fields)
        return {
            "type": "ack",
            "workers": len(self._workers),
            **{k: v for k, v in first_ack.items() if k != "id"},
        }

    def _op_subscribe(self, session: _Session, obj: dict) -> dict:
        query = obj.get("query")
        if not isinstance(query, str):
            raise protocol.ProtocolError("'query' must be a string")
        mode = obj.get("mode", "continuous")
        if mode not in protocol.MODES:
            raise protocol.ProtocolError(
                f"mode must be one of {protocol.MODES}"
            )
        bound = obj.get("error_bound")
        if bound is not None:
            if isinstance(bound, bool) or not isinstance(bound, (int, float)):
                raise protocol.ProtocolError("'error_bound' must be a number")
            bound = float(bound)
            if not bound > 0:
                raise protocol.ProtocolError("'error_bound' must be positive")
        sub_id = self._next_sub
        self._next_sub += 1
        sub = _RouterSub(
            sub_id=sub_id, query=query, mode=mode,
            session_id=session.session_id,
        )
        self._subs[sub_id] = sub
        last_ack: dict | None = None
        try:
            for worker in self._workers:
                self._ensure_alive(worker)
                ack = worker.client.subscribe(query, mode, bound)
                worker.sub_map[ack["subscription"]] = sub_id
                sub.worker_subs.append(ack["subscription"])
                sub.collected.append(ack.get("cursor", 0))
                self._merge_worker_pushes(worker)
                last_ack = ack
        except Exception:
            # Roll back the partial fan-out so no orphan mapping can
            # route results to a subscription that never existed.
            for worker in self._workers[: len(sub.worker_subs)]:
                wsub = sub.worker_subs[worker.index]
                worker.sub_map.pop(wsub, None)
                try:
                    worker.client.unsubscribe(wsub)
                    self._merge_worker_pushes(worker)
                except (OSError, PulseError):
                    worker.dead = True
            del self._subs[sub_id]
            raise
        assert last_ack is not None
        sub.graph = last_ack.get("graph")
        streams = last_ack.get("streams", [])
        for stream in streams:
            if stream in self._stream_keys:
                sub.key_fields = self._stream_keys[stream]
                break
        else:
            sub.key_fields = self.config.default_key_fields
        session.subscriptions.add(sub_id)
        return {
            "type": "ack",
            "subscription": sub_id,
            "graph": sub.graph,
            "mode": mode,
            "error_bound": last_ack.get("error_bound"),
            "solve_bound": last_ack.get("solve_bound"),
            "cursor": 0,
            "streams": streams,
            "workers": len(self._workers),
        }

    def _op_unsubscribe(self, session: _Session, obj: dict) -> dict:
        sub_id = obj.get("subscription")
        if sub_id not in session.subscriptions:
            raise protocol.ProtocolError(
                f"subscription {sub_id!r} does not belong to this session"
            )
        sub = self._subs[sub_id]
        for worker in self._workers:
            self._ensure_alive(worker)
            wsub = sub.worker_subs[worker.index]
            worker.sub_map.pop(wsub, None)
            worker.client.unsubscribe(wsub)
            self._merge_worker_pushes(worker)
        session.subscriptions.discard(sub_id)
        del self._subs[sub_id]
        return {"type": "ack", "subscription": sub_id}

    def _op_attach(self, session: _Session, obj: dict) -> dict:
        """Re-bind a router subscription to a new client session.

        Router-level delivery continuity across a *router* crash is
        out of scope (workers already hold the durable state); what
        attach gives a reconnecting client here is ownership of a
        live subscription another session abandoned.
        """
        sub_id = obj.get("subscription")
        sub = self._subs.get(sub_id)
        if sub is None:
            raise protocol.ProtocolError(
                f"subscription {sub_id!r} is not live on this router"
            )
        if obj.get("from_cursor") is not None:
            raise protocol.ProtocolError(
                "router-level replay is not supported; the router "
                "already maintains cursor continuity across worker "
                "crashes"
            )
        previous = self._sessions.get(sub.session_id)
        if previous is not None and previous is not session:
            previous.subscriptions.discard(sub_id)
        sub.session_id = session.session_id
        session.subscriptions.add(sub_id)
        return {
            "type": "ack",
            "subscription": sub_id,
            "graph": sub.graph,
            "query": sub.query,
            "mode": sub.mode,
            "cursor": sub.emitted,
            "workers": len(self._workers),
        }

    def _op_flush(self, session: _Session, obj: dict) -> dict:
        """Fleet flush: fan out, then key-ordinal-merge the tails.

        A single engine drains its fitted-model tails in key arrival
        order *since the last flush* (its per-key builders are cleared
        at every barrier and re-inserted on the next arrival); the
        fleet drains worker-major.  Buffering the merged flush results
        and stable-sorting them by each key's since-last-flush ordinal
        restores the single-engine order bit-exactly (workers emit
        their own tails already in that order, and arrival order
        within one key lives entirely on one worker).
        """
        self._flush_buffer = {}
        try:
            totals = {"flushed_segments": 0, "processed": 0}
            pending: list[tuple[_WorkerLink, int | None]] = []
            for worker in self._workers:
                self._ensure_alive(worker)
                try:
                    req_id = worker.client.send_request("flush")
                except OSError:
                    worker.dead = True
                    req_id = None
                pending.append((worker, req_id))
            for worker, req_id in pending:
                ack: dict | None = None
                if req_id is not None and not worker.dead:
                    try:
                        ack = worker.client.read_reply(req_id)
                    except (OSError, ServerError) as exc:
                        if isinstance(exc, ServerError) and exc.code != "eof":
                            raise
                        worker.dead = True
                if worker.dead:
                    self._recover_worker(worker)
                    ack = worker.client.flush()
                self._merge_worker_pushes(worker)
                assert ack is not None
                totals["flushed_segments"] += ack.get("flushed_segments", 0)
                totals["processed"] += ack.get("processed", 0)
            buffered = self._flush_buffer
            self._flush_buffer = None
            for sub_id, entries in buffered.items():
                sub = self._subs.get(sub_id)
                if sub is None:
                    continue
                entries.sort(key=lambda entry: entry[0])  # stable
                self._emit(
                    sub, {}, [res for _ord, res in entries], -1
                )
            return {"type": "ack", **totals}
        finally:
            self._flush_buffer = None
            # The barrier drained every builder; the next epoch's tail
            # order starts from a clean slate.
            self._flush_ordinals = KeyOrdinals()

    def _op_checkpoint(self, session: _Session, obj: dict) -> dict:
        acks = []
        for worker in self._workers:
            self._ensure_alive(worker)
            ack = worker.client._request("checkpoint")
            self._merge_worker_pushes(worker)
            acks.append({k: v for k, v in ack.items()
                         if k not in ("id", "type")})
        return {"type": "ack", "workers": acks}

    def _op_stats(self, session: _Session, obj: dict) -> dict:
        workers = []
        for worker in self._workers:
            entry: dict = {
                "worker": worker.index,
                "addr": f"{worker.addr[0]}:{worker.addr[1]}",
                "sent": worker.sent,
                "unacked": len(worker.unacked),
                "dead": worker.dead,
                "recoveries": worker.recoveries,
            }
            if not worker.dead:
                try:
                    stats = worker.client.stats()
                    self._merge_worker_pushes(worker)
                    entry["durable_tuples"] = (
                        stats.get("engine", {})
                        .get("durability", {})
                        .get("ingest_tuples")
                    )
                except (OSError, ServerError):
                    worker.dead = True
            workers.append(entry)
        return {
            "type": "stats",
            "role": "router",
            "session": {
                "session": session.session_id,
                "requests": session.requests,
            },
            "connections": len(self._sessions),
            "workers": workers,
            "subscriptions": {
                str(sub_id): {
                    "emitted": sub.emitted,
                    "collected": list(sub.collected),
                }
                for sub_id, sub in self._subs.items()
            },
            "streams": {
                stream: list(fields)
                for stream, fields in self._stream_keys.items()
            },
            "keys_seen": len(self._key_ordinals),
        }
