"""Blocking client for the Pulse wire protocol.

:class:`PulseClient` wraps a TCP socket with request/response matching
over the NDJSON protocol: each request carries an ``id``, the client
reads lines until the response with that ``id`` arrives, and every
unsolicited push (results, alerts, backpressure, breaker transitions)
read along the way lands in :attr:`PulseClient.pushed` in arrival
order.  Because the server writes a flush's results *before* the flush
ack (see :mod:`.bridge`), ``flush(); drain_results()`` observes every
result the flush produced — no sleeping, no polling.

The CLI (``repro ingest``), the loopback tests and the throughput
benchmark all drive the server through this class.
"""

from __future__ import annotations

import random
import socket
import time
from collections import deque
from typing import Iterable, Mapping, Sequence

from ..core.errors import PulseError
from . import protocol


class ServerError(PulseError):
    """The server answered a request with an ``error`` response."""

    def __init__(self, message: str, code: str = "server"):
        self.code = code
        super().__init__(message)


class ReconnectExhausted(PulseError):
    """Every reconnect attempt failed; carries the attempt count.

    Raised by :meth:`PulseClient.reconnect` after its bounded retry
    budget is spent, so callers can distinguish "the server is really
    gone" from the transient outage of a restart-in-progress.
    """

    def __init__(self, attempts: int, last_error: Exception | None):
        self.attempts = attempts
        self.last_error = last_error
        super().__init__(
            f"reconnect failed after {attempts} attempts: {last_error!r}"
        )


class PulseClient:
    """One blocking protocol session.

    Usable as a context manager; ``close()`` sends EOF and the server
    tears the session (and its subscriptions) down.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: float = 30.0,
        reconnect_attempts: int = 5,
        reconnect_base_s: float = 0.05,
        reconnect_max_s: float = 2.0,
    ):
        self._addr = (host, port)
        self._timeout = timeout
        #: Bounded retry budget for :meth:`reconnect` (per call).
        self.reconnect_attempts = reconnect_attempts
        self.reconnect_base_s = reconnect_base_s
        self.reconnect_max_s = reconnect_max_s
        self._rng = random.Random()
        self._backpressure: str | None = None
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rb")
        self._next_id = 1
        #: Unsolicited pushes in arrival order (result/alert/
        #: backpressure/breaker messages).
        self.pushed: deque[dict] = deque()
        self.hello: dict | None = None

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def send_request(self, op: str, **fields) -> int:
        """Write one request and return its id without waiting.

        The pipelining half of :meth:`_request`: the router keeps one
        request in flight per worker and collects replies later with
        :meth:`read_reply`.  Replies MUST be read in request order —
        the server answers in order, and a reply read out of turn
        would be mis-filed as a push.
        """
        req_id = self._next_id
        self._next_id += 1
        message = {"op": op, "id": req_id, **fields}
        self._sock.sendall(protocol.encode(message))
        return req_id

    def read_reply(self, req_id: int) -> dict:
        """Read until the reply to ``req_id`` arrives; buffer pushes.

        Every unsolicited push read along the way lands in
        :attr:`pushed` *before* this returns, which preserves the
        server's results-before-ack ordering on the client side.
        """
        while True:
            line = self._file.readline()
            if not line:
                raise ServerError("connection closed by server", code="eof")
            obj = protocol.decode_line(line)
            if obj.get("id") == req_id:
                if obj.get("type") == "error":
                    raise ServerError(
                        obj.get("error", "unknown error"),
                        code=obj.get("code", "server"),
                    )
                return obj
            self.pushed.append(obj)

    def _request(self, op: str, **fields) -> dict:
        return self.read_reply(self.send_request(op, **fields))

    # ------------------------------------------------------------------
    # ops
    # ------------------------------------------------------------------
    def connect(self, backpressure: str | None = None) -> dict:
        """``hello`` handshake; optionally pins this connection's
        ingest back-pressure policy."""
        self._backpressure = backpressure
        fields = {}
        if backpressure is not None:
            fields["backpressure"] = backpressure
        self.hello = self._request("hello", **fields)
        return self.hello

    def reconnect(self, attempts: int | None = None) -> dict:
        """Bounded reconnect with exponential backoff and full jitter.

        Closes the dead socket and retries the TCP connect up to
        ``attempts`` times (default: the constructor's budget), sleeping
        ``min(base * 2^i * U(1, 2), max)`` between tries — exponential
        backoff with jitter, clamped *after* the jitter is applied so
        ``reconnect_max_s`` really is the sleep ceiling, and a fleet of
        subscribers doesn't stampede a server that is still
        mid-recovery.  On success, performs a fresh ``hello``
        (restoring the pinned back-pressure policy) and returns it.
        **Session bindings do not survive**: the new session starts
        with no subscriptions, and buffered pushes from the old session
        stay in :attr:`pushed`.  Against a durable server, the
        subscriptions themselves (and their cursors) were recovered
        detached — :meth:`attach` re-binds them; against an ephemeral
        server, callers re-subscribe and resume ingest from the
        recovered durable offset.

        An attempt fails as a unit: if the TCP connect succeeds but the
        post-connect ``hello`` does not (the server is listening but
        still mid-recovery, or answers garbage), the half-open socket
        is closed before the next attempt, never leaked.

        Raises :class:`ReconnectExhausted` when the budget is spent.
        """
        attempts = self.reconnect_attempts if attempts is None else attempts
        try:
            self.close()
        except OSError:
            pass
        last_error: Exception | None = None
        for i in range(attempts):
            try:
                self._sock = socket.create_connection(
                    self._addr, timeout=self._timeout
                )
                self._file = self._sock.makefile("rb")
                return self.connect(self._backpressure)
            except (OSError, PulseError) as exc:
                last_error = exc
                # The connect may have succeeded before the hello
                # failed; close whatever is open so a failed attempt
                # never leaves a half-open socket behind.
                try:
                    self.close()
                except OSError:
                    pass
                delay = min(
                    self.reconnect_max_s,
                    self.reconnect_base_s
                    * (2.0**i)
                    * (1.0 + self._rng.random()),
                )
                time.sleep(delay)
        raise ReconnectExhausted(attempts, last_error)

    def register(
        self, name: str, query: str, fit: Mapping | None = None
    ) -> dict:
        fields: dict = {"name": name, "query": query}
        if fit is not None:
            fields["fit"] = dict(fit)
        return self._request("register", **fields)

    def subscribe(
        self,
        query: str,
        mode: str = "continuous",
        error_bound: float | None = None,
    ) -> dict:
        fields: dict = {"query": query, "mode": mode}
        if error_bound is not None:
            fields["error_bound"] = error_bound
        return self._request("subscribe", **fields)

    def unsubscribe(self, subscription: int) -> dict:
        return self._request("unsubscribe", subscription=subscription)

    def attach(
        self, subscription: int, from_cursor: int | None = None
    ) -> dict:
        """Re-bind a durable subscription that survived a server
        restart to this session; the ack carries its resumed cursor.

        With ``from_cursor``, a retention-enabled server also replays
        the outputs at cursor positions ``[from_cursor, cursor)`` in
        the ack; they are folded into :attr:`pushed` as a synthetic
        ``result`` message so :meth:`drain_results` sees one gapless
        stream across the reconnect.
        """
        fields: dict = {"subscription": subscription}
        if from_cursor is not None:
            fields["from_cursor"] = from_cursor
        ack = self._request("attach", **fields)
        replayed = ack.get("replayed")
        if replayed:
            self.pushed.append(
                {
                    "type": "result",
                    "subscription": subscription,
                    "query": ack.get("query"),
                    "mode": ack.get("mode"),
                    "graph": ack.get("graph"),
                    "cursor": ack["cursor"] - len(replayed),
                    "results": replayed,
                }
            )
        return ack

    def ingest(self, stream: str, tuples: Sequence[Mapping]) -> dict:
        """Send one batch of tuples; returns the admission counts ack."""
        return self._request(
            "ingest", stream=stream, tuples=[dict(t) for t in tuples]
        )

    def flush(self) -> dict:
        """End-of-stream barrier: when this returns, every result the
        flush produced is already in :attr:`pushed`."""
        return self._request("flush")

    def stats(self) -> dict:
        return self._request("stats")

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "PulseClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # conveniences
    # ------------------------------------------------------------------
    def drain_results(self, subscription: int | None = None) -> list[dict]:
        """Pop buffered ``result`` pushes (optionally one subscription's)
        and return their payloads flattened, in delivery order."""
        results: list[dict] = []
        keep: deque[dict] = deque()
        while self.pushed:
            msg = self.pushed.popleft()
            if msg.get("type") == "result" and (
                subscription is None or msg.get("subscription") == subscription
            ):
                results.extend(msg.get("results", ()))
            else:
                keep.append(msg)
        self.pushed = keep
        return results

    def drain_notices(self, *kinds: str) -> list[dict]:
        """Pop buffered non-result pushes (optionally filtered by type)."""
        notices: list[dict] = []
        keep: deque[dict] = deque()
        while self.pushed:
            msg = self.pushed.popleft()
            kind = msg.get("type")
            if kind != "result" and (not kinds or kind in kinds):
                notices.append(msg)
            else:
                keep.append(msg)
        self.pushed = keep
        return notices

    def ingest_iter(
        self,
        stream: str,
        tuples: Iterable[Mapping],
        batch_size: int = 256,
        rate: float | None = None,
    ) -> dict:
        """Stream tuples in batches, optionally rate-limited.

        ``rate`` is tuples/second across the whole call; pacing sleeps
        between batches to hold it.  Returns summed admission counts.
        """
        totals: dict = {}
        batch: list[dict] = []
        sent = 0
        t0 = time.perf_counter()

        def _send(batch: list[dict]) -> None:
            nonlocal sent
            ack = self.ingest(stream, batch)
            sent += len(batch)
            for key, value in ack.items():
                if (
                    key != "id"
                    and isinstance(value, int)
                    and not isinstance(value, bool)
                ):
                    totals[key] = totals.get(key, 0) + value
            if rate is not None:
                ahead = sent / rate - (time.perf_counter() - t0)
                if ahead > 0:
                    time.sleep(ahead)

        for tup in tuples:
            batch.append(dict(tup))
            if len(batch) >= batch_size:
                _send(batch)
                batch = []
        if batch:
            _send(batch)
        totals["sent"] = sent
        totals["elapsed_s"] = time.perf_counter() - t0
        return totals
