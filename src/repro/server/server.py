"""The asyncio TCP server: sessions, dispatch, outbound flow control.

One :class:`PulseServer` hosts one :class:`~.bridge.EngineBridge`.
Each accepted connection becomes a *session*: a reader coroutine
parses NDJSON requests and dispatches them, and a writer coroutine
drains that connection's outbound queue — responses and pushed
messages share the queue, so a client always observes its results in
the order the engine produced them relative to its acks.

**Outbound back-pressure.**  A subscriber that reads slower than the
engine produces would otherwise buffer unboundedly.  Each connection's
outbound queue is capped (``outbound_limit``); past the cap, the
*oldest pushed result* messages are shed first (acks and errors are
never shed — they answer specific requests), the shed count is
metered, and the next delivered message is preceded by a
``backpressure`` notice carrying how many results that client lost.
This mirrors the runtime's ``shed-oldest`` queue policy on the egress
side.

:class:`ServerThread` runs a server on a dedicated thread with its own
event loop — the harness the loopback tests, the throughput benchmark
and ``repro serve`` (indirectly) all share.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..core.errors import PlanError, PulseError
from ..engine.metrics import get_counter, get_histogram
from ..engine.resilience import BreakerConfig
from . import protocol
from .bridge import EngineBridge, FitSpec

#: Max bytes in one NDJSON line (a 10k-tuple ingest batch fits).
MAX_LINE_BYTES = 16 * 1024 * 1024


@dataclass(frozen=True)
class ServerConfig:
    """Everything a server needs besides its queries."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral, read back from .port after start()
    #: Runtime knobs (see :class:`~repro.engine.scheduler.QueryRuntime`).
    batch_size: int = 64
    queue_capacity: int | None = None
    backpressure: str = "block"
    num_shards: int = 1
    slow_solve_budget_s: float | None = None
    breaker: BreakerConfig | None = None
    #: Fitting defaults for continuous subscriptions.
    default_tolerance: float = 0.05
    default_fit: FitSpec | None = None
    #: Outbound messages buffered per connection before result shedding.
    outbound_limit: int = 1024
    #: Durability: WAL + checkpoint directory (``None`` = ephemeral).
    wal_dir: str | None = None
    #: Auto-checkpoint after this many ingested tuples (``None`` = manual).
    checkpoint_every: int | None = None
    #: WAL fsync batching (records per fsync; 1 = every record).
    fsync_every: int = 32
    #: Retained raw outputs per subscription for ``attach`` replay
    #: (0 = off).  Fleet workers run with this on so the router can
    #: resume a merge across a worker crash with no gap.
    retain_results: int = 0

    def runtime_kwargs(self) -> dict:
        kwargs: dict = {
            "batch_size": self.batch_size,
            "queue_capacity": self.queue_capacity,
            "backpressure": self.backpressure,
            "num_shards": self.num_shards,
            "slow_solve_budget_s": self.slow_solve_budget_s,
        }
        if self.breaker is not None:
            kwargs["breaker"] = self.breaker
        return kwargs


@dataclass
class _Connection:
    """Loop-thread state for one client session."""

    session_id: int
    writer: asyncio.StreamWriter
    peer: str
    outbound: deque = field(default_factory=deque)
    wakeup: asyncio.Event = field(default_factory=asyncio.Event)
    backpressure: str | None = None  # per-connection ingest policy
    subscriptions: set[int] = field(default_factory=set)
    requests: int = 0
    ingested: int = 0
    rejected: int = 0
    results_sent: int = 0
    results_dropped: int = 0
    dropped_since_notice: int = 0
    closing: bool = False

    def session_stats(self) -> dict:
        return {
            "session": self.session_id,
            "requests": self.requests,
            "ingested": self.ingested,
            "rejected": self.rejected,
            "results_sent": self.results_sent,
            "results_dropped": self.results_dropped,
        }


class PulseServer:
    """The network front end over one engine bridge.

    ``queries`` pre-registers ``(name, query_text, fit_spec | None)``
    triples at startup, so a served deployment exposes its standing
    queries without any client having to register them.
    """

    def __init__(
        self,
        config: ServerConfig = ServerConfig(),
        queries: Iterable[tuple[str, str, FitSpec | None]] = (),
    ):
        self.config = config
        self._startup_queries = list(queries)
        self.bridge = EngineBridge(
            config.runtime_kwargs(),
            default_tolerance=config.default_tolerance,
            default_fit=config.default_fit,
            on_outputs=self._on_outputs_threadsafe,
            on_notify=self._on_notify_threadsafe,
            wal_dir=config.wal_dir,
            checkpoint_every=config.checkpoint_every,
            fsync_every=config.fsync_every,
            retain_results=config.retain_results,
        )
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._conns: dict[int, _Connection] = {}
        self._handler_tasks: set[asyncio.Task] = set()
        self._next_session = 1
        self._next_sub = 1
        self.port: int | None = None
        # Loop-thread-owned metrics (single-writer; see Histogram docs).
        self._connections_counter = get_counter("server.connections")
        self._requests_counter = get_counter("server.requests")
        self._rejected_nonfinite = get_counter("server.rejected_nonfinite")
        self._rejected_malformed = get_counter("server.rejected_malformed")
        self._errors_counter = get_counter("server.request_errors")
        self._results_counter = get_counter("server.results_sent")
        self._dropped_counter = get_counter("server.results_dropped")
        self._request_hist = get_histogram("server.request_seconds")

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self.bridge.start()
        for name, text, fit in self._startup_queries:
            try:
                await asyncio.wrap_future(
                    self.bridge.register_query(name, text, fit)
                )
            except PlanError:
                # Already present: recovery restored it from the WAL
                # or a snapshot before the startup list ran.
                pass
        # Recovery may have restored (detached) subscriptions; new ids
        # must never collide with ones clients may re-attach to.
        self._next_sub = self.bridge.max_sub_id + 1
        self._server = await asyncio.start_server(
            self._handle,
            self.config.host,
            self.config.port,
            limit=MAX_LINE_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Close listeners and sessions, then stop the engine thread."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._handler_tasks):
            task.cancel()
        if self._handler_tasks:
            await asyncio.gather(
                *self._handler_tasks, return_exceptions=True
            )
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.bridge.stop)

    # ------------------------------------------------------------------
    # delivery (engine thread -> loop thread)
    # ------------------------------------------------------------------
    def _on_outputs_threadsafe(
        self, subscribers: list[tuple[int, int]], info: dict, outputs: list
    ) -> None:
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        loop.call_soon_threadsafe(self._deliver, subscribers, info, outputs)

    def _on_notify_threadsafe(self, kind: str, payload: dict) -> None:
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        loop.call_soon_threadsafe(self._broadcast, kind, payload)

    def _deliver(
        self, subscribers: list[tuple[int, int]], info: dict, outputs: list
    ) -> None:
        results = protocol.serialize_results(outputs)
        for sub_id, cursor in subscribers:
            conn = self._conn_for_sub(sub_id)
            if conn is None:
                continue
            message = {
                "type": "result",
                "subscription": sub_id,
                "query": info["query"],
                "mode": info["mode"],
                "graph": info["graph"],
                "seq": conn.results_sent,
                "cursor": cursor,
                "results": results,
            }
            conn.results_sent += len(results)
            self._results_counter.bump(len(results))
            self._send(conn, message, sheddable=True)

    def _broadcast(self, kind: str, payload: dict) -> None:
        message = {"type": kind, **payload}
        for conn in self._conns.values():
            self._send(conn, message, sheddable=True)

    def _conn_for_sub(self, sub_id: int) -> _Connection | None:
        for conn in self._conns.values():
            if sub_id in conn.subscriptions:
                return conn
        return None

    # ------------------------------------------------------------------
    # outbound queue
    # ------------------------------------------------------------------
    def _send(
        self, conn: _Connection, message: dict, sheddable: bool = False
    ) -> None:
        if conn.closing:
            return
        outbound = conn.outbound
        if sheddable and len(outbound) >= self.config.outbound_limit:
            # Shed the oldest *result* push; never an ack or error.
            for i, (queued, queued_sheddable) in enumerate(outbound):
                if queued_sheddable and queued.get("type") == "result":
                    del outbound[i]
                    dropped = len(queued.get("results", ()))
                    conn.results_dropped += dropped
                    conn.dropped_since_notice += dropped
                    self._dropped_counter.bump(dropped)
                    break
            else:
                # Nothing sheddable in the queue: the *new* message is
                # dropped instead — the same damage as shedding, so it
                # gets the same accounting (never a silent loss).
                dropped = len(message.get("results", ()))
                if dropped:
                    conn.results_dropped += dropped
                    conn.dropped_since_notice += dropped
                    self._dropped_counter.bump(dropped)
                return
        if conn.dropped_since_notice and message.get("type") == "result":
            outbound.append((
                {
                    "type": "backpressure",
                    "policy": "subscriber-shed-oldest",
                    "dropped_results": conn.dropped_since_notice,
                },
                False,
            ))
            conn.dropped_since_notice = 0
        outbound.append((message, sheddable))
        conn.wakeup.set()

    async def _writer_task(self, conn: _Connection) -> None:
        try:
            while True:
                while conn.outbound:
                    message, _sheddable = conn.outbound.popleft()
                    conn.writer.write(protocol.encode(message))
                await conn.writer.drain()
                if conn.closing:
                    return
                conn.wakeup.clear()
                await conn.wakeup.wait()
        except (ConnectionError, asyncio.CancelledError):
            pass

    # ------------------------------------------------------------------
    # sessions
    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handler_tasks.add(task)
        session_id = self._next_session
        self._next_session += 1
        peername = writer.get_extra_info("peername")
        peer = f"{peername[0]}:{peername[1]}" if peername else "?"
        conn = _Connection(session_id, writer, peer)
        self._conns[session_id] = conn
        self._connections_counter.bump()
        await asyncio.wrap_future(self.bridge.open_session(session_id, peer))
        writer_task = asyncio.ensure_future(self._writer_task(conn))
        cancelled = False
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, ConnectionError):
                    # Line over MAX_LINE_BYTES or a reset mid-read.
                    break
                if not line:
                    break
                if line.strip() == b"":
                    continue
                await self._dispatch(conn, line)
        except asyncio.CancelledError:
            cancelled = True  # server stopping; finish cleanup below
        finally:
            if task is not None:
                self._handler_tasks.discard(task)
            conn.closing = True
            conn.wakeup.set()
            self._conns.pop(session_id, None)
            writer_task.cancel()
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass
            if not cancelled:
                # On cancellation the server is stopping the bridge
                # itself; a close_session command would never resolve.
                try:
                    await asyncio.wrap_future(
                        self.bridge.close_session(session_id)
                    )
                except RuntimeError:
                    pass  # bridge already stopped

    async def _dispatch(self, conn: _Connection, line: bytes) -> None:
        req_id = None
        t0 = time.perf_counter()
        conn.requests += 1
        self._requests_counter.bump()
        try:
            obj = protocol.decode_line(line)
            req_id = obj.get("id")
            op = protocol.validate_request(obj)
            handler = getattr(self, f"_op_{op}")
            response = await handler(conn, obj)
            if req_id is not None:
                response["id"] = req_id
            self._send(conn, response)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # one bad request never kills a session
            if not isinstance(exc, (PulseError, protocol.ProtocolError)):
                # Unexpected server fault: still answer, but make it
                # visible in the log counters as a server error.
                pass
            self._errors_counter.bump()
            self._send(conn, protocol.error_response(req_id, exc))
        finally:
            self._request_hist.observe(time.perf_counter() - t0)

    # ------------------------------------------------------------------
    # ops
    # ------------------------------------------------------------------
    async def _op_hello(self, conn: _Connection, obj: dict) -> dict:
        policy = obj.get("backpressure")
        if policy is not None:
            from ..engine.scheduler import BACKPRESSURE_POLICIES

            if policy not in BACKPRESSURE_POLICIES:
                raise protocol.ProtocolError(
                    f"backpressure must be one of {BACKPRESSURE_POLICIES}"
                )
            conn.backpressure = policy
        stats = await asyncio.wrap_future(self.bridge.stats())
        return {
            "type": "hello",
            "server": protocol.SERVER_NAME,
            "protocol": protocol.PROTOCOL_VERSION,
            "queries": stats["queries"],
            "streams": sorted(
                {s for ss in stats["query_streams"].values() for s in ss}
            ),
        }

    async def _op_register(self, conn: _Connection, obj: dict) -> dict:
        name = obj.get("name")
        text = obj.get("query")
        if not isinstance(name, str) or not name:
            raise protocol.ProtocolError("'name' must be a non-empty string")
        if not isinstance(text, str) or not text:
            raise protocol.ProtocolError("'query' must be a non-empty string")
        fit = obj.get("fit")
        fit_spec = FitSpec.from_wire(fit) if fit is not None else None
        result = await asyncio.wrap_future(
            self.bridge.register_query(name, text, fit_spec)
        )
        return {"type": "ack", **result}

    async def _op_subscribe(self, conn: _Connection, obj: dict) -> dict:
        query = obj.get("query")
        if not isinstance(query, str):
            raise protocol.ProtocolError("'query' must be a string")
        mode = obj.get("mode", "continuous")
        if mode not in protocol.MODES:
            raise protocol.ProtocolError(
                f"mode must be one of {protocol.MODES}"
            )
        bound = obj.get("error_bound")
        if bound is not None:
            if isinstance(bound, bool) or not isinstance(
                bound, (int, float)
            ):
                raise protocol.ProtocolError("'error_bound' must be a number")
            bound = float(bound)
            if not bound > 0:
                raise protocol.ProtocolError("'error_bound' must be positive")
        sub_id = self._next_sub
        self._next_sub += 1
        result = await asyncio.wrap_future(
            self.bridge.subscribe(
                sub_id, query, mode, bound, conn.session_id
            )
        )
        conn.subscriptions.add(sub_id)
        return {"type": "ack", **result}

    async def _op_unsubscribe(self, conn: _Connection, obj: dict) -> dict:
        sub_id = obj.get("subscription")
        if sub_id not in conn.subscriptions:
            raise protocol.ProtocolError(
                f"subscription {sub_id!r} does not belong to this session"
            )
        result = await asyncio.wrap_future(self.bridge.unsubscribe(sub_id))
        conn.subscriptions.discard(sub_id)
        return {"type": "ack", **result}

    async def _op_attach(self, conn: _Connection, obj: dict) -> dict:
        sub_id = obj.get("subscription")
        if isinstance(sub_id, bool) or not isinstance(sub_id, int):
            raise protocol.ProtocolError("'subscription' must be an integer")
        from_cursor = obj.get("from_cursor")
        if from_cursor is not None and (
            isinstance(from_cursor, bool)
            or not isinstance(from_cursor, int)
            or from_cursor < 0
        ):
            raise protocol.ProtocolError(
                "'from_cursor' must be a non-negative integer"
            )
        result = await asyncio.wrap_future(
            self.bridge.attach(sub_id, conn.session_id, from_cursor)
        )
        conn.subscriptions.add(sub_id)
        return {"type": "ack", **result}

    async def _op_ingest(self, conn: _Connection, obj: dict) -> dict:
        stream = obj.get("stream")
        if not isinstance(stream, str) or not stream:
            raise protocol.ProtocolError("'stream' must be a non-empty string")
        raw_tuples = obj.get("tuples")
        if not isinstance(raw_tuples, list):
            raise protocol.ProtocolError("'tuples' must be a list")
        valid = []
        rejected = 0
        rejected_nonfinite = 0
        for raw in raw_tuples:
            try:
                valid.append(protocol.validate_tuple(raw))
            except protocol.ProtocolError as exc:
                rejected += 1
                if exc.code == "nonfinite":
                    rejected_nonfinite += 1
                    self._rejected_nonfinite.bump()
                else:
                    self._rejected_malformed.bump()
        conn.rejected += rejected
        counts = {"accepted": 0, "blocked": 0, "shed": 0,
                  "no_consumer": 0, "fit_rejected": 0}
        if valid:
            counts = await asyncio.wrap_future(
                self.bridge.ingest(
                    conn.session_id, stream, valid, conn.backpressure
                )
            )
        conn.ingested += counts["accepted"]
        return {
            "type": "ack",
            "stream": stream,
            "rejected": rejected,
            "rejected_nonfinite": rejected_nonfinite,
            **counts,
        }

    async def _op_flush(self, conn: _Connection, obj: dict) -> dict:
        result = await asyncio.wrap_future(self.bridge.flush())
        return {"type": "ack", **result}

    async def _op_checkpoint(self, conn: _Connection, obj: dict) -> dict:
        result = await asyncio.wrap_future(self.bridge.checkpoint())
        return {"type": "ack", **result}

    async def _op_stats(self, conn: _Connection, obj: dict) -> dict:
        bridge_stats = await asyncio.wrap_future(self.bridge.stats())
        return {
            "type": "stats",
            "session": conn.session_stats(),
            "connections": len(self._conns),
            "engine": bridge_stats,
        }


class ServerThread:
    """Run a :class:`PulseServer` on its own thread and event loop.

    Context-manager used by the tests, the benchmark and anything else
    that needs a live loopback server without owning an event loop::

        with ServerThread(config, queries) as handle:
            client = PulseClient("127.0.0.1", handle.port)
            ...
    """

    def __init__(
        self,
        config: ServerConfig = ServerConfig(),
        queries: Sequence[tuple[str, str, FitSpec | None]] = (),
    ):
        self._config = config
        self._queries = list(queries)
        self._ready = threading.Event()
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._startup_error: BaseException | None = None
        self.server: PulseServer | None = None
        self.port: int | None = None

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            server = PulseServer(self._config, self._queries)
            loop.run_until_complete(server.start())
            self.server = server
            self.port = server.port
            self._stop_event = asyncio.Event()
        except BaseException as exc:  # surfaced to start()
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_until_complete(self._stop_event.wait())
            loop.run_until_complete(server.stop())
        finally:
            loop.close()

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="pulse-server", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._startup_error is not None:
            raise self._startup_error
        if self.port is None:
            raise RuntimeError("server did not start")
        return self

    def stop(self, timeout: float = 15.0) -> None:
        thread = self._thread
        if thread is None:
            return
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        thread.join(timeout)
        if thread.is_alive():
            raise RuntimeError("server thread did not stop cleanly")
        self._thread = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
