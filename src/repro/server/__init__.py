"""Network ingest/subscribe boundary for the Pulse reproduction.

The paper's prototype ran inside Borealis, a distributed stream
processor that receives tuples and ships query results over the
network; this package is that entry point for the reproduction.  An
asyncio TCP server (:mod:`.server`) speaks a newline-delimited JSON
protocol (:mod:`.protocol`): clients ``ingest`` tuples into named
streams, ``subscribe`` to query outputs in continuous or discrete mode
with a per-subscription error bound, and receive results, watchdog
alerts and backpressure notifications as they are produced.  A
dedicated engine thread owns the
:class:`~repro.engine.scheduler.QueryRuntime`; the event loop feeds it
through the thread-safe :class:`~repro.server.bridge.EngineBridge`.

:mod:`.client` is the blocking client library used by the CLI
(``repro ingest``), the loopback tests and the throughput benchmark.
:mod:`.router` scales the boundary out: a router process key-routes
ingest across N worker servers and deterministically merges their
result streams back at the subscriber edge (``repro route``).
"""

from .bridge import EngineBridge, FitSpec
from .client import PulseClient, ReconnectExhausted, ServerError
from .router import PulseRouter, RouterConfig
from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_line,
    encode,
    serialize_segment,
    serialize_tuple,
    validate_tuple,
)
from .server import PulseServer, ServerConfig, ServerThread

__all__ = [
    "EngineBridge",
    "FitSpec",
    "PulseClient",
    "PulseRouter",
    "ReconnectExhausted",
    "RouterConfig",
    "ServerError",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "decode_line",
    "encode",
    "serialize_segment",
    "serialize_tuple",
    "validate_tuple",
    "PulseServer",
    "ServerConfig",
    "ServerThread",
]
