"""Command-line interface: run queries over generated workloads.

Usage::

    python -m repro explain --query "select * from objects where x > 0"
    python -m repro run --query "..." --workload moving --tuples 2000 \
        --mode both
    python -m repro serve --query "q1=select * from objects where x > 0" \
        --workload moving --port 7433
    python -m repro ingest --port 7433 --stream objects --workload moving \
        --tuples 2000 --subscribe q1
    python -m repro params

``run`` generates the chosen synthetic workload, executes the query on
the discrete engine (tuples) and/or the continuous engine (segments
fitted from the same tuples), and prints result counts, timings and the
first few results from each path.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from .core.transform import to_continuous_plan
from .engine.lowering import to_discrete_plan
from .fitting import build_segments
from .query import explain, parse_query, plan_query

#: Workload name -> (generator factory, modeled attrs, key fields).
_WORKLOADS = {
    "moving": ("moving objects", ("x", "y"), ("id",)),
    "nyse": ("trade feed", ("price",), ("symbol",)),
    "ais": ("vessel feed", ("x", "y"), ("id",)),
}


def _make_generator(name: str, rate: float, seed: int):
    if name == "moving":
        from .workloads import MovingObjectConfig, MovingObjectGenerator

        return MovingObjectGenerator(
            MovingObjectConfig(rate=rate, seed=seed)
        )
    if name == "nyse":
        from .workloads import NyseConfig, NyseTradeGenerator

        return NyseTradeGenerator(NyseConfig(rate=rate, seed=seed))
    if name == "ais":
        from .workloads import AisConfig, AisVesselGenerator

        return AisVesselGenerator(AisConfig(rate=rate, seed=seed))
    raise ValueError(f"unknown workload {name!r}")


def _stream_name(planned) -> str:
    return next(iter(planned.stream_sources))


def cmd_explain(args) -> int:
    planned = plan_query(parse_query(args.query))
    print(explain(planned.root))
    if planned.error_spec:
        kind = "relative" if planned.error_spec.relative else "absolute"
        print(f"error bound: {planned.error_spec.bound} ({kind})")
    if planned.sample_spec:
        print(f"sample period: {planned.sample_spec.period}")
    return 0


def cmd_run(args) -> int:
    planned = plan_query(parse_query(args.query))
    stream = _stream_name(planned)
    label, attrs, key_fields = _WORKLOADS[args.workload]
    gen = _make_generator(args.workload, args.rate, args.seed)
    tuples = list(gen.tuples(args.tuples))
    print(
        f"workload: {label}, {len(tuples)} tuples at {args.rate:g} t/s "
        f"(seed {args.seed})"
    )

    observing = bool(args.metrics_out or args.trace_out)
    if observing:
        from .engine import tracing

        tracing.enable_observability(args.trace_out)

    if args.mode in ("discrete", "both"):
        query = to_discrete_plan(planned)
        start = time.perf_counter()
        outputs = []
        for tup in tuples:
            outputs.extend(query.push(stream, tup))
        outputs.extend(query.flush())
        elapsed = time.perf_counter() - start
        print(
            f"\ndiscrete engine: {len(outputs)} result tuples in "
            f"{elapsed * 1e3:.0f} ms ({len(tuples) / elapsed:,.0f} t/s)"
        )
        for row in outputs[: args.show]:
            print(f"  {dict(row)}")

    if args.mode in ("continuous", "both"):
        start = time.perf_counter()
        segments = build_segments(
            tuples,
            attrs=attrs,
            tolerance=args.tolerance,
            key_fields=key_fields,
            constants=key_fields,
        )
        fit_elapsed = time.perf_counter() - start
        query = to_continuous_plan(planned)
        budget_s = (
            args.slow_solve_ms / 1e3
            if args.slow_solve_ms is not None
            else None
        )
        start = time.perf_counter()
        outputs = []
        if args.shards > 1 or budget_s is not None:
            # The watchdog lives in the runtime's per-arrival timing, so
            # --slow-solve-ms routes even a serial run through it.
            from .engine.scheduler import QueryRuntime

            with QueryRuntime(
                num_shards=args.shards, slow_solve_budget_s=budget_s
            ) as runtime:
                runtime.register("cli", query)
                for segment in segments:
                    runtime.enqueue(stream, segment)
                runtime.run_until_idle()
                outputs = runtime.outputs("cli")
                if budget_s is not None:
                    wd = runtime.resilience_stats()["watchdog"]
                    print(
                        f"watchdog: {wd['slow_solves']} of "
                        f"{wd['items_checked']} arrivals over "
                        f"{args.slow_solve_ms:g} ms"
                    )
        else:
            for segment in segments:
                outputs.extend(query.push(stream, segment))
        run_elapsed = time.perf_counter() - start
        shard_note = f", {args.shards} shards" if args.shards > 1 else ""
        print(
            f"\ncontinuous engine: {len(segments)} segments "
            f"({len(tuples) / max(len(segments), 1):.0f}x compression, "
            f"fit {fit_elapsed * 1e3:.0f} ms), {len(outputs)} result "
            f"segments in {run_elapsed * 1e3:.0f} ms{shard_note}"
        )
        for seg in outputs[: args.show]:
            attrs_repr = {
                name: repr(poly) for name, poly in seg.models.items()
            }
            print(
                f"  [{seg.t_start:.2f}, {seg.t_end:.2f}) "
                f"key={seg.key} {attrs_repr}"
            )

    if observing:
        from .engine import tracing
        from .engine.metrics import MetricsSnapshot

        # Disable first: the trace flush fills deferred histogram
        # observations, so the snapshot must be collected after it.
        tracing.disable_observability()  # flushes + closes the trace
        if args.metrics_out:
            MetricsSnapshot.collect().write(args.metrics_out)
            print(f"\nmetrics written to {args.metrics_out}")
        if args.trace_out:
            print(f"trace written to {args.trace_out}")
    return 0


def _workload_fit(name: str):
    """Fit spec implied by a workload preset (modeled attrs + keys)."""
    from .server import FitSpec

    _label, attrs, key_fields = _WORKLOADS[name]
    return FitSpec(attrs=attrs, key_fields=key_fields)


def cmd_serve(args) -> int:
    from .server import ServerConfig, ServerThread

    queries = []
    for spec in args.query or ():
        name, sep, text = spec.partition("=")
        if not sep or not name or not text:
            raise ValueError(
                f"--query must look like NAME=QUERY_TEXT, got {spec!r}"
            )
        queries.append((name.strip(), text.strip(), None))
    default_fit = _workload_fit(args.workload) if args.workload else None
    config = ServerConfig(
        host=args.host,
        port=args.port,
        backpressure=args.backpressure,
        queue_capacity=args.queue_capacity,
        num_shards=args.shards,
        slow_solve_budget_s=(
            args.slow_solve_ms / 1e3
            if args.slow_solve_ms is not None
            else None
        ),
        default_tolerance=args.tolerance,
        default_fit=default_fit,
        wal_dir=args.wal_dir,
        checkpoint_every=args.checkpoint_every,
        fsync_every=args.fsync_every,
    )
    if args.trace_out:
        from .engine import tracing

        tracing.enable_observability(args.trace_out)
    handle = ServerThread(config, queries).start()
    names = ", ".join(n for n, _t, _f in queries) or "(none)"
    print(
        f"pulse server listening on {args.host}:{handle.port} "
        f"(queries: {names}); Ctrl-C to stop"
    )
    if args.wal_dir:
        recovery = handle.server.bridge.recovery_report or {}
        print(
            f"durability on: wal_dir={args.wal_dir} "
            f"recovered_seq={recovery.get('recovered_seq', 0)} "
            f"replayed={recovery.get('replayed', 0)} "
            f"corrupt_frames={recovery.get('wal', {}).get('corrupt_frames', 0)}"
        )
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        print("\nstopping...")
    finally:
        handle.stop()
        if args.trace_out:
            from .engine import tracing

            tracing.disable_observability()
            print(f"trace written to {args.trace_out}")
    print("server stopped")
    return 0


def cmd_route(args) -> int:
    """Run a worker fleet plus the router that fronts it."""
    import tempfile

    from .server.router import PulseRouter, RouterConfig
    from .testing.chaos_server import WorkerFleet

    worker_dir = args.worker_wal_dir or tempfile.mkdtemp(
        prefix="pulse-fleet-"
    )
    default_keys = (
        tuple(_WORKLOADS[args.workload][2]) if args.workload else ()
    )
    fleet = WorkerFleet(
        args.workers,
        worker_dir,
        checkpoint_every=args.checkpoint_every,
        retain_results=args.retain_results,
    )
    addrs = fleet.start()
    router = None
    try:
        router = PulseRouter(
            RouterConfig(
                host=args.host,
                port=args.port,
                workers=tuple(addrs),
                default_key_fields=default_keys,
            )
        ).start()
        worker_list = ", ".join(f"{h}:{p}" for h, p in addrs)
        print(
            f"pulse router listening on {args.host}:{router.port} over "
            f"{args.workers} workers ({worker_list})"
        )
        print(f"worker WAL dirs under {worker_dir}; Ctrl-C to stop")
        try:
            while True:
                time.sleep(3600)
        except KeyboardInterrupt:
            print("\nstopping...")
    finally:
        if router is not None:
            router.stop()
        fleet.stop()
    print("fleet stopped")
    return 0


def cmd_ingest(args) -> int:
    from .server import PulseClient

    if args.trace is None and args.workload is None:
        raise ValueError("pass --trace PATH or --workload NAME")
    with PulseClient(args.host, args.port) as client:
        hello = client.connect(backpressure=args.backpressure)
        print(
            f"connected to {hello['server']} protocol {hello['protocol']}; "
            f"queries: {hello['queries']}"
        )
        sub_id = None
        if args.subscribe:
            ack = client.subscribe(
                args.subscribe, mode=args.mode, error_bound=args.error_bound
            )
            sub_id = ack["subscription"]
            print(
                f"subscribed #{sub_id} to {args.subscribe!r} "
                f"({ack['mode']}, bound {ack['error_bound']})"
            )
        if args.trace is not None:
            from .workloads import read_trace

            tuples = read_trace(args.trace)
        else:
            gen = _make_generator(args.workload, args.rate, args.seed)
            tuples = gen.tuples(args.tuples)
        totals = client.ingest_iter(
            args.stream,
            tuples,
            batch_size=args.batch,
            rate=args.limit_rate,
        )
        ack = client.flush()
        elapsed = totals.pop("elapsed_s")
        sent = totals.pop("sent")
        print(
            f"ingested {sent} tuples in {elapsed:.2f} s "
            f"({sent / max(elapsed, 1e-9):,.0f} t/s): {totals}"
        )
        print(f"flush: {ack['flushed_segments']} trailing segments")
        if sub_id is not None:
            results = client.drain_results(sub_id)
            print(f"received {len(results)} results")
            for row in results[: args.show]:
                print(f"  {row}")
        notices = client.drain_notices()
        for notice in notices[: args.show]:
            print(f"  notice: {notice}")
    return 0


def cmd_params(args) -> int:
    from .bench.params import format_params_table

    print(format_params_table())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Pulse (ICDE 2008) reproduction: continuous-time query processing",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_explain = sub.add_parser("explain", help="show a query's logical plan")
    p_explain.add_argument("--query", required=True, help="StreamSQL query text")
    p_explain.set_defaults(func=cmd_explain)

    p_run = sub.add_parser("run", help="run a query over a synthetic workload")
    p_run.add_argument("--query", required=True, help="StreamSQL query text")
    p_run.add_argument(
        "--workload", choices=sorted(_WORKLOADS), default="moving"
    )
    p_run.add_argument(
        "--mode", choices=("discrete", "continuous", "both"), default="both"
    )
    p_run.add_argument("--tuples", type=int, default=2000)
    p_run.add_argument("--rate", type=float, default=1000.0)
    p_run.add_argument("--tolerance", type=float, default=0.05,
                       help="model-fitting tolerance (absolute)")
    p_run.add_argument("--seed", type=int, default=7)
    p_run.add_argument(
        "--shards", type=int, default=1,
        help="key shards for the parallel continuous runtime "
        "(1 = direct serial push)")
    p_run.add_argument("--show", type=int, default=3,
                       help="results to print per path")
    p_run.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write a metrics snapshot after the run (JSON, or "
        "Prometheus text format when PATH ends in .prom)")
    p_run.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write structured trace spans as JSONL (enables the "
        "observability layer for the run)")
    p_run.add_argument(
        "--slow-solve-ms", type=float, default=None, metavar="MS",
        help="flag arrivals that take longer than MS milliseconds via "
        "the resilience watchdog counters")
    p_run.set_defaults(func=cmd_run)

    p_serve = sub.add_parser(
        "serve", help="run the network ingest/subscribe server"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=7433,
                         help="TCP port (0 = ephemeral)")
    p_serve.add_argument(
        "--query", action="append", metavar="NAME=TEXT",
        help="pre-register a query (repeatable)")
    p_serve.add_argument(
        "--workload", choices=sorted(_WORKLOADS), default=None,
        help="derive the default fit spec (modeled attrs, key fields) "
        "from this workload preset")
    p_serve.add_argument("--tolerance", type=float, default=0.05,
                         help="default fitting tolerance")
    p_serve.add_argument(
        "--backpressure", choices=("block", "shed-oldest", "shed-newest"),
        default="block")
    p_serve.add_argument("--queue-capacity", type=int, default=None)
    p_serve.add_argument("--shards", type=int, default=1)
    p_serve.add_argument("--slow-solve-ms", type=float, default=None,
                         metavar="MS")
    p_serve.add_argument("--trace-out", default=None, metavar="PATH")
    p_serve.add_argument(
        "--wal-dir", default=None, metavar="DIR",
        help="durability directory (WAL + checkpoints); restores on start",
    )
    p_serve.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="N",
        help="auto-checkpoint after N ingested tuples (default: manual)",
    )
    p_serve.add_argument(
        "--fsync-every", type=int, default=32, metavar="N",
        help="WAL fsync batching: records per fsync (1 = every record)",
    )
    p_serve.set_defaults(func=cmd_serve)

    p_route = sub.add_parser(
        "route",
        help="run a key-routed multi-node fleet: N durable workers "
        "behind one router",
    )
    p_route.add_argument("--host", default="127.0.0.1")
    p_route.add_argument("--port", type=int, default=7433,
                         help="router TCP port (0 = ephemeral)")
    p_route.add_argument("--workers", type=int, default=3,
                         help="worker server processes to spawn")
    p_route.add_argument(
        "--worker-wal-dir", default=None, metavar="DIR",
        help="base directory for per-worker WAL dirs "
        "(default: a fresh temp dir)")
    p_route.add_argument(
        "--checkpoint-every", type=int, default=64, metavar="N",
        help="worker auto-checkpoint interval (ingested tuples)")
    p_route.add_argument(
        "--retain-results", type=int, default=4096, metavar="N",
        help="per-subscription retained outputs on each worker "
        "(sizes the crash-replay window)")
    p_route.add_argument(
        "--workload", choices=sorted(_WORKLOADS), default=None,
        help="default routing key fields from this workload preset "
        "(otherwise learned from registered fit specs)")
    p_route.set_defaults(func=cmd_route)

    p_ingest = sub.add_parser(
        "ingest", help="stream tuples into a running server"
    )
    p_ingest.add_argument("--host", default="127.0.0.1")
    p_ingest.add_argument("--port", type=int, default=7433)
    p_ingest.add_argument("--stream", default="objects",
                          help="target stream name")
    p_ingest.add_argument("--trace", default=None, metavar="PATH",
                          help="replay a CSV trace file")
    p_ingest.add_argument(
        "--workload", choices=sorted(_WORKLOADS), default=None,
        help="generate tuples instead of replaying a trace")
    p_ingest.add_argument("--tuples", type=int, default=2000)
    p_ingest.add_argument("--rate", type=float, default=1000.0,
                          help="workload generator tuple rate")
    p_ingest.add_argument("--seed", type=int, default=7)
    p_ingest.add_argument("--batch", type=int, default=256,
                          help="tuples per ingest request")
    p_ingest.add_argument(
        "--limit-rate", type=float, default=None, metavar="TPS",
        help="cap the send rate (tuples/second)")
    p_ingest.add_argument(
        "--subscribe", default=None, metavar="QUERY",
        help="also subscribe to this query and print its results")
    p_ingest.add_argument(
        "--mode", choices=("continuous", "discrete"), default="continuous")
    p_ingest.add_argument("--error-bound", type=float, default=None)
    p_ingest.add_argument(
        "--backpressure", choices=("block", "shed-oldest", "shed-newest"),
        default=None, help="per-connection ingest back-pressure policy")
    p_ingest.add_argument("--show", type=int, default=3)
    p_ingest.set_defaults(func=cmd_ingest)

    p_params = sub.add_parser(
        "params", help="print the paper's experimental-parameter table (Fig. 6)"
    )
    p_params.set_defaults(func=cmd_params)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except Exception as exc:  # surfaced as a clean CLI error
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
