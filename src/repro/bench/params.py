"""Experimental parameters — the reproduction of Fig. 6's table.

Rates and sizes are kept on the paper's axes; where a Python-scale run
must shrink the workload, the scale factor is explicit so the bench
files stay honest about what was measured.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ParamRow:
    experiment: str
    parameter: str
    value: str


#: Fig. 6 verbatim (the page pool becomes the queueing model's capacity).
PARAMS_TABLE: tuple[ParamRow, ...] = (
    ParamRow("All", "Page pool", "1.5Gb (queue capacity in the fluid model)"),
    ParamRow("Filter", "stream rate", "6000-20000 tuples/sec"),
    ParamRow("Aggregate", "stream rate", "20000-40000 tuples/sec"),
    ParamRow("Join", "stream rate", "1000-10000 tuples/sec"),
    ParamRow("Fig. 5i,ii,iii", "precision bound", "1%"),
    ParamRow("Aggregate (Fig. 7i)", "stream rate", "3000 tuples/sec"),
    ParamRow("Fig. 7i", "window size", "10-100s, slide 2s"),
    ParamRow("Fig. 7i", "precision bound", "1%"),
    ParamRow("Join (Fig. 7ii)", "stream rate", "100-900 tuples/sec"),
    ParamRow("Fig. 7ii", "window size", "0.1s"),
    ParamRow("Fig. 7ii", "precision bound", "1%"),
    ParamRow("Historical (Fig. 8)", "stream rate", "3000-30000 tuples/sec"),
    ParamRow("Fig. 8", "window size", "60s, slide 2s"),
    ParamRow("NYSE (Fig. 9i)", "stream replay rates", "3000-8500 tuples/sec"),
    ParamRow("Fig. 9i", "precision bound", "1%"),
    ParamRow("AIS (Fig. 9ii)", "stream replay rates", "200-6000 tuples/sec"),
    ParamRow("Fig. 9ii", "precision bound", "0.05%"),
    ParamRow("Precision (Fig. 9iii)", "stream rate", "3000 tuples/sec"),
    ParamRow("Fig. 9iii", "precision bound", "0.1-20%"),
)

# ----------------------------------------------------------------------
# Concrete run parameters for the reproduction (Python scale).
# ----------------------------------------------------------------------

#: Precision bound used by the Fig. 5 / Fig. 7 microbenchmarks.
MICRO_PRECISION = 0.01

#: Tuples-per-segment sweep for the Fig. 5 model-expressiveness axis.
FIG5_TPS_SWEEP = (1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2000)

#: Workload size (tuples) per microbenchmark measurement.
MICRO_WORKLOAD = 4000

#: Fig. 7i window sweep (seconds) at slide 2 s.
FIG7I_WINDOWS = (10, 20, 30, 40, 60, 80, 100)
FIG7I_SLIDE = 2.0
FIG7I_RATE = 3000.0

#: Fig. 7ii stream-rate sweep (tuples/second per input).
FIG7II_RATES = (100, 200, 300, 400, 500, 600, 700, 800, 900)
FIG7II_JOIN_WINDOW = 0.1

#: Fig. 8 offered-rate sweep and aggregate window.
FIG8_RATES = (3000, 6000, 9000, 12000, 15000, 18000, 21000, 24000, 27000, 30000)
FIG8_WINDOW = 60.0
FIG8_SLIDE = 2.0

#: Fig. 9i NYSE replay-rate sweep.
FIG9I_RATES = (3000, 4000, 5000, 6000, 7000, 8500)
FIG9I_PRECISION = 0.01

#: Fig. 9ii AIS replay-rate sweep.
FIG9II_RATES = (200, 600, 1000, 2000, 3000, 4500, 6000)
FIG9II_PRECISION = 0.0005

#: Fig. 9iii precision sweep (relative bounds).
FIG9III_PRECISIONS = (0.001, 0.002, 0.003, 0.005, 0.01, 0.03, 0.05, 0.1, 0.2)
FIG9III_RATE = 3000.0


def format_params_table() -> str:
    """Render Fig. 6 as aligned text."""
    rows = [("Experiment", "Parameter", "Value")] + [
        (r.experiment, r.parameter, r.value) for r in PARAMS_TABLE
    ]
    widths = [max(len(row[i]) for row in rows) for i in range(3)]
    lines = []
    for i, row in enumerate(rows):
        lines.append(
            "  ".join(cell.ljust(widths[j]) for j, cell in enumerate(row))
        )
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
