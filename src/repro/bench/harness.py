"""Measured execution paths shared by the benchmark files.

Each helper times one *processing strategy* over a fixed workload and
returns seconds of processing per input tuple (the service time).  The
queueing model in :mod:`repro.engine.metrics` then turns service times
into the paper's offered-rate/throughput/latency curves.

The three strategies of Figures 8 and 9:

* **tuple path** — the discrete plan processes every raw tuple;
* **pulse (online) path** — online model fitting per tuple, segment
  processing through the continuous plan when pieces close, and a
  per-tuple validation check against the active model;
* **historical path** — segments alone (the model was fitted offline);
  per-segment cost amortized over the tuples each segment covers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from ..core.segment import Segment
from ..core.transform import TransformedQuery, to_continuous_plan
from ..engine.lowering import to_discrete_plan
from ..engine.tuples import StreamTuple
from ..fitting.model_builder import StreamModelBuilder


@dataclass
class PathResult:
    """Outcome of timing one strategy over a workload."""

    name: str
    tuples: int
    seconds: float
    outputs: int
    violations: int = 0

    @property
    def service_time(self) -> float:
        return self.seconds / self.tuples if self.tuples else 0.0

    @property
    def throughput(self) -> float:
        return self.tuples / self.seconds if self.seconds > 0 else float("inf")


def time_tuple_path(planned, tuples: Sequence[StreamTuple], stream: str) -> PathResult:
    """Discrete baseline: every tuple through the lowered plan."""
    query = to_discrete_plan(planned)
    outputs = 0
    start = time.perf_counter()
    for tup in tuples:
        outputs += len(query.push(stream, tup))
    outputs += len(query.flush())
    elapsed = time.perf_counter() - start
    return PathResult("tuple", len(tuples), elapsed, outputs)


def time_historical_path(
    planned,
    segments: Sequence[Segment],
    stream: str,
    tuples_covered: int,
) -> PathResult:
    """Segments alone (model fitted offline, cost amortized)."""
    query = to_continuous_plan(planned)
    outputs = 0
    start = time.perf_counter()
    for seg in segments:
        outputs += len(query.push(stream, seg))
    elapsed = time.perf_counter() - start
    return PathResult("historical", tuples_covered, elapsed, outputs)


def time_modeling_only(
    tuples: Sequence[StreamTuple],
    attrs: Sequence[str],
    tolerance: float,
    key_fields: Sequence[str],
    constants: Sequence[str] = (),
) -> PathResult:
    """Model fitting alone — Fig. 8's inset 'modeling throughput'."""
    builder = StreamModelBuilder(
        attrs, tolerance, key_fields=key_fields, constants=constants
    )
    segments = 0
    start = time.perf_counter()
    for tup in tuples:
        segments += len(builder.add(tup))
    segments += len(builder.finish())
    elapsed = time.perf_counter() - start
    return PathResult("modeling", len(tuples), elapsed, segments)


def time_pulse_online_path(
    planned,
    tuples: Sequence[StreamTuple],
    stream: str,
    attrs: Sequence[str],
    tolerance: float,
    key_fields: Sequence[str],
    constants: Sequence[str] = (),
    bound: float | None = None,
) -> PathResult:
    """Online Pulse: fitting + segment processing + per-tuple validation.

    Every tuple passes through the online segmenter (O(1) incremental
    fit); closed segments flow through the continuous plan; when a bound
    is given, each tuple is additionally validated against the most
    recent model for its key — the accuracy check whose violations
    Fig. 9iii counts.
    """
    query = to_continuous_plan(planned)
    builder = StreamModelBuilder(
        attrs, tolerance, key_fields=key_fields, constants=constants
    )
    active: dict[tuple, Segment] = {}
    outputs = 0
    violations = 0
    attr0 = attrs[0]
    start = time.perf_counter()
    for tup in tuples:
        if bound is not None:
            key = tup.key(key_fields)
            model = active.get(key)
            # The last fitted model extends forward as the prediction
            # until a newer piece replaces it (predictive validation).
            if model is not None and tup.time >= model.t_start:
                deviation = abs(tup[attr0] - model.models[attr0](tup.time))
                reference = abs(tup[attr0])
                if deviation > bound * max(reference, 1e-12):
                    violations += 1
        for seg in builder.add(tup):
            active[seg.key] = seg
            outputs += len(query.push(stream, seg))
    for seg in builder.finish():
        outputs += len(query.push(stream, seg))
    elapsed = time.perf_counter() - start
    return PathResult("pulse", len(tuples), elapsed, outputs, violations)


def interleave_by_time(
    segments: Sequence[Segment], tuples: Sequence[StreamTuple]
):
    """Merge segments (by t_start) and tuples (by time) into one feed.

    Microbenchmarks drive a continuous operator with segments while
    validating the co-flowing tuples; this yields ``("segment", s)`` and
    ``("tuple", t)`` events in time order.
    """
    events: list[tuple[float, int, str, object]] = []
    for i, seg in enumerate(segments):
        events.append((seg.t_start, i, "segment", seg))
    for i, tup in enumerate(tuples):
        events.append((tup.time, i, "tuple", tup))
    events.sort(key=lambda e: (e[0], 0 if e[2] == "segment" else 1, e[1]))
    for _, _, kind, payload in events:
        yield kind, payload


def validate_against(
    model_by_key: Mapping[tuple, Segment],
    tup: StreamTuple,
    attr: str,
    bound_abs: float,
) -> bool:
    """One accuracy check: |tuple - model(t)| <= bound.

    This is the per-tuple fast path whose cost the microbenchmarks
    charge to Pulse for every tuple that is *not* processed.
    """
    model = model_by_key.get(tup.key(("id",)))
    if model is None or not model.contains_time(tup.time):
        return False
    deviation = tup[attr] - model.models[attr](tup.time)
    return -bound_abs <= deviation <= bound_abs


def model_table(
    segments: Sequence[Segment], attr: str, key_field: str = "id"
) -> dict:
    """Index segments for the tight validation loop.

    Maps a key value to a list of ``(t_start, t_end, coeffs)`` entries
    sorted by start time; :func:`fast_validate_loop` scans them with a
    per-key cursor (segments and tuples both advance in time).
    """
    table: dict = {}
    for seg in segments:
        key = seg.constants.get(key_field, seg.key[0] if seg.key else None)
        table.setdefault(key, []).append(
            (seg.t_start, seg.t_end, seg.models[attr].coeffs)
        )
    for entries in table.values():
        entries.sort(key=lambda e: e[0])
    return table


def fast_validate_loop(
    tuples: Sequence[StreamTuple],
    table: Mapping,
    attr: str,
    bound_abs: float,
    key_field: str = "id",
) -> int:
    """Validate every tuple against its model; returns violation count.

    This is the cost Pulse pays per tuple instead of query processing: a
    model lookup, a Horner evaluation, and a bound comparison — the loop
    is deliberately lean because its per-tuple cost is exactly what the
    microbenchmarks amortize the solver against.
    """
    violations = 0
    cursors: dict = {}
    for tup in tuples:
        key = tup[key_field]
        entries = table.get(key)
        if not entries:
            continue
        t = tup["time"]
        i = cursors.get(key, 0)
        while i < len(entries) - 1 and entries[i][1] <= t:
            i += 1
        cursors[key] = i
        coeffs = entries[i][2]
        value = coeffs[-1]
        for c in reversed(coeffs[:-1]):
            value = value * t + c
        if not (-bound_abs <= tup[attr] - value <= bound_abs):
            violations += 1
    return violations


def best_of(fn: Callable[[], float], repeats: int = 3) -> float:
    """Minimum of ``repeats`` timing runs (suppresses GC/alloc noise)."""
    return min(fn() for _ in range(repeats))
