"""Series containers and shape assertions for the experiment harness.

The reproduction does not chase the paper's absolute 2006 C++ numbers;
it checks *shapes*: who wins, by what rough factor, and where crossovers
fall.  These helpers hold measured series, print them as the tables the
paper plots, and provide the shape predicates the bench files assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


@dataclass
class Series:
    """One named measurement series over a shared x-axis."""

    name: str
    xs: list[float] = field(default_factory=list)
    ys: list[float] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        self.xs.append(x)
        self.ys.append(y)

    def y_at(self, x: float) -> float:
        return self.ys[self.xs.index(x)]

    @property
    def max_y(self) -> float:
        return max(self.ys)


def crossover(xs: Sequence[float], a: Sequence[float], b: Sequence[float]) -> float | None:
    """First x at which series ``a`` meets or exceeds series ``b``.

    Linear interpolation between samples; ``None`` when ``a`` never
    catches up.  Used for Fig. 5's "continuous-time becomes viable at N
    tuples per segment" readings.
    """
    for i, x in enumerate(xs):
        if a[i] >= b[i]:
            if i == 0:
                return x
            x0, x1 = xs[i - 1], x
            gap0 = b[i - 1] - a[i - 1]
            gap1 = a[i] - b[i]
            if gap0 + gap1 <= 0:
                return x
            return x0 + (x1 - x0) * gap0 / (gap0 + gap1)
    return None


def is_monotone_increasing(ys: Sequence[float], slack: float = 0.15) -> bool:
    """Whether the series trends upward (allowing measurement noise)."""
    violations = sum(
        1 for a, b in zip(ys[:-1], ys[1:]) if b < a * (1 - slack)
    )
    return violations <= max(1, len(ys) // 4)


def is_roughly_flat(ys: Sequence[float], factor: float = 3.0) -> bool:
    """Whether the series varies by no more than ``factor`` end to end."""
    lo, hi = min(ys), max(ys)
    return lo > 0 and hi / lo <= factor


def growth_ratio(ys: Sequence[float]) -> float:
    """Last-to-first ratio (cost growth over the sweep)."""
    return ys[-1] / ys[0] if ys[0] else float("inf")


def format_table(
    x_label: str,
    xs: Sequence[float],
    series: Sequence[Series],
    y_format: str = "{:.1f}",
) -> str:
    """Render series side by side, one row per x value."""
    headers = [x_label] + [s.name for s in series]
    rows = [headers]
    for i, x in enumerate(xs):
        row = [f"{x:g}"]
        for s in series:
            row.append(y_format.format(s.ys[i]) if i < len(s.ys) else "-")
        rows.append(row)
    widths = [max(len(r[c]) for r in rows) for c in range(len(headers))]
    lines = []
    for i, row in enumerate(rows):
        lines.append(
            "  ".join(cell.rjust(widths[j]) for j, cell in enumerate(row))
        )
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
