"""Benchmark harness: parameters, runners, series and the paper queries."""

from .accuracy import AgreementReport, compare_outputs

from .harness import (
    PathResult,
    best_of,
    fast_validate_loop,
    interleave_by_time,
    model_table,
    time_historical_path,
    time_modeling_only,
    time_pulse_online_path,
    time_tuple_path,
    validate_against,
)
from .params import (
    FIG5_TPS_SWEEP,
    FIG7I_RATE,
    FIG7I_SLIDE,
    FIG7I_WINDOWS,
    FIG7II_JOIN_WINDOW,
    FIG7II_RATES,
    FIG8_RATES,
    FIG8_SLIDE,
    FIG8_WINDOW,
    FIG9I_PRECISION,
    FIG9I_RATES,
    FIG9II_PRECISION,
    FIG9II_RATES,
    FIG9III_PRECISIONS,
    FIG9III_RATE,
    MICRO_PRECISION,
    MICRO_WORKLOAD,
    PARAMS_TABLE,
    format_params_table,
)
from .queries import (
    COLLISION_SQL,
    FOLLOWING_SQL,
    MACD_SQL,
    collision_planned,
    following_planned,
    macd_planned,
)
from .series import (
    Series,
    crossover,
    format_table,
    growth_ratio,
    is_monotone_increasing,
    is_roughly_flat,
)

__all__ = [
    "AgreementReport", "compare_outputs",
    "COLLISION_SQL", "FIG5_TPS_SWEEP", "FIG7II_JOIN_WINDOW", "FIG7II_RATES",
    "FIG7I_RATE", "FIG7I_SLIDE", "FIG7I_WINDOWS", "FIG8_RATES", "FIG8_SLIDE",
    "FIG8_WINDOW", "FIG9III_PRECISIONS", "FIG9III_RATE", "FIG9II_PRECISION",
    "FIG9II_RATES", "FIG9I_PRECISION", "FIG9I_RATES", "FOLLOWING_SQL",
    "MACD_SQL", "MICRO_PRECISION", "MICRO_WORKLOAD", "PARAMS_TABLE",
    "PathResult", "Series", "best_of", "collision_planned", "crossover",
    "fast_validate_loop", "model_table",
    "following_planned", "format_params_table", "format_table",
    "growth_ratio", "interleave_by_time", "is_monotone_increasing",
    "is_roughly_flat", "macd_planned", "time_historical_path",
    "time_modeling_only", "time_pulse_online_path", "time_tuple_path",
    "validate_against",
]
