"""The paper's evaluation queries, as reusable constructors.

Section V-B defines the two dataset queries: the MACD (moving average
convergence/divergence) query over NYSE trades and the vessel
"following" query over AIS reports.  Benchmarks and examples share
these builders so every run executes the same query text.
"""

from __future__ import annotations

from ..query import PlannedQuery, parse_query, plan_query

#: Fig. 9i / 9iii: MACD with a short and a long moving average joined on
#: symbol, selecting short-above-long crossings.  Window sizes follow
#: the paper ([size 10 advance 2] and [size 60 advance 2]).
MACD_SQL = """
select symbol, S.ap - L.ap as diff from
    (select symbol, avg(price) as ap from
        trades [size 10 advance 2]) as S
join
    (select symbol, avg(price) as ap from
        trades [size 60 advance 2]) as L
on (S.symbol = L.symbol)
where S.ap > L.ap
error within 1%
"""

#: Fig. 9ii: pairwise vessel proximity joined on distinct ids, averaged
#: over a long window, thresholded in HAVING.
FOLLOWING_SQL = """
select id1, id2, avg(dist) as avg_dist from
    (select S1.id as id1, S2.id as id2,
            sqrt(pow(S1.x - S2.x, 2) + pow(S1.y - S2.y, 2)) as dist
     from vessels [size 10 advance 1] as S1
     join vessels as S2 [size 10 advance 1]
     on (S1.id <> S2.id)) [size 600 advance 10] as Candidates
group by id1, id2 having avg(dist) < 1000
error within 0.05%
"""

#: The intro's collision-detection query (proximity join, squared form).
COLLISION_SQL = """
select from objects R join objects S on (R.id <> S.id)
where pow(R.x - S.x, 2) + pow(R.y - S.y, 2) < {radius_sq}
"""


def macd_planned(short: float = 10.0, long: float = 60.0, slide: float = 2.0) -> PlannedQuery:
    """Plan the MACD query, optionally rescaling the windows."""
    sql = MACD_SQL.replace("[size 10 advance 2]", f"[size {short} advance {slide}]")
    sql = sql.replace("[size 60 advance 2]", f"[size {long} advance {slide}]")
    return plan_query(parse_query(sql))


def following_planned(
    join_window: float = 10.0, avg_window: float = 600.0, slide: float = 10.0
) -> PlannedQuery:
    """Plan the AIS "following" query, optionally rescaling windows."""
    sql = FOLLOWING_SQL.replace(
        "[size 10 advance 1]", f"[size {join_window} advance 1]"
    ).replace("[size 600 advance 10]", f"[size {avg_window} advance {slide}]")
    return plan_query(parse_query(sql))


def collision_planned(radius: float = 100.0) -> PlannedQuery:
    """Plan the collision query for a given proximity radius."""
    return plan_query(parse_query(COLLISION_SQL.format(radius_sq=radius * radius)))
