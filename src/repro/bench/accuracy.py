"""Output-semantics comparison: quantifying Section IV-A.

The paper observes that continuous-time processing is not operationally
identical to tuple processing: Pulse may emit **false positives** (model
intersections no discrete tuple witnessed — superset semantics,
Observation 1) and **false negatives** (tuples dropped within the
precision bound — subset semantics, Observation 2).  This module
measures both rates for any pair of runs, so integration tests and
benchmarks can assert that disagreement stays confined to result
boundaries instead of hand-waving about "approximate agreement".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from ..core.segment import Segment
from ..engine.tuples import StreamTuple

#: Extracts the comparison key from a discrete output row.
RowKey = Callable[[StreamTuple], tuple]
#: Extracts the comparison key from a continuous output segment.
SegmentKey = Callable[[Segment], tuple]


@dataclass(frozen=True)
class AgreementReport:
    """Agreement statistics between a discrete and a continuous run.

    All rates are in [0, 1]; ``false_negative_rate`` is relative to the
    discrete results (how many of them Pulse missed),
    ``false_positive_rate`` relative to the probe instants of the
    continuous results (how much of Pulse's output no discrete row
    confirms).
    """

    discrete_rows: int
    matched_rows: int
    probe_instants: int
    confirmed_instants: int

    @property
    def false_negatives(self) -> int:
        return self.discrete_rows - self.matched_rows

    @property
    def false_negative_rate(self) -> float:
        if self.discrete_rows == 0:
            return 0.0
        return self.false_negatives / self.discrete_rows

    @property
    def false_positives(self) -> int:
        return self.probe_instants - self.confirmed_instants

    @property
    def false_positive_rate(self) -> float:
        if self.probe_instants == 0:
            return 0.0
        return self.false_positives / self.probe_instants

    @property
    def agreement(self) -> float:
        """Combined agreement score (1 = operationally identical)."""
        total = self.discrete_rows + self.probe_instants
        if total == 0:
            return 1.0
        return (self.matched_rows + self.confirmed_instants) / total


def compare_outputs(
    discrete_rows: Iterable[StreamTuple],
    continuous_segments: Sequence[Segment],
    row_key: RowKey,
    segment_key: SegmentKey,
    time_slack: float = 0.0,
    probe_period: float | None = None,
    discrete_sample_period: float | None = None,
) -> AgreementReport:
    """Measure two runs' agreement.

    * A discrete row is *matched* when some continuous segment with the
      same key covers its timestamp (widened by ``time_slack``).
    * The continuous output is probed at grid instants (``probe_period``
      defaults to the median segment duration / 4); a probe is
      *confirmed* when a discrete row with the same key lies within
      ``discrete_sample_period`` (defaults to ``probe_period``) of it.
    """
    rows = list(discrete_rows)
    by_key: dict[tuple, list[Segment]] = {}
    for seg in continuous_segments:
        by_key.setdefault(segment_key(seg), []).append(seg)

    matched = 0
    for row in rows:
        key = row_key(row)
        t = row.time
        if any(
            s.t_start - time_slack <= t < s.t_end + time_slack
            for s in by_key.get(key, ())
        ):
            matched += 1

    if probe_period is None:
        durations = sorted(
            s.duration for s in continuous_segments if not s.is_point
        )
        probe_period = (
            durations[len(durations) // 2] / 4.0 if durations else 1.0
        )
    if discrete_sample_period is None:
        discrete_sample_period = probe_period

    rows_by_key: dict[tuple, list[float]] = {}
    for row in rows:
        rows_by_key.setdefault(row_key(row), []).append(row.time)
    for times in rows_by_key.values():
        times.sort()

    probes = 0
    confirmed = 0
    import bisect

    for seg in continuous_segments:
        key = segment_key(seg)
        times = rows_by_key.get(key, [])
        t = seg.t_start + probe_period / 2.0
        while t < seg.t_end:
            probes += 1
            i = bisect.bisect_left(times, t)
            near = []
            if i < len(times):
                near.append(times[i])
            if i > 0:
                near.append(times[i - 1])
            if any(abs(x - t) <= discrete_sample_period for x in near):
                confirmed += 1
            t += probe_period

    return AgreementReport(
        discrete_rows=len(rows),
        matched_rows=matched,
        probe_instants=probes,
        confirmed_instants=confirmed,
    )
