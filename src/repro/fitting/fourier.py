"""Frequency-domain models: Fourier series fitting (Section VII).

The paper's future work names "frequency models such as Fourier series"
as a model type to support.  Pulse's operator set is closed over
*polynomials*, so this module takes the approximation route the paper's
own framework suggests: fit a truncated Fourier series to periodic data
(the right global model for, e.g., diurnal temperature or tidal vessel
drift), then convert it to the piecewise polynomials the equation-system
operators consume, with a controlled conversion error that folds into
the validation bounds like any other modeling error.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.polynomial import Polynomial
from ..core.segment import Segment
from .regression import fit_polynomial


@dataclass(frozen=True)
class FourierModel:
    """A truncated Fourier series ``a0 + sum_k a_k cos(k w t) + b_k sin(k w t)``.

    ``omega`` is the fundamental angular frequency (``2 pi / period``).
    """

    a0: float
    cosine: tuple[float, ...]
    sine: tuple[float, ...]
    omega: float

    @property
    def harmonics(self) -> int:
        return len(self.cosine)

    @property
    def period(self) -> float:
        return 2.0 * math.pi / self.omega

    def __call__(self, t):
        t = np.asarray(t, dtype=float)
        result = np.full_like(t, self.a0, dtype=float)
        for k, (a, b) in enumerate(zip(self.cosine, self.sine), start=1):
            result += a * np.cos(k * self.omega * t) + b * np.sin(k * self.omega * t)
        if result.ndim == 0:
            return float(result)
        return result

    def derivative(self) -> "FourierModel":
        """Term-wise derivative (stays a Fourier series)."""
        cos = tuple(
            k * self.omega * b for k, b in enumerate(self.sine, start=1)
        )
        sin = tuple(
            -k * self.omega * a for k, a in enumerate(self.cosine, start=1)
        )
        return FourierModel(0.0, cos, sin, self.omega)


def fit_fourier(
    times: Sequence[float],
    values: Sequence[float],
    period: float,
    harmonics: int = 3,
) -> FourierModel:
    """Least-squares fit of a truncated Fourier series.

    Parameters
    ----------
    period:
        The signal's fundamental period (must be known or estimated;
        see :func:`estimate_period`).
    harmonics:
        Number of harmonics ``K``; the design matrix has ``2K + 1``
        columns.
    """
    if period <= 0:
        raise ValueError("period must be positive")
    if harmonics < 1:
        raise ValueError("at least one harmonic is required")
    t = np.asarray(times, dtype=float)
    y = np.asarray(values, dtype=float)
    if t.size < 2 * harmonics + 1:
        raise ValueError(
            f"need at least {2 * harmonics + 1} points for {harmonics} harmonics"
        )
    omega = 2.0 * math.pi / period
    columns = [np.ones_like(t)]
    for k in range(1, harmonics + 1):
        columns.append(np.cos(k * omega * t))
        columns.append(np.sin(k * omega * t))
    design = np.stack(columns, axis=1)
    coeffs, *_ = np.linalg.lstsq(design, y, rcond=None)
    return FourierModel(
        a0=float(coeffs[0]),
        cosine=tuple(float(c) for c in coeffs[1::2]),
        sine=tuple(float(c) for c in coeffs[2::2]),
        omega=omega,
    )


def estimate_period(times: Sequence[float], values: Sequence[float]) -> float:
    """Dominant period via the FFT of a uniformly resampled signal."""
    t = np.asarray(times, dtype=float)
    y = np.asarray(values, dtype=float)
    if t.size < 8:
        raise ValueError("too few points to estimate a period")
    uniform_t = np.linspace(t[0], t[-1], t.size)
    uniform_y = np.interp(uniform_t, t, y)
    uniform_y = uniform_y - np.mean(uniform_y)
    spectrum = np.abs(np.fft.rfft(uniform_y))
    freqs = np.fft.rfftfreq(t.size, d=(t[-1] - t[0]) / (t.size - 1))
    # Ignore the DC bin.
    peak = 1 + int(np.argmax(spectrum[1:]))
    if freqs[peak] <= 0:
        raise ValueError("no dominant frequency found")
    return float(1.0 / freqs[peak])


def fourier_to_piecewise(
    model: FourierModel,
    t_start: float,
    t_end: float,
    degree: int = 3,
    pieces_per_period: int = 8,
) -> list[tuple[float, float, Polynomial]]:
    """Convert a Fourier model to piecewise polynomials.

    Each period is cut into ``pieces_per_period`` spans and a degree-
    ``degree`` least-squares polynomial is fitted per span — for the
    default cubic-per-eighth-period the conversion error is far below a
    percent of the amplitude, small enough to fold into validation
    bounds.  Returns ``(lo, hi, poly)`` tuples covering ``[t_start,
    t_end)``.
    """
    if t_end <= t_start:
        raise ValueError("empty conversion range")
    piece_width = model.period / pieces_per_period
    n_pieces = max(1, math.ceil((t_end - t_start) / piece_width))
    out: list[tuple[float, float, Polynomial]] = []
    for i in range(n_pieces):
        lo = t_start + i * piece_width
        hi = min(t_start + (i + 1) * piece_width, t_end)
        if hi <= lo:
            break
        samples = max(2 * degree + 3, 9)
        ts = np.linspace(lo, hi, samples)
        fit = fit_polynomial(ts, model(ts), degree)
        out.append((lo, hi, fit.poly))
    return out


def fourier_segments(
    model: FourierModel,
    attr: str,
    key: tuple,
    t_start: float,
    t_end: float,
    degree: int = 3,
    pieces_per_period: int = 8,
    constants: dict | None = None,
) -> list[Segment]:
    """Piecewise-polynomial segments of a Fourier model, ready to push
    into a continuous plan."""
    return [
        Segment(key, lo, hi, {attr: poly}, constants=constants or {})
        for lo, hi, poly in fourier_to_piecewise(
            model, t_start, t_end, degree, pieces_per_period
        )
    ]


def conversion_error(
    model: FourierModel,
    pieces: Sequence[tuple[float, float, Polynomial]],
    samples_per_piece: int = 32,
) -> float:
    """Max absolute deviation of the piecewise conversion from the model."""
    worst = 0.0
    for lo, hi, poly in pieces:
        ts = np.linspace(lo, hi, samples_per_piece)
        worst = max(worst, float(np.max(np.abs(poly(ts) - model(ts)))))
    return worst
