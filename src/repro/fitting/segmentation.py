"""Time-series segmentation: points → piecewise polynomial models.

The paper's historical processing fits models "via an online
segmentation-based algorithm [13]" — Keogh, Chu, Hart & Pazzani's "An
online algorithm for segmenting time series" (ICDM 2001).  That paper
defines the three classic strategies implemented here:

* **sliding window** — grow a segment until the fit error exceeds the
  tolerance, then cut (the online algorithm Pulse uses);
* **bottom-up** — start from finest segments and greedily merge the pair
  with the cheapest merge cost (offline, best quality);
* **SWAB** (Sliding Window And Bottom-up) — bottom-up over a small
  buffer, emitting the leftmost segment as the buffer slides (online,
  near bottom-up quality).

All three return :class:`SegmentFit` pieces; tolerance is the maximum
absolute residual per segment, matching Pulse's absolute error bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.polynomial import Polynomial
from .regression import FitResult, fit_polynomial


@dataclass(frozen=True)
class SegmentFit:
    """One fitted piece: ``[t_start, t_end)`` with its model and error."""

    t_start: float
    t_end: float
    poly: Polynomial
    max_error: float

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


def _piece(times, values, degree, end_time=None) -> SegmentFit:
    fit = fit_polynomial(times, values, degree)
    t_end = end_time if end_time is not None else float(times[-1])
    # A segment must have positive extent; extend a point fit minimally.
    t_start = float(times[0])
    if t_end <= t_start:
        t_end = t_start + 1e-9
    return SegmentFit(t_start, t_end, fit.poly, fit.max_error)


def sliding_window_segmentation(
    times: Sequence[float],
    values: Sequence[float],
    tolerance: float,
    degree: int = 1,
) -> list[SegmentFit]:
    """Online sliding-window segmentation.

    Grows each segment point by point, cutting when the best fit's max
    residual exceeds ``tolerance``.  Each piece's ``t_end`` is the next
    piece's ``t_start``, so consecutive pieces tile the time axis.
    """
    t = np.asarray(times, dtype=float)
    y = np.asarray(values, dtype=float)
    if t.size == 0:
        return []
    pieces: list[SegmentFit] = []
    anchor = 0
    i = anchor + 1
    while i < t.size:
        fit = fit_polynomial(t[anchor : i + 1], y[anchor : i + 1], degree)
        if fit.max_error > tolerance:
            pieces.append(_piece(t[anchor:i], y[anchor:i], degree, end_time=t[i]))
            anchor = i
        i += 1
    pieces.append(_piece(t[anchor:], y[anchor:], degree))
    return pieces


def bottom_up_segmentation(
    times: Sequence[float],
    values: Sequence[float],
    tolerance: float,
    degree: int = 1,
    initial_size: int = 2,
) -> list[SegmentFit]:
    """Offline bottom-up segmentation.

    Starts from runs of ``initial_size`` points and repeatedly merges the
    adjacent pair whose merged fit has the smallest max residual, until
    no merge stays within ``tolerance``.
    """
    t = np.asarray(times, dtype=float)
    y = np.asarray(values, dtype=float)
    if t.size == 0:
        return []
    # Segment boundaries as index ranges [start, end).
    bounds = [
        (i, min(i + initial_size, t.size))
        for i in range(0, t.size, initial_size)
    ]
    if len(bounds) == 1:
        return [_piece(t, y, degree)]

    def merge_cost(a: tuple[int, int], b: tuple[int, int]) -> float:
        return fit_polynomial(t[a[0] : b[1]], y[a[0] : b[1]], degree).max_error

    costs = [merge_cost(bounds[i], bounds[i + 1]) for i in range(len(bounds) - 1)]
    while costs:
        best = int(np.argmin(costs))
        if costs[best] > tolerance:
            break
        bounds[best] = (bounds[best][0], bounds[best + 1][1])
        del bounds[best + 1]
        del costs[best]
        if best > 0:
            costs[best - 1] = merge_cost(bounds[best - 1], bounds[best])
        if best < len(costs):
            costs[best] = merge_cost(bounds[best], bounds[best + 1])
    pieces = []
    for idx, (a, b) in enumerate(bounds):
        end_time = t[bounds[idx + 1][0]] if idx + 1 < len(bounds) else None
        pieces.append(_piece(t[a:b], y[a:b], degree, end_time=end_time))
    return pieces


def swab_segmentation(
    times: Sequence[float],
    values: Sequence[float],
    tolerance: float,
    degree: int = 1,
    buffer_size: int = 60,
) -> list[SegmentFit]:
    """SWAB: online segmentation with bottom-up quality.

    Keeps a point buffer roughly ``buffer_size`` long, runs bottom-up on
    it, emits the leftmost resulting segment, and refills.
    """
    t = np.asarray(times, dtype=float)
    y = np.asarray(values, dtype=float)
    if t.size == 0:
        return []
    pieces: list[SegmentFit] = []
    start = 0
    while start < t.size:
        end = min(start + buffer_size, t.size)
        window = bottom_up_segmentation(
            t[start:end], y[start:end], tolerance, degree
        )
        if end == t.size:
            pieces.extend(window)
            break
        # Emit only the leftmost segment, slide the buffer past it.
        first = window[0]
        emitted_points = int(np.searchsorted(t, first.t_end, side="left")) - start
        emitted_points = max(emitted_points, 1)
        boundary = start + emitted_points
        boundary_time = t[boundary] if boundary < t.size else None
        pieces.append(
            _piece(
                t[start:boundary],
                y[start:boundary],
                degree,
                end_time=boundary_time,
            )
        )
        start = boundary
    return pieces


class OnlineSegmenter:
    """Streaming sliding-window segmenter (one attribute, one key).

    Feed points with :meth:`add`; completed pieces are returned as they
    close.  :meth:`finish` flushes the trailing open piece.

    The linear (degree-1) path is O(1) per point: the least-squares line
    is maintained from running sums, and the cut test checks the incoming
    point's residual against the current line — the standard online
    approximation of the sliding-window algorithm, which is what makes
    model fitting viable at the stream rates of Fig. 8.
    """

    def __init__(self, tolerance: float, degree: int = 1):
        if degree != 1:
            raise ValueError(
                "OnlineSegmenter is the O(1)-per-point linear fitter; use "
                "sliding_window_segmentation for higher degrees"
            )
        self.tolerance = tolerance
        self.degree = degree
        #: Points consumed (throughput accounting for Fig. 8's inset).
        self.points_consumed = 0
        self._reset_window()

    def _reset_window(self) -> None:
        self._n = 0
        self._t0 = 0.0
        self._first_t = 0.0
        self._first_y = 0.0
        self._last_t = 0.0
        self._sum_t = 0.0
        self._sum_y = 0.0
        self._sum_tt = 0.0
        self._sum_ty = 0.0
        self._max_resid = 0.0

    def _line(self) -> Polynomial:
        """Current least-squares line from the running sums."""
        if self._n == 1:
            return Polynomial([self._first_y])
        denom = self._n * self._sum_tt - self._sum_t**2
        if abs(denom) < 1e-18:
            return Polynomial([self._sum_y / self._n])
        slope = (self._n * self._sum_ty - self._sum_t * self._sum_y) / denom
        intercept = (self._sum_y - slope * self._sum_t) / self._n
        # Sums are relative to _t0 for conditioning; shift back.
        return Polynomial([intercept, slope]).shift(-self._t0)

    def _ingest(self, t: float, value: float) -> None:
        if self._n == 0:
            self._t0 = t
            self._first_t = t
            self._first_y = value
        rel = t - self._t0
        self._n += 1
        self._last_t = t
        self._sum_t += rel
        self._sum_y += value
        self._sum_tt += rel * rel
        self._sum_ty += rel * value

    def add(self, t: float, value: float) -> SegmentFit | None:
        """Add a point; returns a completed piece when one closes."""
        self.points_consumed += 1
        if self._n < 2:
            self._ingest(t, value)
            return None
        line = self._line()
        resid = abs(value - line(t))
        if resid <= self.tolerance:
            self._ingest(t, value)
            self._max_resid = max(self._max_resid, resid)
            return None
        closed = SegmentFit(self._first_t, t, line, self._max_resid)
        self._reset_window()
        self._ingest(t, value)
        return closed

    def finish(self) -> SegmentFit | None:
        """Close and return the trailing piece, if any."""
        if self._n == 0:
            return None
        line = self._line()
        closed = SegmentFit(
            self._first_t,
            self._last_t + 1e-9 if self._last_t <= self._first_t else self._last_t,
            line,
            self._max_resid,
        )
        self._reset_window()
        return closed
