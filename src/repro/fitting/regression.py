"""Least-squares polynomial regression for model fitting.

Pulse's historical mode computes continuous-time models of recorded
streams; the primitive underneath every segmentation algorithm is "fit
the best degree-d polynomial to these points and report the residual".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.polynomial import Polynomial


@dataclass(frozen=True)
class FitResult:
    """A fitted polynomial with its residual statistics."""

    poly: Polynomial
    max_error: float
    rms_error: float

    def within(self, tolerance: float) -> bool:
        return self.max_error <= tolerance


def fit_polynomial(
    times: Sequence[float],
    values: Sequence[float],
    degree: int = 1,
) -> FitResult:
    """Least-squares fit of ``values`` over ``times``.

    Degenerate inputs are handled explicitly: a single point fits a
    constant; ``degree`` is clamped to ``len(points) - 1``.
    """
    t = np.asarray(times, dtype=float)
    y = np.asarray(values, dtype=float)
    if t.size == 0:
        raise ValueError("cannot fit an empty point set")
    if t.size == 1:
        poly = Polynomial([float(y[0])])
        return FitResult(poly, 0.0, 0.0)
    degree = min(degree, t.size - 1)
    # Shift times so the normal equations stay well conditioned for
    # large absolute timestamps, then shift the polynomial back.
    t0 = float(t[0])
    coeffs = np.polynomial.polynomial.polyfit(t - t0, y, degree)
    poly = Polynomial(coeffs.tolist()).shift(-t0)
    residuals = y - poly(t)
    max_err = float(np.max(np.abs(residuals)))
    rms = float(np.sqrt(np.mean(residuals**2)))
    return FitResult(poly, max_err, rms)


def fit_error(
    times: Sequence[float], values: Sequence[float], degree: int = 1
) -> float:
    """Max residual of the best fit — segmentation's split criterion."""
    return fit_polynomial(times, values, degree).max_error


def interpolate_line(t0: float, y0: float, t1: float, y1: float) -> Polynomial:
    """The line through two points (used by fast segmentation variants)."""
    if t1 == t0:
        return Polynomial([y0])
    slope = (y1 - y0) / (t1 - t0)
    return Polynomial([y0 - slope * t0, slope])
