"""Building Pulse segments from tuples: the modeling component.

Two entry points mirror the paper's two operating modes (Section II-A):

* **Predictive**: :func:`predictive_segment` instantiates a numerical
  model from a single input tuple using the query's declarative
  ``MODEL`` clause (Figure 1) — coefficient attributes take the tuple's
  values, the time variable ``t`` is the offset from the tuple's
  timestamp, and the segment is valid for a prediction horizon.
* **Historical**: :class:`StreamModelBuilder` runs the online
  segmentation algorithm over the recorded stream, per key and across
  all modeled attributes simultaneously (one cut closes every
  attribute's piece so a segment carries a consistent set of models).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from ..core.expr import Expr
from ..core.polynomial import Polynomial
from ..core.segment import Segment
from ..engine.tuples import StreamTuple
from .segmentation import OnlineSegmenter, SegmentFit


def compile_model_clause(
    expr: Expr, coefficients: Mapping[str, float], t_origin: float
) -> Polynomial:
    """Turn a ``MODEL`` expression into an absolute-time polynomial.

    ``expr`` references coefficient attributes and the reserved variable
    ``t`` (the delta timestamp).  Coefficients are bound to the tuple's
    values; ``t`` becomes ``(absolute_time - t_origin)`` so the returned
    polynomial is directly comparable across streams.
    """

    def resolve(name: str) -> Polynomial:
        base = name.split(".")[-1]
        if base == "t":
            return Polynomial([-t_origin, 1.0])
        if name in coefficients:
            return Polynomial.constant(float(coefficients[name]))
        if base in coefficients:
            return Polynomial.constant(float(coefficients[base]))
        raise KeyError(f"model coefficient {name!r} not found in tuple")

    return expr.to_polynomial(resolve)


def predictive_segment(
    tup: StreamTuple,
    model_exprs: Mapping[str, Expr],
    horizon: float,
    key_fields: Sequence[str] = (),
    constants: Sequence[str] = (),
) -> Segment:
    """Instantiate a predictive segment from one tuple.

    Parameters
    ----------
    tup:
        The input tuple supplying coefficient values.
    model_exprs:
        ``attribute -> MODEL expression``; attribute names are stripped
        of stream qualifiers (the clause ``MODEL A.x = ...`` defines
        attribute ``x``).
    horizon:
        Segment validity: ``[tup.time, tup.time + horizon)``.
    """
    t0 = tup.time
    models = {
        attr.split(".")[-1]: compile_model_clause(expr, tup, t0)
        for attr, expr in model_exprs.items()
    }
    consts = {f: tup[f] for f in constants if f in tup}
    key = tup.key(key_fields)
    return Segment(
        key=key,
        t_start=t0,
        t_end=t0 + horizon,
        models=models,
        constants=consts,
    )


class MultiAttributeSegmenter:
    """Online segmentation across several attributes with shared cuts.

    A Pulse segment carries one model per attribute over a *single* time
    range, so whichever attribute first exceeds the tolerance cuts the
    piece for all of them.
    """

    def __init__(self, attrs: Sequence[str], tolerance: float):
        self.attrs = tuple(attrs)
        self.tolerance = tolerance
        self._segmenters = {a: OnlineSegmenter(tolerance) for a in attrs}
        self._start: float | None = None
        self._count = 0

    def add(
        self, t: float, values: Mapping[str, float]
    ) -> dict[str, SegmentFit] | None:
        """Add one multi-attribute point; returns closed fits on a cut."""
        if self._start is None:
            self._start = t
        self._count += 1
        closed: dict[str, SegmentFit] = {}
        cut = False
        for attr in self.attrs:
            fit = self._segmenters[attr].add(t, float(values[attr]))
            if fit is not None:
                closed[attr] = fit
                cut = True
        if not cut:
            return None
        # Force the remaining attributes to cut at the same boundary.
        for attr in self.attrs:
            if attr not in closed:
                seg = self._segmenters[attr]
                fit = seg.finish()
                # Re-seed with the current point so all attributes restart
                # together.
                seg.add(t, float(values[attr]))
                if fit is not None:
                    closed[attr] = fit
        self._start = t
        return closed

    def finish(self) -> dict[str, SegmentFit] | None:
        closed = {}
        for attr in self.attrs:
            fit = self._segmenters[attr].finish()
            if fit is not None:
                closed[attr] = fit
        return closed or None

    @property
    def points_consumed(self) -> int:
        return max(s.points_consumed for s in self._segmenters.values())


class StreamModelBuilder:
    """Streaming tuples → segments, per key (the modeling operator).

    Used standalone for Fig. 8's "modeling throughput" measurement and as
    the front end of historical processing: feed tuples with
    :meth:`add`, collect emitted :class:`Segment` objects.
    """

    def __init__(
        self,
        attrs: Sequence[str],
        tolerance: float,
        key_fields: Sequence[str] = (),
        constants: Sequence[str] = (),
    ):
        self.attrs = tuple(attrs)
        self.tolerance = tolerance
        self.key_fields = tuple(key_fields)
        self.constants = tuple(constants)
        self._per_key: dict[tuple, MultiAttributeSegmenter] = {}
        self._const_values: dict[tuple, dict] = {}
        self.tuples_consumed = 0
        self.segments_emitted = 0

    def add(self, tup: StreamTuple) -> list[Segment]:
        self.tuples_consumed += 1
        key = tup.key(self.key_fields)
        seg = self._per_key.get(key)
        if seg is None:
            seg = MultiAttributeSegmenter(self.attrs, self.tolerance)
            self._per_key[key] = seg
            self._const_values[key] = {
                f: tup[f] for f in self.constants if f in tup
            }
        closed = seg.add(tup.time, tup)
        if closed is None:
            return []
        return [self._emit(key, closed)]

    def finish(self) -> list[Segment]:
        out = []
        for key, seg in self._per_key.items():
            closed = seg.finish()
            if closed is not None:
                out.append(self._emit(key, closed))
        self._per_key.clear()
        return out

    def retarget(self, tolerance: float) -> list[Segment]:
        """Switch the fitting tolerance; seals open windows first.

        History already folded into open segmenter windows was fitted at
        the old tolerance and cannot be re-fit without the raw tuples,
        so the open windows are closed (and their segments returned, to
        be pushed downstream at the bound they were fitted under) and
        every tuple from here on fits at the new tolerance.  Keyed
        constants survive — only the segmenter windows reset.
        """
        sealed = self.finish()
        self.tolerance = float(tolerance)
        return sealed

    def _emit(self, key: tuple, fits: Mapping[str, SegmentFit]) -> Segment:
        t_start = min(f.t_start for f in fits.values())
        t_end = max(f.t_end for f in fits.values())
        self.segments_emitted += 1
        return Segment(
            key=key,
            t_start=t_start,
            t_end=t_end,
            models={attr: fit.poly for attr, fit in fits.items()},
            constants=self._const_values.get(key, {}),
        )


def build_segments(
    tuples: Iterable[StreamTuple],
    attrs: Sequence[str],
    tolerance: float,
    key_fields: Sequence[str] = (),
    constants: Sequence[str] = (),
) -> list[Segment]:
    """Batch helper: segment an entire recorded stream (historical mode)."""
    builder = StreamModelBuilder(
        attrs, tolerance, key_fields=key_fields, constants=constants
    )
    out: list[Segment] = []
    for tup in tuples:
        out.extend(builder.add(tup))
    out.extend(builder.finish())
    # Emission order follows cut times, but finish() flushes trailing
    # pieces per key at the very end; restore the monotone reference
    # timestamp order the data stream model assumes (Section II-B).
    out.sort(key=lambda s: (s.t_start, s.t_end))
    return out
