"""Model fitting: regression, time-series segmentation, segment building."""

from .model_builder import (
    StreamModelBuilder,
    build_segments,
    compile_model_clause,
    predictive_segment,
)
from .regression import FitResult, fit_error, fit_polynomial, interpolate_line
from .segmentation import (
    OnlineSegmenter,
    SegmentFit,
    bottom_up_segmentation,
    sliding_window_segmentation,
    swab_segmentation,
)

__all__ = [
    "FitResult",
    "OnlineSegmenter",
    "SegmentFit",
    "StreamModelBuilder",
    "bottom_up_segmentation",
    "build_segments",
    "compile_model_clause",
    "fit_error",
    "fit_polynomial",
    "interpolate_line",
    "predictive_segment",
    "sliding_window_segmentation",
    "swab_segmentation",
]
