"""Fault injection: break the solver and the data on purpose.

The resilience layer (solver guardrails, per-key circuit breakers,
runtime fallback) is only trustworthy if it is exercised against real
failure classes.  This module injects them deterministically:

* :func:`inject_solver_faults` — a fraction of row solves raise a typed
  failure, time out, or see NaN coefficients (a poisoned model fit);
* :func:`force_eigvals_failures` — the stacked companion-matrix
  eigensolve raises ``LinAlgError`` (LAPACK non-convergence), forcing
  the batch kernel's row-by-row fallback;
* :func:`corrupt_tuples` — stream tuples are corrupted in flight
  (NaN values, dropped fields, absurd magnitudes).

All injectors are context managers (or pure generators) that restore
the patched state on exit, and all draw from a seeded
``random.Random`` so every chaos run is reproducible.
"""

from __future__ import annotations

import math
import random
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..core import batch_solver
from ..core.errors import SolverFailure
from ..core.polynomial import Polynomial
from ..engine.tuples import StreamTuple

#: Supported solver fault kinds.
SOLVER_FAULT_KINDS = ("raise", "nan", "timeout")

#: Supported tuple corruption modes.
CORRUPTION_MODES = ("nan", "drop-field", "huge")


@dataclass
class InjectionStats:
    """How often an injector fired, for asserting on fault coverage."""

    calls: int = 0
    injected: int = 0

    @property
    def observed_rate(self) -> float:
        return self.injected / self.calls if self.calls else 0.0


# ----------------------------------------------------------------------
# solver faults
# ----------------------------------------------------------------------
@contextmanager
def inject_solver_faults(
    rate: float = 0.05,
    kind: str = "raise",
    seed: int = 0,
    delay: float = 0.0,
) -> Iterator[InjectionStats]:
    """Make a fraction of row solves fail, via the solver fault hook.

    Parameters
    ----------
    rate:
        Probability that any one solve task is hit.
    kind:
        ``"raise"`` fails the task with ``SolverFailure("injected")``;
        ``"timeout"`` sleeps ``delay`` seconds, then fails with
        ``SolverFailure("timeout")``; ``"nan"`` replaces the task's
        polynomial with NaN coefficients, exercising the coefficient
        guardrails exactly as a poisoned model fit would.
    seed:
        Seed of the injector's private RNG — runs are reproducible.
    """
    if kind not in SOLVER_FAULT_KINDS:
        raise ValueError(
            f"kind must be one of {SOLVER_FAULT_KINDS}, got {kind!r}"
        )
    rng = random.Random(seed)
    stats = InjectionStats()

    def hook(task: batch_solver.SolveTask):
        stats.calls += 1
        if rng.random() >= rate:
            return None
        stats.injected += 1
        if kind == "raise":
            raise SolverFailure("injected", "injected solver fault")
        if kind == "timeout":
            if delay > 0:
                time.sleep(delay)
            raise SolverFailure("timeout", "injected solver timeout")
        poly, rel, lo, hi = task
        width = max(2, len(poly.coeffs))
        return (Polynomial([math.nan] * width), rel, lo, hi)

    previous = batch_solver.set_fault_hook(hook)
    try:
        yield stats
    finally:
        batch_solver.set_fault_hook(previous)


@contextmanager
def force_eigvals_failures(
    rate: float = 1.0,
    seed: int = 0,
    only_stacked: bool = False,
) -> Iterator[InjectionStats]:
    """Make the companion-matrix eigensolve raise ``LinAlgError``.

    Patches the batch kernel's stacked eigensolver to simulate LAPACK
    non-convergence.  With ``only_stacked=True`` only multi-row
    (stacked) calls fail, so the kernel's row-by-row retry succeeds —
    the test of "one poisoned row cannot sink its degree bucket".
    """
    rng = random.Random(seed)
    stats = InjectionStats()
    original = batch_solver._stacked_companion_eigvals

    def patched(rows):
        stats.calls += 1
        hit = rng.random() < rate
        if hit and (len(rows) > 1 or not only_stacked):
            stats.injected += 1
            raise np.linalg.LinAlgError(
                "injected: eigenvalues did not converge"
            )
        return original(rows)

    batch_solver._stacked_companion_eigvals = patched
    try:
        yield stats
    finally:
        batch_solver._stacked_companion_eigvals = original


# ----------------------------------------------------------------------
# data faults
# ----------------------------------------------------------------------
def corrupt_tuples(
    tuples: Iterable[StreamTuple],
    rate: float = 0.05,
    seed: int = 0,
    modes: Sequence[str] = CORRUPTION_MODES,
    fields: Sequence[str] | None = None,
    stats: InjectionStats | None = None,
) -> Iterator[StreamTuple]:
    """Yield ``tuples`` with a fraction corrupted in flight.

    Corruption picks a random eligible field (numeric, non-``time`` by
    default — or any of ``fields`` when given) and applies one of the
    ``modes``: set it to NaN, delete it, or blow it up to ``1e300``.
    Pass a :class:`InjectionStats` to observe the realized rate.
    """
    for mode in modes:
        if mode not in CORRUPTION_MODES:
            raise ValueError(
                f"modes must be among {CORRUPTION_MODES}, got {mode!r}"
            )
    rng = random.Random(seed)
    if stats is None:
        stats = InjectionStats()
    for tup in tuples:
        stats.calls += 1
        if rng.random() >= rate:
            yield tup
            continue
        eligible = (
            list(fields)
            if fields is not None
            else [
                f
                for f, v in tup.items()
                if f != StreamTuple.TIME_FIELD and isinstance(v, float)
            ]
        )
        if not eligible:
            yield tup
            continue
        stats.injected += 1
        field = rng.choice(eligible)
        mode = rng.choice(list(modes))
        corrupted = dict(tup)
        if mode == "nan":
            corrupted[field] = math.nan
        elif mode == "huge":
            corrupted[field] = math.copysign(1e300, rng.random() - 0.5)
        else:  # drop-field
            corrupted.pop(field, None)
        yield StreamTuple(corrupted)
