"""Testing utilities: the fault-injection harness.

Everything here is for chaos/resilience testing only — nothing in the
production paths imports this package.
"""

from .faults import (
    InjectionStats,
    corrupt_tuples,
    force_eigvals_failures,
    inject_solver_faults,
)

__all__ = [
    "InjectionStats",
    "corrupt_tuples",
    "force_eigvals_failures",
    "inject_solver_faults",
]
