"""Child-process server host for the crash-recovery chaos harness.

The kill-recovery test needs a *real* process death — ``SIGKILL``, no
``atexit``, no graceful WAL close — which an in-process
:class:`~repro.server.server.ServerThread` cannot provide.  This module
is the subprocess entry point::

    python -m repro.testing.chaos_server WAL_DIR [PORT] [CHECKPOINT_EVERY]

It hosts a durable server (``fsync_every=1``, so every acked ingest is
on disk and the client's resume arithmetic is exact), prints
``PORT <n>`` on stdout once listening, then sleeps until killed.  The
parent reads the port line, drives the protocol, and delivers the
``SIGKILL`` whenever its chaos schedule says so.
"""

from __future__ import annotations

import sys
import time

from ..server.server import ServerConfig, ServerThread


def main(argv: list[str]) -> int:
    if not argv:
        print("usage: chaos_server WAL_DIR [PORT] [CHECKPOINT_EVERY]")
        return 2
    wal_dir = argv[0]
    port = int(argv[1]) if len(argv) > 1 else 0
    checkpoint_every = int(argv[2]) if len(argv) > 2 else 7
    config = ServerConfig(
        port=port,
        wal_dir=wal_dir,
        checkpoint_every=checkpoint_every,
        fsync_every=1,
    )
    with ServerThread(config) as handle:
        print(f"PORT {handle.port}", flush=True)
        # Park until SIGKILLed (or terminated by the parent at test end).
        while True:
            time.sleep(0.5)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
