"""Child-process server hosting for the crash-recovery chaos harnesses.

The kill-recovery tests need *real* process death — ``SIGKILL``, no
``atexit``, no graceful WAL close — which an in-process
:class:`~repro.server.server.ServerThread` cannot provide.  This module
is the subprocess entry point::

    python -m repro.testing.chaos_server WAL_DIR [PORT] [CHECKPOINT_EVERY]
        [RETAIN_RESULTS]

It hosts a durable server (``fsync_every=1``, so every acked ingest is
on disk and resume arithmetic is exact), prints ``PORT <n>`` on stdout
once listening, then sleeps until killed.  ``RETAIN_RESULTS`` sizes the
per-subscription retained-output window for ``attach`` replay — the
router's fleet recovery depends on it.

:class:`WorkerFleet` spawns N of these as the worker tier behind a
:class:`~repro.server.router.PulseRouter`: each worker gets its own WAL
directory and a pinned port, so ``kill(i)`` + ``restart(i)`` brings the
same shard back at the same address with its recovered state — the
exact outage the router's merge edge must ride through.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

from ..server.server import ServerConfig, ServerThread

#: Default per-subscription retained-output window for fleet workers.
#: Must cover one in-flight run's outputs (see router docs); runs are
#: bounded by the client's ingest batch, so this is generous.
DEFAULT_RETAIN = 4096


def main(argv: list[str]) -> int:
    if not argv:
        print(
            "usage: chaos_server WAL_DIR [PORT] [CHECKPOINT_EVERY] "
            "[RETAIN_RESULTS]"
        )
        return 2
    wal_dir = argv[0]
    port = int(argv[1]) if len(argv) > 1 else 0
    checkpoint_every = int(argv[2]) if len(argv) > 2 else 7
    retain_results = int(argv[3]) if len(argv) > 3 else 0
    config = ServerConfig(
        port=port,
        wal_dir=wal_dir,
        checkpoint_every=checkpoint_every,
        fsync_every=1,
        retain_results=retain_results,
    )
    with ServerThread(config) as handle:
        print(f"PORT {handle.port}", flush=True)
        # Park until SIGKILLed (or terminated by the parent at test end).
        while True:
            time.sleep(0.5)


class WorkerFleet:
    """Spawn and manage N chaos-server worker processes.

    Each worker owns ``<base_dir>/worker<i>`` as its WAL directory and
    keeps its first ephemeral port for life: a restart re-binds the
    same address, which is what lets the router's bounded reconnect
    find the recovered shard without any re-addressing protocol.
    """

    def __init__(
        self,
        num_workers: int,
        base_dir: str,
        checkpoint_every: int = 7,
        retain_results: int = DEFAULT_RETAIN,
        startup_timeout_s: float = 30.0,
    ):
        if num_workers < 1:
            raise ValueError("need at least one worker")
        self.num_workers = num_workers
        self.base_dir = base_dir
        self.checkpoint_every = checkpoint_every
        self.retain_results = retain_results
        self.startup_timeout_s = startup_timeout_s
        self._procs: list[subprocess.Popen | None] = [None] * num_workers
        #: ``(host, port)`` per worker, fixed after :meth:`start`.
        self.addrs: list[tuple[str, int]] = []

    # ------------------------------------------------------------------
    def _spawn(self, index: int, port: int) -> subprocess.Popen:
        wal_dir = os.path.join(self.base_dir, f"worker{index}")
        os.makedirs(wal_dir, exist_ok=True)
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..")
        env["PYTHONPATH"] = os.path.abspath(src) + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.testing.chaos_server",
                wal_dir,
                str(port),
                str(self.checkpoint_every),
                str(self.retain_results),
            ],
            stdout=subprocess.PIPE,
            env=env,
            text=True,
        )
        assert proc.stdout is not None
        deadline = time.monotonic() + self.startup_timeout_s
        line = ""
        while time.monotonic() < deadline:
            line = proc.stdout.readline()
            if line.startswith("PORT "):
                break
            if not line and proc.poll() is not None:
                raise RuntimeError(
                    f"worker {index} exited with {proc.returncode} "
                    f"before reporting a port"
                )
        else:
            proc.kill()
            raise RuntimeError(f"worker {index} did not report a port")
        actual = int(line.split()[1])
        if index < len(self.addrs):
            self.addrs[index] = ("127.0.0.1", actual)
        else:
            self.addrs.append(("127.0.0.1", actual))
        return proc

    def start(self) -> list[tuple[str, int]]:
        for index in range(self.num_workers):
            self._procs[index] = self._spawn(index, port=0)
        return list(self.addrs)

    def kill(self, index: int) -> None:
        """SIGKILL one worker — no cleanup, no WAL close."""
        proc = self._procs[index]
        if proc is not None:
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
            self._procs[index] = None

    def restart(self, index: int) -> None:
        """Bring a killed worker back on its original port/WAL dir."""
        if self._procs[index] is not None:
            raise RuntimeError(f"worker {index} is still running")
        port = self.addrs[index][1]
        self._procs[index] = self._spawn(index, port=port)

    def stop(self) -> None:
        for index, proc in enumerate(self._procs):
            if proc is None:
                continue
            proc.terminate()
            try:
                proc.wait(timeout=15)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=15)
            self._procs[index] = None

    def __enter__(self) -> "WorkerFleet":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
