"""Synthetic NYSE-like trade feed.

The paper replays NYSE TAQ trades from January 2006 (proprietary data we
cannot redistribute or access).  This generator reproduces the features
the MACD query depends on: a per-symbol price process that is noisy but
locally trending — geometric random walk with regime-switching drift,
quantized to a tick size — with the TAQ trade schema
``time, symbol, price, qty``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..engine.tuples import Schema, StreamTuple

SCHEMA = Schema(
    attributes=("time", "symbol", "price", "qty"),
    key_fields=("symbol",),
)

#: A handful of familiar ticker names for readable examples.
_DEFAULT_NAMES = (
    "ibm", "ge", "xom", "msft", "wmt", "pfe", "jpm", "mo", "pg", "jnj",
)


@dataclass(frozen=True)
class NyseConfig:
    """Generator parameters.

    Parameters
    ----------
    num_symbols:
        Distinct stock symbols (trades round-robin across them).
    rate:
        Aggregate trade rate in tuples/second.
    volatility:
        Per-second relative price volatility of the random walk.
    drift_period:
        Mean seconds between drift regime changes (trend flips) — this
        controls how often the MACD query's short average crosses the
        long average.
    tick:
        Price quantization (one cent).
    base_price:
        Initial price scale.
    seed:
        RNG seed.
    """

    num_symbols: int = 10
    rate: float = 3000.0
    volatility: float = 1e-4
    drift_period: float = 30.0
    tick: float = 0.01
    base_price: float = 80.0
    seed: int = 11


class NyseTradeGenerator:
    """Per-symbol regime-switching geometric random walk."""

    def __init__(self, config: NyseConfig = NyseConfig()):
        self.config = config
        self._rng = np.random.default_rng(config.seed)
        n = config.num_symbols
        self._symbols = [
            _DEFAULT_NAMES[i] if i < len(_DEFAULT_NAMES) else f"sym{i}"
            for i in range(n)
        ]
        self._price = config.base_price * self._rng.uniform(0.5, 2.0, size=n)
        self._drift = self._random_drifts(n)
        self._time = 0.0
        self._next_symbol = 0

    def _random_drifts(self, n: int) -> np.ndarray:
        # Relative drift per second, strong enough to dominate noise over
        # the MACD windows.
        return self._rng.uniform(-5e-4, 5e-4, size=n)

    @property
    def symbols(self) -> list[str]:
        return list(self._symbols)

    def tuples(self, count: int) -> Iterator[StreamTuple]:
        cfg = self.config
        dt = 1.0 / cfg.rate
        per_symbol_dt = cfg.num_symbols / cfg.rate
        flip_prob = per_symbol_dt / cfg.drift_period
        for _ in range(count):
            i = self._next_symbol
            self._next_symbol = (self._next_symbol + 1) % cfg.num_symbols
            if self._rng.random() < flip_prob:
                self._drift[i] = self._random_drifts(1)[0]
            shock = self._rng.normal(0.0, cfg.volatility * np.sqrt(per_symbol_dt))
            self._price[i] *= 1.0 + self._drift[i] * per_symbol_dt + shock
            price = round(self._price[i] / cfg.tick) * cfg.tick
            yield StreamTuple(
                {
                    "time": self._time,
                    "symbol": self._symbols[i],
                    "price": float(price),
                    "qty": int(self._rng.integers(100, 1000)),
                }
            )
            self._time += dt
