"""Workload generators and trace replay.

Synthetic substitutes for the paper's data sources (see DESIGN.md):
moving objects for the microbenchmarks, an NYSE-like trade feed for the
MACD experiments, an AIS-like vessel feed for the "following" query.
"""

from .ais import AisConfig, AisVesselGenerator
from .moving_objects import MovingObjectConfig, MovingObjectGenerator
from .nyse import NyseConfig, NyseTradeGenerator
from .replay import read_trace, take, write_trace

__all__ = [
    "AisConfig",
    "AisVesselGenerator",
    "MovingObjectConfig",
    "MovingObjectGenerator",
    "NyseConfig",
    "NyseTradeGenerator",
    "read_trace",
    "take",
    "write_trace",
]
