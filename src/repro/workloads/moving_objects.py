"""Synthetic moving-object workload generator (Section V-A).

The paper's microbenchmarks use a generator that "simulates a moving
object, exposing controls to vary stream rates, attribute values' rates
of change, and parameters relating to model fitting", with schema
``x, y, vx, vy``.  Objects move with piecewise-constant velocity; the
*model fit* control is ``tuples_per_segment``: how many consecutive
samples a single linear model describes exactly (velocity changes every
that many samples, optionally with added noise so fits are approximate).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..core.polynomial import Polynomial
from ..core.segment import Segment
from ..engine.tuples import Schema, StreamTuple

SCHEMA = Schema(
    attributes=("time", "id", "x", "y", "vx", "vy"),
    key_fields=("id",),
)


@dataclass(frozen=True)
class MovingObjectConfig:
    """Generator parameters.

    Parameters
    ----------
    num_objects:
        Distinct object keys (round-robin sampled).
    rate:
        Aggregate stream rate in tuples/second across all objects.
    tuples_per_segment:
        Samples between velocity changes per object — the paper's model
        expressiveness knob (Fig. 5's x-axis).
    speed:
        Velocity magnitude scale (units/second).
    noise:
        Standard deviation of additive position noise; non-zero noise
        makes models approximate, exercising validation.
    seed:
        RNG seed for reproducibility.
    """

    num_objects: int = 10
    rate: float = 1000.0
    tuples_per_segment: float = 100.0
    speed: float = 10.0
    noise: float = 0.0
    seed: int = 7


class MovingObjectGenerator:
    """Generates tuples and (ground-truth) segments for moving objects."""

    def __init__(self, config: MovingObjectConfig = MovingObjectConfig()):
        self.config = config
        self._rng = np.random.default_rng(config.seed)
        n = config.num_objects
        self._pos = self._rng.uniform(-1000.0, 1000.0, size=(n, 2))
        self._vel = self._random_velocities(n)
        self._samples_since_change = np.zeros(n, dtype=int)
        self._time = 0.0
        self._next_obj = 0

    def _random_velocities(self, n: int) -> np.ndarray:
        angles = self._rng.uniform(0.0, 2.0 * math.pi, size=n)
        speeds = self._rng.uniform(0.5, 1.5, size=n) * self.config.speed
        return np.stack([speeds * np.cos(angles), speeds * np.sin(angles)], axis=1)

    @property
    def dt(self) -> float:
        """Time between consecutive tuples (any object)."""
        return 1.0 / self.config.rate

    def tuples(self, count: int) -> Iterator[StreamTuple]:
        """Generate ``count`` tuples, round-robin over objects."""
        cfg = self.config
        per_object_dt = cfg.num_objects / cfg.rate
        for _ in range(count):
            obj = self._next_obj
            self._next_obj = (self._next_obj + 1) % cfg.num_objects
            # Advance this object's state by its inter-sample gap.
            self._pos[obj] += self._vel[obj] * per_object_dt
            self._samples_since_change[obj] += 1
            if self._samples_since_change[obj] >= cfg.tuples_per_segment:
                self._vel[obj] = self._random_velocities(1)[0]
                self._samples_since_change[obj] = 0
            noise = (
                self._rng.normal(0.0, cfg.noise, size=2)
                if cfg.noise > 0
                else (0.0, 0.0)
            )
            yield StreamTuple(
                {
                    "time": self._time,
                    "id": f"obj{obj}",
                    "x": float(self._pos[obj, 0] + noise[0]),
                    "y": float(self._pos[obj, 1] + noise[1]),
                    "vx": float(self._vel[obj, 0]),
                    "vy": float(self._vel[obj, 1]),
                }
            )
            self._time += self.dt

    def segments(self, count: int) -> Iterator[Segment]:
        """Ground-truth linear segments (models the tuples exactly when
        ``noise == 0``): one per object per velocity epoch.

        ``count`` is the number of segments generated, round-robin over
        objects; each segment covers ``tuples_per_segment`` samples'
        worth of time for its object.
        """
        cfg = self.config
        per_object_dt = cfg.num_objects / cfg.rate
        epoch = cfg.tuples_per_segment * per_object_dt
        # Track per-object epoch starts independently of tuple generation.
        starts = {i: 0.0 for i in range(cfg.num_objects)}
        pos = self._rng.uniform(-1000.0, 1000.0, size=(cfg.num_objects, 2))
        for i in range(count):
            obj = i % cfg.num_objects
            t0 = starts[obj]
            vel = self._random_velocities(1)[0]
            x = Polynomial([pos[obj, 0] - vel[0] * t0, vel[0]])
            y = Polynomial([pos[obj, 1] - vel[1] * t0, vel[1]])
            yield Segment(
                key=(f"obj{obj}",),
                t_start=t0,
                t_end=t0 + epoch,
                models={"x": x, "y": y},
                constants={"id": f"obj{obj}"},
            )
            pos[obj] += vel * epoch
            starts[obj] = t0 + epoch
