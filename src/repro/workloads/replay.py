"""Trace replay utilities: persist and replay tuple streams.

The paper's dataset experiments replay traces "from disk into Pulse" at
controlled rates; these helpers write generated workloads to CSV traces
and read them back, so benchmark runs are reproducible and the
generation cost is excluded from the measured path.
"""

from __future__ import annotations

import csv
import math
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence

from ..core.errors import TraceError
from ..engine.metrics import get_counter
from ..engine.tuples import StreamTuple


def write_trace(
    path: str | Path, tuples: Iterable[StreamTuple], fields: Sequence[str]
) -> int:
    """Write tuples to a CSV trace; returns the row count.

    A tuple lacking one of the declared ``fields`` raises a typed
    :class:`TraceError` carrying the 1-based row number and the missing
    field name.  Output written before the bad tuple is flushed to disk
    deterministically first — the trace on disk is always exactly the
    header plus every complete row that preceded the failure, so a
    partial export is resumable and never ends mid-row.
    """
    path = Path(path)
    count = 0
    with path.open("w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(fields)
        for tup in tuples:
            try:
                row = [tup[field] for field in fields]
            except KeyError as exc:
                f.flush()
                missing = exc.args[0] if exc.args else "?"
                raise TraceError(
                    f"tuple missing declared field {missing!r}",
                    row=count + 1,
                    field=str(missing),
                ) from exc
            writer.writerow(row)
            count += 1
    return count


def read_trace(
    path: str | Path,
    numeric_fields: Sequence[str] | None = None,
    strict: bool = False,
    on_skip: Callable[[int, list[str], Exception], None] | None = None,
) -> Iterator[StreamTuple]:
    """Replay a CSV trace written by :func:`write_trace`.

    ``numeric_fields`` lists columns parsed as floats; by default every
    column except ``id`` and ``symbol`` is numeric.

    Real traces carry damage: truncated rows, unparsable numbers, field
    counts that disagree with the header.  By default such rows are
    *skipped* — counted in the ``replay.skipped_rows`` metrics counter
    and reported to ``on_skip(row_number, row, error)`` when given — so
    one bad row cannot kill a replay mid-run.  With ``strict=True``
    the first malformed row raises a typed :class:`TraceError` carrying
    the 1-based data-row number instead.

    Non-finite numerics (``nan`` / ``inf`` / ``-inf``) *parse* under
    ``float()`` but poison segment fitting downstream of the solver's
    coefficient guard, so they count as damage too: skipped (and
    additionally counted in ``replay.nonfinite_rows``) by default,
    :class:`TraceError` under ``strict=True``.  The network ingest path
    applies the same finite-check in
    :func:`repro.server.protocol.validate_tuple`.
    """
    path = Path(path)
    skipped = get_counter("replay.skipped_rows")
    nonfinite = get_counter("replay.nonfinite_rows")
    with path.open(newline="") as f:
        reader = csv.reader(f)
        try:
            header = next(reader)
        except StopIteration:
            raise TraceError(f"trace {path} has no header row")
        if numeric_fields is None:
            numeric = [h for h in header if h not in ("id", "symbol")]
        else:
            numeric = list(numeric_fields)
            unknown = [n for n in numeric if n not in header]
            if unknown:
                # A numeric field the header does not declare is a
                # configuration error, not row damage: raise in both
                # modes rather than silently parsing nothing.
                raise TraceError(
                    f"numeric fields {unknown} not in trace header "
                    f"{header}"
                )
        numeric_set = set(numeric)
        for number, row in enumerate(reader, start=1):
            if not row:
                continue  # blank line, not data damage
            finite_damage = False
            try:
                if len(row) != len(header):
                    raise ValueError(
                        f"expected {len(header)} fields, got {len(row)}"
                    )
                values: dict[str, object] = {}
                for field, raw in zip(header, row):
                    if field in numeric_set:
                        parsed = float(raw)
                        if not math.isfinite(parsed):
                            finite_damage = True
                            raise ValueError(
                                f"non-finite value {raw!r} in "
                                f"field {field!r}"
                            )
                        values[field] = parsed
                    else:
                        values[field] = raw
            except (ValueError, IndexError) as exc:
                if strict:
                    raise TraceError(
                        f"malformed trace row: {exc}", row=number
                    ) from exc
                skipped.bump()
                if finite_damage:
                    nonfinite.bump()
                if on_skip is not None:
                    on_skip(number, row, exc)
                continue
            yield StreamTuple(values)


def take(iterator: Iterable, count: int) -> list:
    """Materialize the first ``count`` items."""
    out = []
    for item in iterator:
        out.append(item)
        if len(out) >= count:
            break
    return out
