"""Trace replay utilities: persist and replay tuple streams.

The paper's dataset experiments replay traces "from disk into Pulse" at
controlled rates; these helpers write generated workloads to CSV traces
and read them back, so benchmark runs are reproducible and the
generation cost is excluded from the measured path.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from ..engine.tuples import StreamTuple


def write_trace(
    path: str | Path, tuples: Iterable[StreamTuple], fields: Sequence[str]
) -> int:
    """Write tuples to a CSV trace; returns the row count."""
    path = Path(path)
    count = 0
    with path.open("w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(fields)
        for tup in tuples:
            writer.writerow([tup[field] for field in fields])
            count += 1
    return count


def read_trace(
    path: str | Path, numeric_fields: Sequence[str] | None = None
) -> Iterator[StreamTuple]:
    """Replay a CSV trace written by :func:`write_trace`.

    ``numeric_fields`` lists columns parsed as floats; by default every
    column except ``id`` and ``symbol`` is numeric.
    """
    path = Path(path)
    with path.open(newline="") as f:
        reader = csv.reader(f)
        header = next(reader)
        if numeric_fields is None:
            numeric = [h for h in header if h not in ("id", "symbol")]
        else:
            numeric = list(numeric_fields)
        numeric_set = set(numeric)
        for row in reader:
            values: dict[str, object] = {}
            for field, raw in zip(header, row):
                values[field] = float(raw) if field in numeric_set else raw
            yield StreamTuple(values)


def take(iterator: Iterable, count: int) -> list:
    """Materialize the first ``count`` items."""
    out = []
    for item in iterator:
        out.append(item)
        if len(out) >= count:
            break
    return out
