"""Synthetic AIS-like vessel trajectory feed.

The paper's second real dataset is the US Coast Guard's Automatic
Identification System feed (vessel positions and velocities over six
days of March 2006) — not redistributable.  AIS reports are literally
the model class Pulse assumes: position plus velocity, i.e. a local
linear model.  The generator produces piecewise-constant-velocity vessel
trajectories with the AIS schema ``id, time, x, vx, y, vy`` (positions
in meters on a local tangent plane), and *injects follower pairs* —
vessels steaming within a controllable distance of a leader — so the
"following" query selects a known subset.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..engine.tuples import Schema, StreamTuple

SCHEMA = Schema(
    attributes=("time", "id", "x", "vx", "y", "vy"),
    key_fields=("id",),
)


@dataclass(frozen=True)
class AisConfig:
    """Generator parameters.

    Parameters
    ----------
    num_vessels:
        Total vessels (followers included).
    follower_pairs:
        Number of (leader, follower) pairs; follower ``k`` shadows leader
        ``k`` at ``follow_distance`` with small jitter.
    rate:
        Aggregate report rate in tuples/second.
    follow_distance:
        Mean separation of a follower from its leader (meters); set
        below the query threshold so pairs are detected.
    course_period:
        Mean seconds between course changes.
    speed:
        Vessel speed scale (meters/second; ~10 kn).
    seed:
        RNG seed.
    """

    num_vessels: int = 20
    follower_pairs: int = 3
    rate: float = 1000.0
    follow_distance: float = 500.0
    course_period: float = 120.0
    speed: float = 5.0
    seed: int = 13

    def __post_init__(self) -> None:
        if 2 * self.follower_pairs > self.num_vessels:
            raise ValueError("not enough vessels for the follower pairs")


class AisVesselGenerator:
    """Piecewise-constant-velocity vessels with injected follower pairs."""

    def __init__(self, config: AisConfig = AisConfig()):
        self.config = config
        self._rng = np.random.default_rng(config.seed)
        n = config.num_vessels
        self._pos = self._rng.uniform(-50_000.0, 50_000.0, size=(n, 2))
        self._vel = self._random_velocities(n)
        self._time = 0.0
        self._next_vessel = 0
        # Pair follower i with leader i for i < follower_pairs: the
        # follower starts near its leader and copies its velocity.
        for k in range(config.follower_pairs):
            leader, follower = self._pair(k)
            offset = self._rng.normal(0.0, 0.2, size=2)
            offset = (
                offset / max(np.linalg.norm(offset), 1e-9)
            ) * config.follow_distance
            self._pos[follower] = self._pos[leader] + offset
            self._vel[follower] = self._vel[leader]

    def _pair(self, k: int) -> tuple[int, int]:
        return 2 * k, 2 * k + 1

    @property
    def follower_pairs(self) -> list[tuple[str, str]]:
        """Ids of the injected (leader, follower) pairs."""
        return [
            (f"vessel{2 * k}", f"vessel{2 * k + 1}")
            for k in range(self.config.follower_pairs)
        ]

    def _random_velocities(self, n: int) -> np.ndarray:
        angles = self._rng.uniform(0.0, 2.0 * math.pi, size=n)
        speeds = self._rng.uniform(0.5, 1.5, size=n) * self.config.speed
        return np.stack(
            [speeds * np.cos(angles), speeds * np.sin(angles)], axis=1
        )

    def tuples(self, count: int) -> Iterator[StreamTuple]:
        cfg = self.config
        dt = 1.0 / cfg.rate
        per_vessel_dt = cfg.num_vessels / cfg.rate
        turn_prob = per_vessel_dt / cfg.course_period
        followers = {f: l for l, f in (self._pair(k) for k in range(cfg.follower_pairs))}
        for _ in range(count):
            i = self._next_vessel
            self._next_vessel = (self._next_vessel + 1) % cfg.num_vessels
            if i in followers:
                # Followers track their leader's velocity with jitter.
                leader = followers[i]
                self._vel[i] = self._vel[leader] + self._rng.normal(
                    0.0, 0.02, size=2
                )
            elif self._rng.random() < turn_prob:
                self._vel[i] = self._random_velocities(1)[0]
            self._pos[i] += self._vel[i] * per_vessel_dt
            yield StreamTuple(
                {
                    "time": self._time,
                    "id": f"vessel{i}",
                    "x": float(self._pos[i, 0]),
                    "vx": float(self._vel[i, 0]),
                    "y": float(self._pos[i, 1]),
                    "vy": float(self._vel[i, 1]),
                }
            )
            self._time += dt
