"""Parallel solve dispatch: shipping coefficient batches to shard workers.

The sharded runtime splits one drain round's predicted root work by key
shard (:mod:`repro.engine.sharding`), ships each shard's rows to its
worker as contiguous float64 ndarrays, and merges the returned root
arrays into a parent-side :class:`~repro.core.solve_cache.RootCache`.
Item processing then runs *unchanged and in arrival order*; the only
difference from the serial path is that the root finder's single entry
point (:func:`~repro.core.batch_solver.real_roots_batch`, intercepted
via :func:`~repro.core.batch_solver.set_roots_dispatch`) is served from
the pre-computed cache instead of recomputing.

Determinism argument (the parity contract the tests enforce):

* workers run :func:`~repro.core.batch_solver.real_roots_rows` — the
  *same* function the parent's kernel calls — and its per-row results
  are partition-invariant (stacked eigensolves are per-matrix, the
  Newton polish element-wise), so a worker-computed root array is
  bit-identical to what the parent would compute inline;
* cached arrays only replace the root-finding stage; sign tests,
  boolean structure, caching and output construction all still run in
  the parent, per item, in the original arrival order;
* rows the priming pass failed to predict (or whose worker solve
  failed) fall through to the in-parent kernel, so under-prediction is
  always safe.  Worker failures are typed and *never cached* — a
  poisoned row re-fails identically through the parent path, keeping
  failure behaviour (and breaker state) exactly serial.

Executor model: one **single-worker pool per shard** (not one shared
pool) so consecutive rounds of the same shard land on the same process
and hit its warm :func:`~repro.core.solve_cache.worker_root_cache`.
:class:`InlineExecutor` is the same-process fallback used for
``num_shards == 1``, ``parallel=False`` (debugging — one process, same
code path), and environments where forking is unavailable.
"""

from __future__ import annotations

import concurrent.futures
import os
from typing import Callable, Hashable, Sequence

import numpy as np

from ..core.batch_solver import (
    SOLVER_CONFIG,
    real_roots_batch,
    set_roots_dispatch,
    solve_rows_worker,
)
from ..core.errors import SolverError
from ..core.polynomial import Polynomial
from ..core.solve_cache import CacheStats, RootCache
from . import shm_transport, tracing
from .metrics import absorb_cache_stats, get_counter, get_histogram
from .sharding import ShardRouter

#: One predicted root query: trimmed ascending coefficients + domain.
RootQuery = tuple[tuple[float, ...], float, float]


class _ImmediateFuture:
    """A completed future: :class:`InlineExecutor`'s return type."""

    __slots__ = ("_result", "_error")

    def __init__(self, result=None, error: BaseException | None = None):
        self._result = result
        self._error = error

    def result(self, timeout=None):
        if self._error is not None:
            raise self._error
        return self._result


class InlineExecutor:
    """Executes submissions synchronously in the calling process.

    The debug/fallback twin of a process pool: same submit/result
    surface, zero processes.  Worker functions hit this process's
    globals (e.g. the per-process root cache), which is exactly what a
    single-shard run wants.
    """

    def submit(self, fn: Callable, /, *args, **kwargs) -> _ImmediateFuture:
        try:
            return _ImmediateFuture(result=fn(*args, **kwargs))
        except BaseException as exc:  # mirrored into .result(), like a pool
            return _ImmediateFuture(error=exc)

    def shutdown(self, wait: bool = True, cancel_futures: bool = False) -> None:
        return None


class ParallelSolveDispatcher:
    """Ships per-shard coefficient batches to workers; serves roots back.

    Parameters
    ----------
    num_shards:
        Key-partition width.  ``1`` always runs inline (the serial
        baseline with a priming cache in front).
    parallel:
        ``True`` backs shards 0..N-1 with one single-worker
        ``ProcessPoolExecutor`` each; ``False`` runs every shard inline
        in this process (same code path, no processes — the debug mode).
        ``"auto"`` (the default) picks pools only when the host has more
        than one CPU: on a single core a process per shard is pure IPC
        overhead, while the in-process executors still deliver the
        cross-item batch amortization (one stacked eigensolve sweep per
        shard per round instead of a solver call per row).  Pools that
        cannot be created (no fork support) degrade to inline per
        shard, recorded in :attr:`inline_shards`.
    root_cache_size:
        Bound on the parent-side merged root store.
    transport:
        ``"shm"`` (the default) ships pool-shard row batches through
        ``multiprocessing.shared_memory`` segments — the parent packs
        contiguous blocks once, workers attach zero-copy, roots come
        back through a shared result arena, and only scalar bookkeeping
        crosses the pickle boundary.  ``"pickle"`` forces the legacy
        ndarray-payload submits (the A/B baseline).  Inline shards
        always use the in-process payload path: same address space,
        nothing to ship.  A host where segment allocation fails
        degrades the dispatcher to pickle transport permanently (the
        round that hit the failure still completes).
    """

    def __init__(
        self,
        num_shards: int,
        parallel: "bool | str" = "auto",
        root_cache_size: int = 65536,
        transport: str = "shm",
    ):
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        if transport not in ("shm", "pickle"):
            raise ValueError(
                f"transport must be 'shm' or 'pickle', got {transport!r}"
            )
        if parallel == "auto":
            parallel = (os.cpu_count() or 1) > 1
        self.num_shards = num_shards
        self.parallel = bool(parallel) and num_shards > 1
        self.transport = transport
        #: Set when a segment allocation failed; sticks for the run.
        self._shm_broken = False
        #: Shard rounds shipped via shared memory / bytes they mapped.
        self.shm_rounds = 0
        self.shm_bytes_shipped = 0
        self.router = ShardRouter(num_shards)
        self._root_cache = RootCache(maxsize=root_cache_size)
        self._executors: list[object | None] = [None] * num_shards
        #: Shards that fell back to inline execution (pool unavailable).
        self.inline_shards: set[int] = set()
        #: Aggregated per-call worker cache deltas (all shards).  The
        #: ``entries`` component is kept at 0 here — population is a
        #: level, not a delta — and tracked per shard instead.
        self.worker_stats = CacheStats()
        self._worker_entries: dict[int, int] = {}
        self.rows_primed = 0
        self.rows_dispatched = 0
        self.worker_failures = 0
        self._previous_dispatch: object = _UNSET
        self._closed = False

    # ------------------------------------------------------------------
    # executors
    # ------------------------------------------------------------------
    def _executor(self, shard: int):
        found = self._executors[shard]
        if found is not None:
            return found
        if self.parallel and shard not in self.inline_shards:
            try:
                found = concurrent.futures.ProcessPoolExecutor(max_workers=1)
            except (OSError, PermissionError, NotImplementedError):
                self.inline_shards.add(shard)
                found = InlineExecutor()
        else:
            if self.parallel is False:
                self.inline_shards.add(shard)
            found = InlineExecutor()
        self._executors[shard] = found
        return found

    # ------------------------------------------------------------------
    # priming: batch root work through the shard workers
    # ------------------------------------------------------------------
    def prime(self, queries_by_shard: dict[int, Sequence[RootQuery]]) -> int:
        """Solve a round's predicted root queries shard by shard.

        ``queries_by_shard`` maps shard index to that shard's predicted
        ``(coeffs, lo, hi)`` rows.  Rows already in the parent root
        store are skipped; the rest go out as one ndarray payload per
        shard, concurrently across shards.  Returns the number of rows
        shipped.

        Under the incremental solver knob the operators prune upstream:
        ``prime_tasks`` / ``prime_round`` never predict rows whose
        solution store already covers the probe (counted as
        ``delta.store.prime_skips``), so only genuine delta rows reach
        this dispatch — the payload shrinks with no change here.
        """
        if self._closed:
            raise RuntimeError("dispatcher is closed")
        observe = tracing.observability_enabled()
        submissions: list[tuple[int, object, list, tuple | None]] = []
        for shard in sorted(queries_by_shard):
            rows = queries_by_shard[shard]
            if not rows:
                continue
            fresh: list[RootQuery] = []
            keys: list[object] = []
            seen: set = set()
            for coeffs, lo, hi in rows:
                key = RootCache.key(coeffs, lo, hi)
                if key in seen or key in self._root_cache:
                    continue
                seen.add(key)
                keys.append(key)
                fresh.append((tuple(coeffs), lo, hi))
            if not fresh:
                continue
            future, segments = self._submit(shard, fresh, observe)
            submissions.append((shard, future, keys, segments))
            self.rows_dispatched += len(fresh)

        shipped = 0
        for shard, future, keys, segments in submissions:
            try:
                try:
                    out = future.result()
                except concurrent.futures.BrokenExecutor:
                    # The shard's worker died (e.g. OOM-killed).
                    # Degrade this shard to inline for the rest of the
                    # run; the unprimed rows simply solve in-parent.
                    self.inline_shards.add(shard)
                    self._executors[shard] = None
                    continue
                if segments is not None:
                    # Roots came back through the shared result arena;
                    # only bookkeeping rode the future.
                    offsets, flat = segments[1].read()
                else:
                    offsets = out["offsets"]
                    flat = out["roots"]
            finally:
                # Parent owns the segment lifecycle: close + unlink on
                # every exit path so a dead worker, a broken pool or a
                # read error cannot strand /dev/shm segments.
                if segments is not None:
                    segments[0].destroy()
                    segments[1].destroy()
            failed = {idx for idx, _, _ in out["failures"]}
            self.worker_failures += len(failed)
            for i, key in enumerate(keys):
                if i in failed:
                    continue  # never cache failures
                roots = tuple(
                    float(r) for r in flat[offsets[i] : offsets[i + 1]]
                )
                self._root_cache.put(key, roots)
                shipped += 1
            reported = out["cache_stats"]
            self._worker_entries[shard] = int(reported.get("entries", 0))
            delta = CacheStats(
                hits=reported["hits"],
                misses=reported["misses"],
                evictions=reported["evictions"],
            )
            self.worker_stats = self.worker_stats + delta
            absorb_cache_stats("root_cache.worker", delta)
            timings = out.get("timings")
            if timings:
                # Same fixed buckets on both sides, so worker snapshots
                # fold exactly into the parent-side histograms.
                get_histogram("parallel.worker_solve_seconds").merge(
                    timings["solve_seconds"]
                )
                get_histogram("parallel.worker_eigensolve_seconds").merge(
                    timings["eigensolve_seconds"]
                )
        self.rows_primed += shipped
        return shipped

    def _submit(
        self, shard: int, rows: Sequence[RootQuery], observe: bool
    ) -> tuple[object, tuple | None]:
        """Ship one shard round; returns ``(future, segments_or_None)``.

        Pool shards use the shared-memory transport (unless configured
        or degraded to pickle); inline shards always take the direct
        payload path — same process, nothing to serialize either way.
        """
        executor = self._executor(shard)
        lengths, lo, hi, coeff_matrix = self._pack_arrays(rows)
        if (
            self.transport == "shm"
            and not self._shm_broken
            and not isinstance(executor, InlineExecutor)
        ):
            try:
                request, arena = shm_transport.pack_round(
                    lengths, lo, hi, coeff_matrix
                )
            except (OSError, ValueError):
                # No usable shared memory on this host/container:
                # degrade to pickled payloads for the rest of the run.
                self._shm_broken = True
            else:
                meta = {
                    "request": request.meta(),
                    "result": arena.meta(),
                    "root_budget": SOLVER_CONFIG.max_roots_per_row,
                    "cache": True,
                    "shard": shard,
                    "observe": observe,
                }
                self.shm_rounds += 1
                nbytes = request.nbytes + arena.nbytes
                self.shm_bytes_shipped += nbytes
                get_counter("parallel.shm_rounds").bump()
                get_counter("parallel.shm_bytes_shipped").bump(nbytes)
                future = executor.submit(
                    shm_transport.solve_rows_shm_worker, meta
                )
                return future, (request, arena)
        payload = {
            "coeffs": coeff_matrix,
            "lengths": lengths,
            "lo": lo,
            "hi": hi,
            "root_budget": SOLVER_CONFIG.max_roots_per_row,
            "cache": True,
            "shard": shard,
        }
        if observe:
            payload["observe"] = True
        return executor.submit(solve_rows_worker, payload), None

    @staticmethod
    def _pack_arrays(
        rows: Sequence[RootQuery],
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Pack rows as contiguous arrays (both transports' wire shape)."""
        n = len(rows)
        lengths = np.fromiter(
            (len(coeffs) for coeffs, _, _ in rows), dtype=np.int64, count=n
        )
        width = int(lengths.max()) if n else 1
        coeff_matrix = np.zeros((n, width))
        for i, (coeffs, _, _) in enumerate(rows):
            coeff_matrix[i, : len(coeffs)] = coeffs
        lo = np.fromiter((lo for _, lo, _ in rows), dtype=float, count=n)
        hi = np.fromiter((hi for _, _, hi in rows), dtype=float, count=n)
        return lengths, lo, hi, coeff_matrix

    # ------------------------------------------------------------------
    # the roots dispatch served to the kernel
    # ------------------------------------------------------------------
    def dispatch_roots(
        self,
        items: Sequence[tuple[Polynomial, float, float]],
        failures: dict[int, SolverError] | None = None,
    ) -> list[list[float]]:
        """Drop-in for :func:`~repro.core.batch_solver.real_roots_batch`.

        Primed rows are served from the parent root store; everything
        else computes through the in-parent kernel (identical code
        path).  Failure semantics mirror the kernel's exactly: failures
        are never cached, so a failing row always reaches the kernel and
        raises/records precisely as the serial path would — and because
        successful rows cannot raise, thinning the kernel's input to the
        misses preserves the raise order among failing rows too.
        """
        results: list[list[float] | None] = [None] * len(items)
        misses: list[tuple[Polynomial, float, float]] = []
        miss_idx: list[int] = []
        miss_keys: list[object] = []
        cache = self._root_cache
        for i, (poly, lo, hi) in enumerate(items):
            key = RootCache.key(poly.coeffs, lo, hi)
            hit = cache.get(key)
            if hit is not None:
                results[i] = list(hit)
            else:
                misses.append((poly, lo, hi))
                miss_idx.append(i)
                miss_keys.append(key)
        if misses:
            sub: dict[int, SolverError] | None = (
                None if failures is None else {}
            )
            solved = real_roots_batch(misses, sub)
            for slot, i in enumerate(miss_idx):
                if sub and slot in sub:
                    failures[i] = sub[slot]  # type: ignore[index]
                    results[i] = []
                    continue
                results[i] = solved[slot]
                cache.put(miss_keys[slot], solved[slot])
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # kernel hook lifecycle
    # ------------------------------------------------------------------
    def activate(self) -> None:
        """Install :meth:`dispatch_roots` as the kernel's roots dispatch."""
        if self._previous_dispatch is _UNSET:
            self._previous_dispatch = set_roots_dispatch(self.dispatch_roots)

    def deactivate(self) -> None:
        """Restore whatever dispatch was installed before :meth:`activate`."""
        if self._previous_dispatch is not _UNSET:
            set_roots_dispatch(self._previous_dispatch)  # type: ignore[arg-type]
            self._previous_dispatch = _UNSET

    # ------------------------------------------------------------------
    # observation / shutdown
    # ------------------------------------------------------------------
    def root_store_stats(self) -> CacheStats:
        return self._root_cache.snapshot()

    def stats(self) -> dict[str, object]:
        parent = self._root_cache.snapshot()
        return {
            "num_shards": self.num_shards,
            "parallel": self.parallel,
            "transport": (
                "pickle"
                if self.transport == "pickle" or self._shm_broken
                else "shm"
            ),
            "shm_rounds": self.shm_rounds,
            "shm_bytes_shipped": self.shm_bytes_shipped,
            "inline_shards": sorted(self.inline_shards),
            "rows_dispatched": self.rows_dispatched,
            "rows_primed": self.rows_primed,
            "worker_failures": self.worker_failures,
            "worker_cache": self.worker_stats.as_dict(),
            "worker_entries": sum(self._worker_entries.values()),
            "parent_root_cache": parent.as_dict(),
        }

    def shard_for_key(self, key: Hashable) -> int:
        return self.router.shard_of(key)

    def shutdown(self) -> None:
        """Deactivate the hook and tear down every shard executor."""
        self.deactivate()
        for i, executor in enumerate(self._executors):
            if executor is not None:
                executor.shutdown(wait=True)
                self._executors[i] = None
        self._closed = True

    def __enter__(self) -> "ParallelSolveDispatcher":
        self.activate()
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


_UNSET = object()
