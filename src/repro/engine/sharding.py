"""Stable key-to-shard assignment and per-shard pending queues.

Pulse's per-key independence (PAPER.md Sections II-B/III-A: every
selective operator solves one ``(query, key)`` equation system at a
time) makes the workload embarrassingly parallel across keys — the same
property DBSP exploits by giving each shard a disjoint key range.  This
module provides the partitioning half of the sharded runtime:

* :func:`shard_of` / :class:`ShardRouter` — a *stable* hash assignment
  of keys to ``N`` shards.  Python's built-in ``hash`` for strings is
  salted per process (``PYTHONHASHSEED``), which would scatter the same
  key to different shards in parent and worker processes; keys are
  instead canonically byte-encoded and hashed with BLAKE2b, so the
  assignment is identical across processes, runs and machines.
* :class:`ShardQueues` — per-shard pending queues with a global arrival
  sequence, so batches drained shard by shard can always be merged back
  into exact arrival order (the determinism contract of the parallel
  dispatcher).
"""

from __future__ import annotations

import struct
from collections import deque
from hashlib import blake2b
from typing import Hashable, Iterable, Iterator, Sequence, TypeVar

T = TypeVar("T")


def canonical_key_bytes(key: Hashable) -> bytes:
    """A stable byte encoding of a stream key.

    Covers the key shapes the runtime produces — strings, numbers, and
    (nested) tuples of them (joins concatenate their sides' key tuples).
    Encodings are prefixed by a type tag and, for containers, a length,
    so distinct keys cannot collide by concatenation (``("ab", "c")``
    vs ``("a", "bc")``).  Unknown types fall back to ``repr``, which is
    stable for value-like objects.
    """
    if key is None:
        return b"n"
    if isinstance(key, bool):  # before int: bool subclasses int
        return b"b1" if key else b"b0"
    if isinstance(key, str):
        data = key.encode("utf-8")
        return b"s" + struct.pack("<q", len(data)) + data
    if isinstance(key, bytes):
        return b"y" + struct.pack("<q", len(key)) + key
    if isinstance(key, int):
        data = str(key).encode("ascii")
        return b"i" + struct.pack("<q", len(data)) + data
    if isinstance(key, float):
        return b"f" + struct.pack("<d", key)
    if isinstance(key, tuple):
        parts = [canonical_key_bytes(item) for item in key]
        return b"t" + struct.pack("<q", len(parts)) + b"".join(parts)
    if isinstance(key, frozenset):
        parts = sorted(canonical_key_bytes(item) for item in key)
        return b"z" + struct.pack("<q", len(parts)) + b"".join(parts)
    data = repr(key).encode("utf-8")
    return b"r" + struct.pack("<q", len(data)) + data


def tuple_key(tup, key_fields: Sequence[str]) -> tuple:
    """The routing key of one (mapping-like) stream tuple.

    Mirrors ``StreamTuple.key`` — a tuple of the key fields' values in
    declaration order — but tolerates missing fields (``None`` slots)
    so the router can assign *any* validated tuple a shard
    deterministically instead of failing mid-batch; the worker's own
    fit boundary still rejects the tuple with a typed count.
    """
    return tuple(tup.get(field) for field in key_fields)


def stable_key_hash(key: Hashable) -> int:
    """A 64-bit process-independent hash of a stream key."""
    digest = blake2b(canonical_key_bytes(key), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def shard_of(key: Hashable, num_shards: int) -> int:
    """The shard owning ``key`` under an ``N``-way partition."""
    if num_shards < 1:
        raise ValueError("num_shards must be at least 1")
    if num_shards == 1:
        return 0
    return stable_key_hash(key) % num_shards


class ShardRouter:
    """An ``N``-way stable key partitioner with a small assignment cache.

    The assignment is pure (:func:`shard_of`), but runtimes route the
    same handful of keys millions of times; memoizing the BLAKE2b digest
    per key keeps routing off the hot path.
    """

    __slots__ = ("num_shards", "_assignments")

    def __init__(self, num_shards: int):
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        self.num_shards = num_shards
        self._assignments: dict[Hashable, int] = {}

    def shard_of(self, key: Hashable) -> int:
        shard = self._assignments.get(key)
        if shard is None:
            shard = shard_of(key, self.num_shards)
            self._assignments[key] = shard
        return shard

    def partition(
        self, items: Iterable[T], key_of
    ) -> list[list[T]]:
        """Split ``items`` into per-shard lists, preserving arrival order
        within each shard."""
        shards: list[list[T]] = [[] for _ in range(self.num_shards)]
        for item in items:
            shards[self.shard_of(key_of(item))].append(item)
        return shards


class KeyOrdinals:
    """First-arrival ordinals for stream keys.

    ``StreamModelBuilder`` iterates its per-key state in insertion
    order, so a single engine's flush tail comes out in *first-arrival
    key order*.  A fleet flush drains worker-major instead; recording
    the ordinal at which each key was first routed lets the merge edge
    stable-sort the fleet's flush tail back into the exact order the
    single engine would have produced.
    """

    __slots__ = ("_ordinals",)

    def __init__(self):
        self._ordinals: dict[Hashable, int] = {}

    def observe(self, key: Hashable) -> int:
        """Record ``key`` if unseen; returns its first-arrival ordinal."""
        ordinal = self._ordinals.get(key)
        if ordinal is None:
            ordinal = len(self._ordinals)
            self._ordinals[key] = ordinal
        return ordinal

    def ordinal_of(self, key: Hashable) -> int:
        """The ordinal of a seen key; unseen keys sort last, stably."""
        return self._ordinals.get(key, len(self._ordinals))

    def __len__(self) -> int:
        return len(self._ordinals)


class ShardQueues:
    """Per-shard FIFO queues stamped with a global arrival sequence.

    ``push`` routes an item to its key's shard; :meth:`drain_shard`
    empties one shard's queue; :meth:`drain_in_order` empties everything
    in global arrival order (the sequence numbers make the shard-merged
    stream reproduce exactly what a single queue would have held).
    """

    def __init__(self, num_shards: int, router: ShardRouter | None = None):
        if router is not None and router.num_shards != num_shards:
            raise ValueError("router shard count mismatch")
        self.router = router or ShardRouter(num_shards)
        self.num_shards = num_shards
        self._queues: list[deque] = [deque() for _ in range(num_shards)]
        self._seq = 0

    def push(self, key: Hashable, item: T) -> int:
        """Queue ``item`` under ``key``'s shard; returns the shard index."""
        shard = self.router.shard_of(key)
        self._queues[shard].append((self._seq, key, item))
        self._seq += 1
        return shard

    def drain_shard(self, shard: int) -> list[tuple[int, Hashable, T]]:
        """Empty one shard's queue as ``(seq, key, item)`` in FIFO order."""
        queue = self._queues[shard]
        out = list(queue)
        queue.clear()
        return out

    def drain_in_order(self) -> list[tuple[int, Hashable, T]]:
        """Empty every queue, merged back into global arrival order."""
        out: list[tuple[int, Hashable, T]] = []
        for shard in range(self.num_shards):
            out.extend(self.drain_shard(shard))
        out.sort(key=lambda entry: entry[0])
        return out

    def depth(self, shard: int) -> int:
        return len(self._queues[shard])

    def depths(self) -> Sequence[int]:
        return [len(q) for q in self._queues]

    def __len__(self) -> int:
        return sum(len(q) for q in self._queues)

    def __iter__(self) -> Iterator[tuple[int, Hashable, T]]:
        for shard in range(self.num_shards):
            yield from self._queues[shard]
