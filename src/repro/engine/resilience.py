"""Per-key circuit breakers: fault isolation for the continuous path.

Pulse's continuous path is an *optimistic* layer over the discrete
engine: when the model is wrong, Section IV's validation falls back to
raw-tuple processing.  This module generalizes that contract from
"bound violated" to "anything went wrong" — a solver failure, a NaN
model, a validation-violation storm — and bounds the blast radius to
one (query, key) pair:

* **CLOSED** — the key runs the continuous path normally.
* **OPEN** — past ``failure_threshold`` consecutive solver failures, or
  a validation-violation rate above ``violation_threshold`` over the
  sliding window, the breaker trips: the key's arrivals are routed to
  the discrete lowered query (the paper's model-invalidation fallback)
  for ``backoff`` arrivals.
* **HALF_OPEN** — after the backoff, one arrival probes the continuous
  path (re-fitting/re-solving the model); ``probe_successes`` clean
  solves close the breaker, any failure re-opens it.

Every transition is exported through the
:mod:`repro.engine.metrics` registry:

* counters ``resilience.breaker.opened`` / ``.closed`` /
  ``.half_open`` / ``.shed`` / ``.probe_failures``;
* gauge ``resilience.breaker.open_keys`` (current OPEN + HALF_OPEN
  population).

The breaker is deliberately clock-free: backoff is counted in arrivals
for the quarantined key, so replays and tests are deterministic.
"""

from __future__ import annotations

import dataclasses
import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Hashable, Iterator, Mapping

from .metrics import get_counter, get_gauge

#: A breaker address: (query name, stream key).
BreakerKey = tuple[str, Hashable]


class BreakerState(enum.Enum):
    """Lifecycle of one (query, key) pair's continuous-path health."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass
class BreakerConfig:
    """Thresholds and pacing for the per-key circuit breakers.

    Attributes
    ----------
    failure_threshold:
        Consecutive solver failures that trip the breaker open.
    violation_window:
        Sliding window (in validated tuples) over which the
        validation-violation rate is measured.
    violation_threshold:
        Violation rate over the window that trips the breaker.
    min_window:
        Observations required before the rate is trusted at all —
        prevents a single early violation from reading as rate 1.0.
    backoff:
        Quarantined arrivals (per key) before a half-open probe is
        allowed.  Counted in arrivals, not seconds, so replays are
        deterministic.
    probe_successes:
        Clean continuous solves required in HALF_OPEN to close.
    """

    failure_threshold: int = 3
    violation_window: int = 32
    violation_threshold: float = 0.5
    min_window: int = 8
    backoff: int = 16
    probe_successes: int = 1


@dataclass
class _KeyHealth:
    """Mutable per-(query, key) breaker bookkeeping."""

    state: BreakerState = BreakerState.CLOSED
    consecutive_failures: int = 0
    #: Recent validation outcomes, ``True`` per violation.
    violations: deque = field(default_factory=deque)
    #: Arrivals shed (routed to fallback) while OPEN, since last opened.
    quarantine_ticks: int = 0
    probe_successes: int = 0
    times_opened: int = 0


class CircuitBreaker:
    """Tracks continuous-path health per (query, key) and gates routing.

    The runtime asks :meth:`allow` before each continuous push and
    reports outcomes via :meth:`record_success` / :meth:`record_failure`
    / :meth:`record_violation` / :meth:`record_valid`.  State only
    accrues for keys that have misbehaved at least once, so the
    population stays proportional to the fault surface, not the key
    space.
    """

    def __init__(self, config: BreakerConfig | None = None):
        self.config = config or BreakerConfig()
        self._health: dict[BreakerKey, _KeyHealth] = {}

    # ------------------------------------------------------------------
    # routing decision
    # ------------------------------------------------------------------
    def allow(self, query: str, key: Hashable) -> bool:
        """Whether this arrival may take the continuous path.

        OPEN keys consume one quarantine tick per refusal; once
        ``backoff`` ticks have passed, the breaker moves to HALF_OPEN
        and the arrival becomes the probe.
        """
        health = self._health.get((query, key))
        if health is None or health.state is BreakerState.CLOSED:
            return True
        if health.state is BreakerState.HALF_OPEN:
            return True
        health.quarantine_ticks += 1
        if health.quarantine_ticks >= self.config.backoff:
            health.state = BreakerState.HALF_OPEN
            health.probe_successes = 0
            get_counter("resilience.breaker.half_open").bump()
            return True
        get_counter("resilience.breaker.shed").bump()
        return False

    def peek(self, query: str, key: Hashable) -> bool:
        """What :meth:`allow` *would* answer, without mutating state.

        Used by the sharded runtime's priming pass, which must predict
        routing for a whole drain round before processing it — consuming
        quarantine ticks there would make breaker behaviour depend on
        whether priming ran, breaking serial/sharded parity.
        """
        health = self._health.get((query, key))
        if health is None or health.state is not BreakerState.OPEN:
            return True
        return health.quarantine_ticks + 1 >= self.config.backoff

    def state(self, query: str, key: Hashable) -> BreakerState:
        health = self._health.get((query, key))
        return health.state if health is not None else BreakerState.CLOSED

    # ------------------------------------------------------------------
    # outcome reporting
    # ------------------------------------------------------------------
    def record_failure(self, query: str, key: Hashable) -> BreakerState:
        """A solver/processing failure on the continuous path."""
        health = self._health.setdefault((query, key), _KeyHealth())
        health.consecutive_failures += 1
        if health.state is BreakerState.HALF_OPEN:
            # The probe failed: straight back to quarantine.
            get_counter("resilience.breaker.probe_failures").bump()
            self._open(health)
        elif (
            health.state is BreakerState.CLOSED
            and health.consecutive_failures >= self.config.failure_threshold
        ):
            self._open(health)
        return health.state

    def record_success(self, query: str, key: Hashable) -> BreakerState:
        """A clean continuous-path solve for this key."""
        health = self._health.get((query, key))
        if health is None:
            # Never-misbehaving keys carry no state at all.
            return BreakerState.CLOSED
        health.consecutive_failures = 0
        if health.state is BreakerState.HALF_OPEN:
            health.probe_successes += 1
            if health.probe_successes >= self.config.probe_successes:
                self._close(health)
        return health.state

    def record_violation(self, query: str, key: Hashable) -> BreakerState:
        """A validation violation (model wrong but solver healthy)."""
        health = self._health.setdefault((query, key), _KeyHealth())
        self._push_outcome(health, True)
        if (
            health.state is BreakerState.CLOSED
            and len(health.violations) >= self.config.min_window
            and (
                sum(health.violations) / len(health.violations)
                > self.config.violation_threshold
            )
        ):
            self._open(health)
        return health.state

    def record_valid(self, query: str, key: Hashable) -> BreakerState:
        """A tuple validated clean against its model."""
        health = self._health.get((query, key))
        if health is None:
            return BreakerState.CLOSED
        self._push_outcome(health, False)
        return health.state

    # ------------------------------------------------------------------
    # transitions
    # ------------------------------------------------------------------
    def _open(self, health: _KeyHealth) -> None:
        health.state = BreakerState.OPEN
        health.quarantine_ticks = 0
        health.probe_successes = 0
        health.times_opened += 1
        health.violations.clear()
        get_counter("resilience.breaker.opened").bump()
        self._sync_gauge()

    def _close(self, health: _KeyHealth) -> None:
        health.state = BreakerState.CLOSED
        health.consecutive_failures = 0
        health.quarantine_ticks = 0
        health.violations.clear()
        get_counter("resilience.breaker.closed").bump()
        self._sync_gauge()

    def _push_outcome(self, health: _KeyHealth, violation: bool) -> None:
        health.violations.append(violation)
        while len(health.violations) > self.config.violation_window:
            health.violations.popleft()

    def _sync_gauge(self) -> None:
        get_gauge("resilience.breaker.open_keys").set(
            sum(
                1
                for h in self._health.values()
                if h.state is not BreakerState.CLOSED
            )
        )

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Plain-data serialization of config + every key's health.

        Everything the breaker's routing decisions depend on is
        captured — state, consecutive failures, the violation window
        contents, quarantine tick count (arrival-counted backoff
        progress), probe successes mid-HALF_OPEN, and times_opened —
        so a restored breaker makes the *same* next decision the
        original would have (pinned by the round-trip tests).
        """
        return {
            "config": dataclasses.asdict(self.config),
            "health": [
                {
                    "query": query,
                    "key": key,
                    "state": health.state.value,
                    "consecutive_failures": health.consecutive_failures,
                    "violations": list(health.violations),
                    "quarantine_ticks": health.quarantine_ticks,
                    "probe_successes": health.probe_successes,
                    "times_opened": health.times_opened,
                }
                for (query, key), health in self._health.items()
            ],
        }

    def load_state(self, state: Mapping) -> None:
        """Restore from :meth:`state_dict` (replaces current health)."""
        self.config = BreakerConfig(**dict(state["config"]))
        self._health = {}
        for entry in state["health"]:
            health = _KeyHealth(
                state=BreakerState(entry["state"]),
                consecutive_failures=entry["consecutive_failures"],
                violations=deque(entry["violations"]),
                quarantine_ticks=entry["quarantine_ticks"],
                probe_successes=entry["probe_successes"],
                times_opened=entry["times_opened"],
            )
            self._health[(entry["query"], entry["key"])] = health
        self._sync_gauge()

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------
    def open_keys(self) -> list[BreakerKey]:
        """Every (query, key) currently OPEN or HALF_OPEN."""
        return [
            bk
            for bk, h in self._health.items()
            if h.state is not BreakerState.CLOSED
        ]

    def tracked_keys(self) -> Iterator[BreakerKey]:
        return iter(self._health)

    def recovered_fraction(self) -> float:
        """Fraction of ever-tripped keys now back on the continuous path.

        The acceptance metric for degrade-and-recover runs: 1.0 when
        every key that ever opened has closed again (or none ever
        opened).
        """
        tripped = [h for h in self._health.values() if h.times_opened]
        if not tripped:
            return 1.0
        recovered = sum(
            1 for h in tripped if h.state is BreakerState.CLOSED
        )
        return recovered / len(tripped)

    def snapshot(self) -> dict[str, int]:
        """Population counts per state, for dashboards and tests."""
        counts = {state.value: 0 for state in BreakerState}
        for health in self._health.values():
            counts[health.state.value] += 1
        counts["tracked"] = len(self._health)
        return counts


class SlowSolveWatchdog:
    """Flags arrivals whose end-to-end processing blew a latency budget.

    The observability counterpart of the circuit breaker: where the
    breaker reacts to *failures*, the watchdog surfaces *slowness* — a
    row that solved correctly but took longer than the configured budget
    (e.g. a degree blow-up that stayed inside the guardrails).  The
    scheduler times each arrival and calls :meth:`check`; exceedances
    are exported through the resilience counters:

    * ``resilience.watchdog.items_checked`` — arrivals timed;
    * ``resilience.watchdog.slow_solves`` — budget exceedances;
    * ``resilience.watchdog.worst_seconds`` (gauge) — slowest arrival
      seen since the last counter reset.

    The watchdog never interferes with processing — it observes and
    counts.  Routing slow keys away is the breaker's job; keeping the
    two separate means a latency regression cannot change outputs.
    """

    def __init__(self, budget_s: float):
        if budget_s <= 0:
            raise ValueError("watchdog budget must be positive")
        self.budget_s = budget_s
        self.last_flagged: tuple[str, Hashable, float] | None = None
        self._checked = get_counter("resilience.watchdog.items_checked")
        self._flagged = get_counter("resilience.watchdog.slow_solves")
        self._worst = get_gauge("resilience.watchdog.worst_seconds")

    def check(self, query: str, key: Hashable, seconds: float) -> bool:
        """Record one timed arrival; ``True`` when it blew the budget."""
        self._checked.bump()
        if seconds > self._worst.value:
            self._worst.set(seconds)
        if seconds <= self.budget_s:
            return False
        self._flagged.bump()
        self.last_flagged = (query, key, seconds)
        return True

    @property
    def slow_solves(self) -> int:
        return self._flagged.value

    @property
    def items_checked(self) -> int:
        return self._checked.value
