"""Tuples and schemas for the discrete (baseline) stream engine.

The paper evaluates Pulse against a conventional tuple-at-a-time stream
processor (Borealis).  This module provides that engine's datatypes: a
lightweight tuple carrying a timestamp plus named attributes, and a
schema describing a stream's attributes, key fields and temporal fields
(Section II-B's reference/delta attributes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping


class StreamTuple(dict):
    """One stream element: a timestamped bag of named attribute values.

    A plain ``dict`` subclass: attribute access stays dictionary-style
    (``t["price"]``) so predicate evaluation can reuse
    :meth:`Expr.evaluate` directly; the timestamp is the reserved
    ``time`` field.
    """

    __slots__ = ()

    TIME_FIELD = "time"

    @property
    def time(self) -> float:
        return self[self.TIME_FIELD]

    def key(self, key_fields: Iterable[str]) -> tuple:
        """The tuple's key under the given key fields."""
        return tuple(self[f] for f in key_fields)

    def env(self, alias: str | None = None) -> dict[str, object]:
        """An attribute environment for expression evaluation.

        With an alias, attributes are exposed both qualified
        (``S.price``) and bare (``price``).
        """
        if alias is None:
            return dict(self)
        out: dict[str, object] = dict(self)
        for k, v in self.items():
            out[f"{alias}.{k}"] = v
        return out


@dataclass(frozen=True)
class Schema:
    """Stream schema: attribute names plus key/temporal designations.

    Parameters
    ----------
    attributes:
        All attribute names (including the time field).
    key_fields:
        Discrete, unique attributes identifying entities (Section II-B's
        key attributes), e.g. ``("symbol",)`` or ``("vessel_id",)``.
    time_field:
        The reference timestamp attribute (monotonically increasing,
        globally synchronized).
    """

    attributes: tuple[str, ...]
    key_fields: tuple[str, ...] = ()
    time_field: str = StreamTuple.TIME_FIELD

    def __post_init__(self) -> None:
        missing = [k for k in self.key_fields if k not in self.attributes]
        if missing:
            raise ValueError(f"key fields {missing} not in attributes")
        if self.time_field not in self.attributes:
            raise ValueError(
                f"time field {self.time_field!r} not in attributes"
            )

    @property
    def value_fields(self) -> tuple[str, ...]:
        """Attributes that are neither keys nor the timestamp."""
        special = set(self.key_fields) | {self.time_field}
        return tuple(a for a in self.attributes if a not in special)

    def make_tuple(self, values: Mapping[str, object]) -> StreamTuple:
        """Validate and build a tuple for this schema."""
        missing = [a for a in self.attributes if a not in values]
        if missing:
            raise ValueError(f"tuple missing attributes {missing}")
        return StreamTuple(values)


@dataclass(frozen=True)
class StreamDef:
    """A named stream with its schema (the engine's catalog entry)."""

    name: str
    schema: Schema
