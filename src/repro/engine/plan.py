"""Discrete query plans: push-based DAGs of tuple operators.

The structural twin of :class:`repro.core.plan.ContinuousPlan` for the
baseline engine — same builder API, same push semantics, tuples instead
of segments.  Keeping the two executors shape-identical makes the
benchmark comparisons measure *operator* cost, not executor overhead.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..core.errors import PlanError
from .operators.base import DiscreteOperator
from .tuples import StreamTuple


@dataclass
class DiscretePlanNode:
    node_id: int
    operator: DiscreteOperator | None
    label: str
    successors: list[tuple[int, int]] = field(default_factory=list)
    tuples_in: int = 0
    tuples_out: int = 0

    @property
    def is_source(self) -> bool:
        return self.operator is None


class DiscreteNodeRef:
    __slots__ = ("node_id", "_plan")

    def __init__(self, node_id: int, plan: "DiscretePlan"):
        self.node_id = node_id
        self._plan = plan

    def __repr__(self) -> str:
        return f"DiscreteNodeRef({self.node_id})"


class DiscretePlan:
    """Builder and push-based executor for a DAG of discrete operators."""

    def __init__(self, name: str = "plan"):
        self.name = name
        self._nodes: dict[int, DiscretePlanNode] = {}
        self._sources: dict[str, int] = {}
        self._output_id: int | None = None
        self._next_id = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_source(self, name: str) -> DiscreteNodeRef:
        if name in self._sources:
            raise PlanError(f"duplicate source {name!r}")
        node = self._new_node(None, f"source:{name}")
        self._sources[name] = node.node_id
        return DiscreteNodeRef(node.node_id, self)

    def add_operator(
        self,
        operator: DiscreteOperator,
        inputs: Iterable[DiscreteNodeRef | tuple[DiscreteNodeRef, int]],
    ) -> DiscreteNodeRef:
        node = self._new_node(operator, operator.name)
        wired = 0
        for item in inputs:
            ref, port = item if isinstance(item, tuple) else (item, 0)
            if ref._plan is not self:
                raise PlanError("input node belongs to a different plan")
            self._nodes[ref.node_id].successors.append((node.node_id, port))
            wired += 1
        if wired != operator.arity:
            raise PlanError(
                f"operator {operator.name!r} has arity {operator.arity}, "
                f"got {wired} inputs"
            )
        return DiscreteNodeRef(node.node_id, self)

    def set_output(self, ref: DiscreteNodeRef) -> None:
        self._output_id = ref.node_id

    def _new_node(self, operator, label) -> DiscretePlanNode:
        node = DiscretePlanNode(self._next_id, operator, label)
        self._nodes[self._next_id] = node
        self._next_id += 1
        return node

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def sources(self) -> tuple[str, ...]:
        return tuple(self._sources)

    def node(self, ref: DiscreteNodeRef) -> DiscretePlanNode:
        return self._nodes[ref.node_id]

    def nodes(self) -> Mapping[int, DiscretePlanNode]:
        return dict(self._nodes)

    def operators(self) -> list[DiscreteOperator]:
        return [n.operator for n in self._nodes.values() if n.operator]

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def push(self, source: str, tup: StreamTuple) -> list[StreamTuple]:
        if source not in self._sources:
            raise PlanError(
                f"unknown source {source!r}; declared: {list(self._sources)}"
            )
        if self._output_id is None:
            raise PlanError("plan has no output node; call set_output()")
        results: list[StreamTuple] = []
        src = self._nodes[self._sources[source]]
        src.tuples_in += 1
        src.tuples_out += 1
        if self._sources[source] == self._output_id:
            results.append(tup)
        initial = [(succ_id, port, tup) for succ_id, port in src.successors]
        self._cascade(initial, results)
        return results

    def _cascade(
        self,
        initial: list[tuple[int, int, StreamTuple]],
        results: list[StreamTuple],
    ) -> None:
        queue: deque[tuple[int, int, StreamTuple]] = deque(initial)
        while queue:
            node_id, port, item = queue.popleft()
            node = self._nodes[node_id]
            node.tuples_in += 1
            outputs = node.operator.process(item, port)
            node.tuples_out += len(outputs)
            for out in outputs:
                if node_id == self._output_id:
                    results.append(out)
                for succ_id, succ_port in node.successors:
                    queue.append((succ_id, succ_port, out))

    def flush(self) -> list[StreamTuple]:
        """Flush buffered operator state at end of stream.

        Nodes flush in construction order (topological, since inputs are
        built before their consumers); each node's flushed items cascade
        through its successors like regular arrivals.
        """
        results: list[StreamTuple] = []
        for node_id in sorted(self._nodes):
            node = self._nodes[node_id]
            if node.operator is None:
                continue
            flushed = node.operator.flush()
            node.tuples_out += len(flushed)
            for out in flushed:
                if node_id == self._output_id:
                    results.append(out)
                self._cascade(
                    [(succ_id, port, out) for succ_id, port in node.successors],
                    results,
                )
        return results

    def reset(self) -> None:
        for node in self._nodes.values():
            if node.operator is not None:
                node.operator.reset()
            node.tuples_in = 0
            node.tuples_out = 0

    def stats(self) -> dict[str, tuple[int, int]]:
        return {
            f"{n.node_id}:{n.label}": (n.tuples_in, n.tuples_out)
            for n in self._nodes.values()
        }

    def __repr__(self) -> str:
        return f"DiscretePlan({self.name!r}, {len(self._nodes)} nodes)"
