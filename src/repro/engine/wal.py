"""CRC-framed append-only write-ahead log for ingest durability.

The WAL records every ingested item *before* it reaches operator state,
so a crashed process can replay the tail past its last checkpoint and
reconverge bit-exactly (the engine is deterministic given the same
arrival order — the same property the parallel-runtime parity tests
pin).

Frame layout (all integers little-endian)::

    MAGIC(4) | seq(8) | length(4) | crc32(4) | payload(length)

``crc32`` covers ``seq | length | payload``, so a corrupt length field
fails the checksum instead of silently mis-framing the reader.  Each
log file starts with an 8-byte header ``PWALV001`` carrying the format
version.  Readers never raise on damage: torn tails (a frame cut short
by the crash itself) and corrupt frames (CRC or unpickling failure) are
skipped with typed :class:`WalError` accounting and the
``wal.corrupt_frames`` / ``wal.torn_tails`` counters bumped — recovery
must survive exactly the failure it exists for.

Durability knob: ``fsync_every=N`` fsyncs once per N appended records
(1 = every record, 0 = never, leaving flush timing to the OS).
``fsync_every=1`` is strict: the fsync happens on the appending thread
before ``append`` returns.  ``N > 1`` is **group commit**: batch
boundaries hand the fdatasync to a dedicated sync thread so the ingest
hot path never blocks on the disk; a lagging worker coalesces pending
batches into one fdatasync covering everything flushed before it.
Either way, records since the last *completed* fsync are at-least-once
on crash: the snapshot sequence number filters duplicates at replay,
and an unfsynced tail may be lost — the client-visible contract is
"resume from the recovered sequence".  :meth:`sync` is the durability
barrier (checkpoint/close call it): it returns only once everything
appended so far is physically on disk.
"""

from __future__ import annotations

import io
import os
import pickle
import struct
import threading
import time
import zlib
from dataclasses import dataclass, field
from typing import Iterator

from ..core.errors import PulseError
from ..core.polynomial import Polynomial
from ..core.segment import Segment
from .metrics import get_counter, get_histogram

FRAME_MAGIC = b"PWF1"
FILE_HEADER = b"PWALV001"
WAL_VERSION = 1

_HEADER_STRUCT = struct.Struct("<QI")  # seq, payload length
_CRC_STRUCT = struct.Struct("<I")
_FRAME_OVERHEAD = len(FRAME_MAGIC) + _HEADER_STRUCT.size + _CRC_STRUCT.size

#: Refuse to trust absurd frame lengths when scanning damaged logs; a
#: corrupted length field could otherwise swallow the rest of the file.
MAX_FRAME_PAYLOAD = 64 * 1024 * 1024


class WalError(PulseError):
    """Base for write-ahead-log failures."""


class WalCorruption(WalError):
    """A frame failed its CRC or payload decode.

    Raised only by strict readers; recovery-path readers *count* these
    (``wal.corrupt_frames``) and resynchronize on the next frame magic.
    """

    def __init__(self, message: str, path: str = "", offset: int = -1):
        super().__init__(message)
        self.path = path
        self.offset = offset


class WalTornTail(WalCorruption):
    """The final frame was cut short mid-write (the expected crash scar)."""


class WalClosed(WalError):
    """Append attempted on a closed log."""


@dataclass
class WalReadStats:
    """Damage accounting for one recovery scan — never silent."""

    records: int = 0
    corrupt_frames: int = 0
    torn_tails: int = 0
    skipped_duplicates: int = 0
    files: int = 0
    errors: list[WalError] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "records": self.records,
            "corrupt_frames": self.corrupt_frames,
            "torn_tails": self.torn_tails,
            "skipped_duplicates": self.skipped_duplicates,
            "files": self.files,
        }


_fdatasync = getattr(os, "fdatasync", os.fsync)

#: Tag marking a segment record flattened to primitives; the leading
#: NUL keeps it out of the space of real stream names.
_SEG_TAG = "\x00seg"


def _pack_record(record: object) -> object:
    """Flatten the hot-path record shape to pickle-cheap primitives.

    ``(stream, Segment)`` — every continuous-ingest record — pickles
    ~3× faster as a tagged tuple of floats and strings than through
    the ``__reduce__`` chain (class-by-name references for Segment and
    each Polynomial are re-emitted per record once the memo is
    cleared).  Everything else passes through to plain pickle.
    """
    if (
        type(record) is tuple
        and len(record) == 2
        and type(record[0]) is str
        and type(record[1]) is Segment
    ):
        seg = record[1]
        return (
            _SEG_TAG,
            record[0],
            seg.key,
            seg.t_start,
            seg.t_end,
            {attr: poly.coeffs for attr, poly in seg.models.items()},
            dict(seg.constants),
            seg.lineage,
            seg.seg_id,
        )
    return record


def _unpack_record(obj: object) -> object:
    if type(obj) is tuple and obj and obj[0] == _SEG_TAG:
        _, stream, key, t_start, t_end, models, constants, lineage, seg_id = obj
        return (
            stream,
            Segment(
                key,
                t_start,
                t_end,
                {attr: Polynomial(c) for attr, c in models.items()},
                constants,
                lineage,
                seg_id,
            ),
        )
    return obj


def _encode_frame(seq: int, payload: bytes) -> bytes:
    header = _HEADER_STRUCT.pack(seq, len(payload))
    crc = zlib.crc32(header + payload) & 0xFFFFFFFF
    return FRAME_MAGIC + header + _CRC_STRUCT.pack(crc) + payload


def _segment_name(first_seq: int) -> str:
    return f"wal-{first_seq:016d}.log"


def _is_segment_name(name: str) -> bool:
    return (
        name.startswith("wal-")
        and name.endswith(".log")
        and name[4:-4].isdigit()
    )


class WriteAheadLog:
    """Appender over a directory of sequenced log files.

    One file per checkpoint epoch: :meth:`rotate` starts a fresh file
    and deletes files whose every record is covered by the checkpoint,
    which makes truncation an optimization — replay filters by sequence
    number regardless, so a crash between snapshot and truncate only
    costs duplicate (skipped) frames, never correctness.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        fsync_every: int = 32,
        start_seq: int = 0,
    ):
        self.directory = os.fspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.fsync_every = max(0, int(fsync_every))
        self._seq = int(start_seq)
        self._since_sync = 0
        self._file = None
        self._closed = False
        self._records = get_counter("wal.records")
        self._bytes = get_counter("wal.bytes")
        self._fsyncs = get_counter("wal.fsyncs")
        self._fsync_hist = get_histogram("wal.fsync_seconds")
        # Appends are the ingest hot path: reuse one pickler (memo
        # cleared per record) and batch the counter flushes to sync
        # points, so a record costs one serialize + one buffered write.
        self._pickle_buf = io.BytesIO()
        self._pickler = pickle.Pickler(
            self._pickle_buf, protocol=pickle.HIGHEST_PROTOCOL
        )
        self._pending_records = 0
        self._pending_bytes = 0
        # Group-commit state (fsync_every > 1): the appending thread
        # flushes at batch boundaries and signals; the worker owns the
        # physical fdatasync.  ``_flushed_seq``/``_synced_seq`` track
        # what has reached the OS vs. the platter; :meth:`sync` is the
        # barrier that waits for them to meet.
        self._sync_cv = threading.Condition()
        self._sync_requested = False
        self._sync_stopping = False
        self._sync_thread: threading.Thread | None = None
        self._sync_exc: BaseException | None = None
        self._flushed_seq = self._seq
        self._synced_seq = self._seq

    # ------------------------------------------------------------------
    @property
    def last_seq(self) -> int:
        """Sequence number of the most recently appended record."""
        return self._seq

    @property
    def closed(self) -> bool:
        return self._closed

    def _open_segment(self, first_seq: int) -> None:
        path = os.path.join(self.directory, _segment_name(first_seq))
        self._file = open(path, "ab")
        if self._file.tell() == 0:
            self._file.write(FILE_HEADER)
            self._file.flush()
        self._path = path

    def append(self, record: object) -> int:
        """Durably frame one record; returns its sequence number.

        The record is pickled, CRC-framed, and written before this
        returns; whether it is *fsynced* depends on the batching knob.
        """
        if self._closed:
            raise WalClosed("append on closed WAL")
        if self._file is None:
            # Lazy open: recovery rewinds ``start_seq`` before the first
            # append, so the file name never collides with an epoch a
            # previous process already wrote.
            self._open_segment(self._seq + 1)
        self._seq += 1
        buf = self._pickle_buf
        buf.seek(0)
        buf.truncate()
        self._pickler.clear_memo()
        self._pickler.dump(_pack_record(record))
        frame = _encode_frame(self._seq, buf.getvalue())
        self._file.write(frame)
        self._pending_records += 1
        self._pending_bytes += len(frame)
        self._since_sync += 1
        if self.fsync_every and self._since_sync >= self.fsync_every:
            if self.fsync_every == 1:
                self.sync()  # strict: durable before append returns
            else:
                self._request_group_sync()
        return self._seq

    def advance_seq(self, seq: int) -> None:
        """Move the next-sequence position past a recovered tail.

        Only legal before the first append of this appender's life —
        renumbering mid-file would corrupt the monotonic-seq contract.
        """
        if self._file is not None:
            raise WalError("advance_seq after first append")
        self._seq = max(self._seq, int(seq))

    def _flush_accounting(self) -> None:
        self._records.bump(self._pending_records)
        self._bytes.bump(self._pending_bytes)
        self._pending_records = 0
        self._pending_bytes = 0
        self._since_sync = 0

    def _fdatasync_timed(self, fileno: int) -> None:
        start = time.perf_counter()
        # fdatasync skips the mtime journal flush; an appended log's
        # size metadata still hits the disk, which is all replay needs.
        _fdatasync(fileno)
        self._fsync_hist.observe(time.perf_counter() - start)
        self._fsyncs.bump()

    def _request_group_sync(self) -> None:
        """Batch boundary: flush to the OS, wake the sync worker.

        Never blocks on the disk.  A worker already busy coalesces: its
        *next* fdatasync covers everything flushed before it starts, so
        the un-durable window is bounded by one in-flight fdatasync,
        not by queue growth.
        """
        self._file.flush()
        with self._sync_cv:
            self._flush_accounting()
            self._flushed_seq = self._seq
            self._sync_requested = True
            if self._sync_thread is None:
                self._sync_thread = threading.Thread(
                    target=self._sync_worker,
                    name="pulse-wal-sync",
                    daemon=True,
                )
                self._sync_thread.start()
            self._sync_cv.notify_all()

    def _sync_worker(self) -> None:
        while True:
            with self._sync_cv:
                while not self._sync_requested and not self._sync_stopping:
                    self._sync_cv.wait()
                if self._sync_stopping and not self._sync_requested:
                    return
                self._sync_requested = False
                target = self._flushed_seq
                fileno = self._file.fileno()
            try:
                self._fdatasync_timed(fileno)
            except OSError as exc:
                with self._sync_cv:
                    self._sync_exc = exc
                    self._sync_cv.notify_all()
                return
            with self._sync_cv:
                self._synced_seq = max(self._synced_seq, target)
                self._sync_cv.notify_all()

    def sync(self) -> None:
        """Durability barrier: everything appended so far is on disk
        when this returns (no-op when nothing is pending)."""
        if self._file is None:
            return
        with self._sync_cv:
            if self._sync_exc is not None:
                raise WalError(f"background fsync failed: {self._sync_exc}")
            done = (
                self._since_sync == 0
                and not self._sync_requested
                and self._synced_seq >= self._flushed_seq
            )
        if done:
            return
        self._file.flush()
        with self._sync_cv:
            self._flush_accounting()
            self._flushed_seq = self._seq
            if self._sync_thread is None:
                # No worker running (strict/os-deferred modes, or group
                # commit that never hit a boundary): sync inline.
                self._fdatasync_timed(self._file.fileno())
                self._synced_seq = self._flushed_seq
                return
            self._sync_requested = True
            self._sync_cv.notify_all()
            while self._synced_seq < self._flushed_seq:
                if self._sync_exc is not None:
                    raise WalError(
                        f"background fsync failed: {self._sync_exc}"
                    )
                self._sync_cv.wait(timeout=0.5)

    def rotate(self, checkpoint_seq: int) -> int:
        """Start a new file; drop files fully covered by ``checkpoint_seq``.

        Returns the number of files deleted.  Files are named by their
        first sequence number, so a file is dead once the *next* file's
        first sequence is ≤ ``checkpoint_seq + 1``.
        """
        if self._closed:
            raise WalClosed("rotate on closed WAL")
        if self._file is not None:
            self.sync()
            self._file.close()
        self._open_segment(self._seq + 1)
        removed = 0
        starts = sorted(
            int(name[4:-4])
            for name in os.listdir(self.directory)
            if _is_segment_name(name)
        )
        for i, first in enumerate(starts):
            nxt = starts[i + 1] if i + 1 < len(starts) else None
            if nxt is not None and nxt <= checkpoint_seq + 1:
                os.remove(
                    os.path.join(self.directory, _segment_name(first))
                )
                removed += 1
        return removed

    def close(self) -> None:
        if self._file is not None:
            self.sync()  # barrier: worker idle, tail durable
            with self._sync_cv:
                self._sync_stopping = True
                self._sync_cv.notify_all()
            if self._sync_thread is not None:
                self._sync_thread.join(timeout=5.0)
                self._sync_thread = None
            self._file.close()
            self._file = None
        self._closed = True


# ----------------------------------------------------------------------
# reading / recovery scan
# ----------------------------------------------------------------------
def _scan_file(path: str, stats: WalReadStats) -> Iterator[tuple[int, object]]:
    """Yield ``(seq, record)`` from one log file, resyncing past damage."""
    with open(path, "rb") as fh:
        data = fh.read()
    pos = 0
    if data[: len(FILE_HEADER)] == FILE_HEADER:
        pos = len(FILE_HEADER)
    elif data:
        stats.corrupt_frames += 1
        stats.errors.append(
            WalCorruption("bad file header", path=path, offset=0)
        )
        get_counter("wal.corrupt_frames").bump()
    while pos < len(data):
        idx = data.find(FRAME_MAGIC, pos)
        if idx < 0:
            # Trailing bytes with no frame start: a torn header.
            stats.torn_tails += 1
            stats.errors.append(
                WalTornTail("trailing garbage", path=path, offset=pos)
            )
            get_counter("wal.torn_tails").bump()
            return
        if idx != pos:
            stats.corrupt_frames += 1
            stats.errors.append(
                WalCorruption(
                    f"skipped {idx - pos} bytes to resync",
                    path=path,
                    offset=pos,
                )
            )
            get_counter("wal.corrupt_frames").bump()
            pos = idx
        body_start = pos + len(FRAME_MAGIC)
        if body_start + _HEADER_STRUCT.size + _CRC_STRUCT.size > len(data):
            stats.torn_tails += 1
            stats.errors.append(
                WalTornTail("frame header cut short", path=path, offset=pos)
            )
            get_counter("wal.torn_tails").bump()
            return
        header = data[body_start : body_start + _HEADER_STRUCT.size]
        seq, length = _HEADER_STRUCT.unpack(header)
        crc_off = body_start + _HEADER_STRUCT.size
        (crc,) = _CRC_STRUCT.unpack(
            data[crc_off : crc_off + _CRC_STRUCT.size]
        )
        payload_off = crc_off + _CRC_STRUCT.size
        if length > MAX_FRAME_PAYLOAD:
            stats.corrupt_frames += 1
            stats.errors.append(
                WalCorruption(
                    f"implausible frame length {length}",
                    path=path,
                    offset=pos,
                )
            )
            get_counter("wal.corrupt_frames").bump()
            pos += len(FRAME_MAGIC)  # resync scan past this magic
            continue
        if payload_off + length > len(data):
            # Could be a torn tail *or* a corrupt length; if the CRC of
            # what remains can't be checked, treat as torn (end of log).
            stats.torn_tails += 1
            stats.errors.append(
                WalTornTail("frame payload cut short", path=path, offset=pos)
            )
            get_counter("wal.torn_tails").bump()
            return
        payload = data[payload_off : payload_off + length]
        if (zlib.crc32(header + payload) & 0xFFFFFFFF) != crc:
            stats.corrupt_frames += 1
            stats.errors.append(
                WalCorruption("crc mismatch", path=path, offset=pos)
            )
            get_counter("wal.corrupt_frames").bump()
            pos += len(FRAME_MAGIC)
            continue
        try:
            record = _unpack_record(pickle.loads(payload))
        except Exception as exc:
            stats.corrupt_frames += 1
            stats.errors.append(
                WalCorruption(
                    f"payload decode failed: {exc}", path=path, offset=pos
                )
            )
            get_counter("wal.corrupt_frames").bump()
            pos = payload_off + length
            continue
        yield seq, record
        pos = payload_off + length


def read_wal(
    directory: str | os.PathLike,
    after_seq: int = 0,
    stats: WalReadStats | None = None,
) -> Iterator[tuple[int, object]]:
    """Yield ``(seq, record)`` with ``seq > after_seq``, oldest first.

    Damage is accounted in ``stats`` (and the ``wal.*`` counters) and
    skipped; sequence numbers are delivered strictly increasing —
    duplicates from an un-truncated pre-checkpoint file are counted as
    ``skipped_duplicates``.
    """
    directory = os.fspath(directory)
    stats = stats if stats is not None else WalReadStats()
    try:
        names = sorted(
            n for n in os.listdir(directory) if _is_segment_name(n)
        )
    except FileNotFoundError:
        return
    last = after_seq
    for name in names:
        stats.files += 1
        for seq, record in _scan_file(os.path.join(directory, name), stats):
            if seq <= last:
                stats.skipped_duplicates += 1
                continue
            last = seq
            stats.records += 1
            yield seq, record


def wal_last_seq(directory: str | os.PathLike) -> int:
    """Highest intact sequence number on disk (0 when empty/missing)."""
    last = 0
    for seq, _ in read_wal(directory):
        last = seq
    return last
