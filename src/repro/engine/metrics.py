"""Throughput and latency instrumentation, plus the queueing model.

The paper's evaluation reports (a) processing throughput for fixed-size
workloads, (b) per-operator processing cost, and (c) throughput curves
that *tail off* once the offered stream rate exceeds engine capacity
because queues grow until the page pool is exhausted (Figures 8 and 9).

Absolute 2006 C++ numbers are unreproducible in Python, so we reproduce
the shapes:

* :func:`measure_service_time` times a real run of a plan over a real
  workload, giving the engine's measured capacity (tuples/second);
* :class:`QueueingModel` turns a measured service time plus an offered
  arrival rate into the achieved throughput, average latency and queue
  growth of a bounded-memory push engine: while the queue fits in memory
  the server drains at its capacity, but beyond a memory threshold the
  effective service time inflates (thrash factor), reproducing the
  tail-off the paper observes when "the dataset exhausts the system's
  memory as queues grow".
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence


@dataclass
class Counter:
    """A named, resettable event counter."""

    name: str
    value: int = 0

    def bump(self, by: int = 1) -> None:
        self.value += by

    def reset(self) -> None:
        self.value = 0


@dataclass
class Gauge:
    """A named, settable level (e.g. currently-open breaker keys).

    Counters only accumulate; gauges report a current state that can go
    down as well as up, which is what the resilience layer exports for
    breaker occupancy and queue depths.
    """

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, by: float = 1.0) -> None:
        self.value += by

    def reset(self) -> None:
        self.value = 0.0


class CounterRegistry:
    """Process-wide named counters and gauges — the shared stats surface.

    The equation-system solver (``equation_system.row_solves``), the
    solve cache (``solve_cache.hits`` / ``.misses`` / ``.evictions``)
    and the resilience layer (``resilience.breaker.*``) register here,
    so benchmarks and ablations read and reset one place instead of
    poking mutable class attributes.
    """

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the named counter."""
        found = self._counters.get(name)
        if found is None:
            found = self._counters[name] = Counter(name)
        return found

    def gauge(self, name: str) -> Gauge:
        """Get or create the named gauge."""
        found = self._gauges.get(name)
        if found is None:
            found = self._gauges[name] = Gauge(name)
        return found

    def value(self, name: str) -> int:
        return self.counter(name).value

    def snapshot(self, prefix: str = "") -> dict[str, int]:
        """Current counter values, optionally restricted to a prefix."""
        return {
            name: c.value
            for name, c in sorted(self._counters.items())
            if name.startswith(prefix)
        }

    def gauge_snapshot(self, prefix: str = "") -> dict[str, float]:
        """Current gauge values, optionally restricted to a prefix."""
        return {
            name: g.value
            for name, g in sorted(self._gauges.items())
            if name.startswith(prefix)
        }

    def reset(self, *names: str) -> None:
        """Reset the named counters/gauges, or everything when none given."""
        targets = names or tuple(self._counters) + tuple(self._gauges)
        for name in targets:
            if name in self._counters:
                self._counters[name].reset()
            if name in self._gauges:
                self._gauges[name].reset()


#: The default registry used by the solver, cache, and benchmarks.
GLOBAL_COUNTERS = CounterRegistry()


def get_counter(name: str) -> Counter:
    """Get or create a counter in the global registry."""
    return GLOBAL_COUNTERS.counter(name)


def get_gauge(name: str) -> Gauge:
    """Get or create a gauge in the global registry."""
    return GLOBAL_COUNTERS.gauge(name)


def counter_snapshot(prefix: str = "") -> Mapping[str, int]:
    return GLOBAL_COUNTERS.snapshot(prefix)


def gauge_snapshot(prefix: str = "") -> Mapping[str, float]:
    return GLOBAL_COUNTERS.gauge_snapshot(prefix)


def reset_counters(*names: str) -> None:
    GLOBAL_COUNTERS.reset(*names)


def absorb_cache_stats(prefix: str, stats) -> None:
    """Fold a mergeable cache snapshot into the global registry.

    ``stats`` is a :class:`~repro.core.solve_cache.CacheStats` (or any
    object with ``hits`` / ``misses`` / ``evictions`` ints) — typically
    a per-worker *delta* shipped back with a shard result payload.
    Counts accumulate under ``{prefix}.hits`` / ``.misses`` /
    ``.evictions``; ``entries`` is a level, not an event count, so it is
    reported as the ``{prefix}.entries`` gauge instead.
    """
    get_counter(f"{prefix}.hits").bump(int(stats.hits))
    get_counter(f"{prefix}.misses").bump(int(stats.misses))
    get_counter(f"{prefix}.evictions").bump(int(stats.evictions))
    entries = getattr(stats, "entries", None)
    if entries is not None:
        get_gauge(f"{prefix}.entries").set(float(entries))


class Stopwatch:
    """Minimal wall-clock stopwatch built on the monotonic clock."""

    def __init__(self):
        self._start: float | None = None
        self.elapsed = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed += time.perf_counter() - self._start
        self._start = None


@dataclass
class RunMetrics:
    """Outcome of a measured plan execution."""

    items_in: int
    items_out: int
    elapsed_seconds: float

    @property
    def throughput(self) -> float:
        """Input items processed per second."""
        if self.elapsed_seconds <= 0:
            return float("inf")
        return self.items_in / self.elapsed_seconds

    @property
    def service_time(self) -> float:
        """Mean seconds of processing per input item."""
        if self.items_in == 0:
            return 0.0
        return self.elapsed_seconds / self.items_in


def measure_run(
    feed: Callable[[], int],
) -> RunMetrics:
    """Time ``feed`` (which pushes a workload and returns output count).

    ``feed`` must return the number of outputs produced; the number of
    inputs is returned by convention as ``feed.items`` if present, else
    equals the outputs.
    """
    with Stopwatch() as sw:
        outputs = feed()
    inputs = getattr(feed, "items", outputs)
    return RunMetrics(items_in=inputs, items_out=outputs, elapsed_seconds=sw.elapsed)


def measure_service_time(
    process_one: Callable[[object], object],
    workload: Sequence,
) -> RunMetrics:
    """Time a per-item processing function over a workload."""
    n_out = 0
    with Stopwatch() as sw:
        for item in workload:
            result = process_one(item)
            if result:
                n_out += len(result) if isinstance(result, list) else 1
    return RunMetrics(
        items_in=len(workload), items_out=n_out, elapsed_seconds=sw.elapsed
    )


@dataclass
class QueueingResult:
    """Steady-state outcome of offering a rate to a bounded-memory server."""

    offered_rate: float
    achieved_throughput: float
    mean_latency: float
    final_queue_length: float
    saturated: bool


class QueueingModel:
    """Deterministic fluid model of a push engine with a page pool.

    Parameters
    ----------
    service_time:
        Measured seconds of processing per input item (unloaded).
    queue_capacity:
        Items that fit in memory before thrashing begins (the paper's
        1.5 GB page pool, scaled to item counts).
    thrash_factor:
        Multiplier on service time per unit of queue-capacity overshoot;
        models allocator/paging pressure as queues grow.
    """

    def __init__(
        self,
        service_time: float,
        queue_capacity: float = 50_000.0,
        thrash_factor: float = 1.5,
    ):
        if service_time <= 0:
            raise ValueError("service time must be positive")
        self.service_time = service_time
        self.queue_capacity = queue_capacity
        self.thrash_factor = thrash_factor

    @property
    def capacity(self) -> float:
        """Unloaded capacity in items/second."""
        return 1.0 / self.service_time

    def offered(self, rate: float, duration: float = 60.0, steps: int = 600) -> QueueingResult:
        """Simulate ``duration`` seconds of arrivals at ``rate``.

        Fluid approximation: per time step, ``rate * dt`` items arrive and
        the server drains at ``1 / effective_service_time`` where the
        effective service time inflates once the queue passes capacity.
        """
        dt = duration / steps
        queue = 0.0
        processed = 0.0
        latency_accum = 0.0
        for _ in range(steps):
            # Thrash is driven by the backlog carried into the step, and
            # arrivals drain concurrently with service within the step —
            # otherwise a step's worth of arrivals (rate * dt) would
            # spuriously saturate small queue capacities even under load.
            overshoot = max(0.0, queue / self.queue_capacity - 1.0)
            eff_service = self.service_time * (1.0 + self.thrash_factor * overshoot)
            drained = min(queue + rate * dt, dt / eff_service)
            queue += rate * dt - drained
            processed += drained
            # Little's law contribution for this step.
            latency_accum += queue * dt
        achieved = processed / duration
        mean_latency = latency_accum / processed if processed else float("inf")
        return QueueingResult(
            offered_rate=rate,
            achieved_throughput=achieved,
            mean_latency=mean_latency,
            final_queue_length=queue,
            saturated=queue > self.queue_capacity,
        )

    def sweep(self, rates: Iterable[float], duration: float = 60.0) -> list[QueueingResult]:
        return [self.offered(r, duration) for r in rates]
