"""Throughput and latency instrumentation, plus the queueing model.

The paper's evaluation reports (a) processing throughput for fixed-size
workloads, (b) per-operator processing cost, and (c) throughput curves
that *tail off* once the offered stream rate exceeds engine capacity
because queues grow until the page pool is exhausted (Figures 8 and 9).

Absolute 2006 C++ numbers are unreproducible in Python, so we reproduce
the shapes:

* :func:`measure_service_time` times a real run of a plan over a real
  workload, giving the engine's measured capacity (tuples/second);
* :class:`QueueingModel` turns a measured service time plus an offered
  arrival rate into the achieved throughput, average latency and queue
  growth of a bounded-memory push engine: while the queue fits in memory
  the server drains at its capacity, but beyond a memory threshold the
  effective service time inflates (thrash factor), reproducing the
  tail-off the paper observes when "the dataset exhausts the system's
  memory as queues grow".
"""

from __future__ import annotations

import json
import threading
import time
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

#: Default latency bucket upper bounds, in seconds.  A coarse log ladder
#: from 10 microseconds (one cheap cached solve) to 10 seconds (a stuck
#: drain round); observations beyond the last bound land in the implicit
#: +Inf overflow bucket.  Fixed boundaries are what make histograms from
#: different processes (shard workers, benchmark runs) merge exactly.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
)


@dataclass
class Counter:
    """A named, resettable event counter.

    Thread-safe: the network server's event-loop thread bumps the same
    registry objects (``server.*``, ``replay.*``) that the engine
    thread reads and resets, and ``value += by`` is a read-modify-write
    that loses increments under that interleaving.  A per-counter lock
    makes :meth:`bump`/:meth:`reset` linearizable; the uncontended
    acquire is ~100 ns, which every bump site already dwarfs.  Reads of
    ``value`` stay lock-free — a snapshot may be one bump stale, never
    torn (ints swap atomically under the GIL).
    """

    name: str
    value: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def bump(self, by: int = 1) -> None:
        with self._lock:
            self.value += by

    def reset(self) -> None:
        with self._lock:
            self.value = 0


@dataclass
class Gauge:
    """A named, settable level (e.g. currently-open breaker keys).

    Counters only accumulate; gauges report a current state that can go
    down as well as up, which is what the resilience layer exports for
    breaker occupancy and queue depths.  Locked like :class:`Counter`
    (:meth:`add` is the racy read-modify-write; :meth:`set` takes the
    lock too so a concurrent ``add`` is never half-applied over it).
    """

    name: str
    value: float = 0.0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def add(self, by: float = 1.0) -> None:
        with self._lock:
            self.value += by

    def reset(self) -> None:
        with self._lock:
            self.value = 0.0


class Histogram:
    """A fixed-bucket latency histogram with exact merging.

    Bucket boundaries are the *upper bounds* of each bucket (ascending),
    with an implicit +Inf overflow bucket at the end, mirroring the
    Prometheus histogram model.  Because the boundaries are fixed at
    construction, two histograms with the same boundaries merge by
    adding their per-bucket counts — this is how shard workers ship
    their solve timings home (one small snapshot per result payload)
    and how benchmark runs aggregate across rounds.

    ``observe`` is a single bisect plus three integer adds, cheap enough
    for per-solve instrumentation; the observability layer still guards
    every call site so a disabled run pays nothing at all.

    **Single-writer invariant (unlocked by design).**  Unlike
    :class:`Counter`/:class:`Gauge`, histograms are *not* locked:
    ``observe`` sits on the traced solve hot path and its three-field
    update would pay a lock per solve.  Instead every histogram has
    exactly one writer thread — the engine thread owns the ``runtime.*``
    and ``solver.*`` histograms (shard workers ship *snapshots* home
    and the parent merges them on the engine thread), and the network
    server's event-loop thread owns the ``server.*`` histograms it
    creates.  Cross-thread readers (``MetricsSnapshot.collect``) may
    see a snapshot mid-update — one observation's count/sum skew, never
    a torn bucket list.  Creating a histogram that two threads observe
    is a bug; give each thread its own and merge.
    """

    __slots__ = ("name", "bounds", "counts", "total", "count")

    def __init__(
        self,
        name: str,
        bounds: Sequence[float] | None = None,
    ):
        if bounds is None:
            bounds = DEFAULT_LATENCY_BUCKETS
        bounds = tuple(float(b) for b in bounds)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ValueError("bucket bounds must be strictly ascending")
        self.name = name
        self.bounds = bounds
        #: One slot per bound plus the +Inf overflow slot.
        self.counts = [0] * (len(bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation (seconds, for the latency histograms)."""
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1

    def merge(self, other: "Histogram | Mapping") -> None:
        """Fold another histogram (or its ``as_dict`` form) into this one.

        Merging requires identical bucket boundaries — the snapshot a
        worker ships is built from the same ``DEFAULT_LATENCY_BUCKETS``
        module constant, so this holds by construction; a mismatch is a
        programming error and raises.
        """
        if isinstance(other, Mapping):
            other = Histogram.from_dict(self.name, other)
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds: "
                f"{self.name!r}"
            )
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.total += other.total
        self.count += other.count

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile by linear interpolation within a bucket.

        Observations in the overflow bucket report the last finite bound
        (the histogram cannot see beyond its ladder).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        running = 0
        for i, c in enumerate(self.counts):
            running += c
            if running >= rank and c:
                if i >= len(self.bounds):
                    return self.bounds[-1]
                lo = self.bounds[i - 1] if i else 0.0
                hi = self.bounds[i]
                frac = (rank - (running - c)) / c
                return lo + frac * (hi - lo)
        return self.bounds[-1]

    def reset(self) -> None:
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0

    def as_dict(self) -> dict:
        """JSON-ready snapshot (mergeable via :meth:`merge`)."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.total,
            "count": self.count,
        }

    @classmethod
    def from_dict(cls, name: str, data: Mapping) -> "Histogram":
        hist = cls(name, data["bounds"])
        counts = list(data["counts"])
        if len(counts) != len(hist.counts):
            raise ValueError(f"histogram {name!r}: malformed counts")
        hist.counts = [int(c) for c in counts]
        hist.total = float(data["sum"])
        hist.count = int(data["count"])
        return hist


class CounterRegistry:
    """Process-wide named counters and gauges — the shared stats surface.

    The equation-system solver (``equation_system.row_solves``), the
    solve cache (``solve_cache.hits`` / ``.misses`` / ``.evictions``)
    and the resilience layer (``resilience.breaker.*``) register here,
    so benchmarks and ablations read and reset one place instead of
    poking mutable class attributes.
    """

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        # Guards get-or-create only: without it, two threads resolving
        # the same name for the first time each build an object and one
        # thread keeps bumping an orphan the registry never reports.
        self._create_lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        """Get or create the named counter."""
        found = self._counters.get(name)
        if found is None:
            with self._create_lock:
                found = self._counters.get(name)
                if found is None:
                    found = self._counters[name] = Counter(name)
        return found

    def gauge(self, name: str) -> Gauge:
        """Get or create the named gauge."""
        found = self._gauges.get(name)
        if found is None:
            with self._create_lock:
                found = self._gauges.get(name)
                if found is None:
                    found = self._gauges[name] = Gauge(name)
        return found

    def histogram(
        self, name: str, bounds: Sequence[float] | None = None
    ) -> Histogram:
        """Get or create the named histogram (bounds fixed on creation)."""
        found = self._histograms.get(name)
        if found is None:
            with self._create_lock:
                found = self._histograms.get(name)
                if found is None:
                    found = self._histograms[name] = Histogram(name, bounds)
        return found

    def value(self, name: str) -> int:
        return self.counter(name).value

    def snapshot(self, prefix: str = "") -> dict[str, int]:
        """Current counter values, optionally restricted to a prefix."""
        return {
            name: c.value
            for name, c in sorted(self._counters.items())
            if name.startswith(prefix)
        }

    def gauge_snapshot(self, prefix: str = "") -> dict[str, float]:
        """Current gauge values, optionally restricted to a prefix."""
        return {
            name: g.value
            for name, g in sorted(self._gauges.items())
            if name.startswith(prefix)
        }

    def histogram_snapshot(self, prefix: str = "") -> dict[str, dict]:
        """Current histogram snapshots, optionally prefix-restricted."""
        return {
            name: h.as_dict()
            for name, h in sorted(self._histograms.items())
            if name.startswith(prefix)
        }

    def reset(self, *names: str) -> None:
        """Reset the named metrics, or everything when none given."""
        targets = names or (
            tuple(self._counters)
            + tuple(self._gauges)
            + tuple(self._histograms)
        )
        for name in targets:
            if name in self._counters:
                self._counters[name].reset()
            if name in self._gauges:
                self._gauges[name].reset()
            if name in self._histograms:
                self._histograms[name].reset()


#: The default registry used by the solver, cache, and benchmarks.
GLOBAL_COUNTERS = CounterRegistry()


def get_counter(name: str) -> Counter:
    """Get or create a counter in the global registry."""
    return GLOBAL_COUNTERS.counter(name)


def get_gauge(name: str) -> Gauge:
    """Get or create a gauge in the global registry."""
    return GLOBAL_COUNTERS.gauge(name)


def get_histogram(
    name: str, bounds: Sequence[float] | None = None
) -> Histogram:
    """Get or create a histogram in the global registry."""
    return GLOBAL_COUNTERS.histogram(name, bounds)


def counter_snapshot(prefix: str = "") -> Mapping[str, int]:
    return GLOBAL_COUNTERS.snapshot(prefix)


def gauge_snapshot(prefix: str = "") -> Mapping[str, float]:
    return GLOBAL_COUNTERS.gauge_snapshot(prefix)


def histogram_snapshot(prefix: str = "") -> Mapping[str, dict]:
    return GLOBAL_COUNTERS.histogram_snapshot(prefix)


def reset_counters(*names: str) -> None:
    GLOBAL_COUNTERS.reset(*names)


# ----------------------------------------------------------------------
# exported snapshots
# ----------------------------------------------------------------------
def _prometheus_name(name: str) -> str:
    """Registry name -> Prometheus metric name (``repro_`` namespace)."""
    safe = "".join(
        c if c.isalnum() or c == "_" else "_" for c in name
    )
    return f"repro_{safe}"


@dataclass
class MetricsSnapshot:
    """A point-in-time export of every counter, gauge and histogram.

    The one serialization surface for the observability layer: the CLI's
    ``--metrics-out`` writes one of these (JSON, or Prometheus text
    exposition format when the path ends in ``.prom``), and the
    benchmark harness embeds one in every ``BENCH_<name>.json`` so the
    recorded perf trajectory carries latency distributions, not just
    wall time.
    """

    counters: dict[str, int] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, dict] = field(default_factory=dict)

    @classmethod
    def collect(
        cls,
        prefix: str = "",
        registry: CounterRegistry | None = None,
    ) -> "MetricsSnapshot":
        reg = registry or GLOBAL_COUNTERS
        return cls(
            counters=reg.snapshot(prefix),
            gauges=reg.gauge_snapshot(prefix),
            histograms=reg.histogram_snapshot(prefix),
        )

    def as_dict(self) -> dict:
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {k: dict(v) for k, v in self.histograms.items()},
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (0.0.4), one family per metric.

        Counter/gauge families are single samples; histograms expand to
        the standard cumulative ``_bucket{le=...}`` series plus ``_sum``
        and ``_count``.
        """
        lines: list[str] = []
        for name, value in sorted(self.counters.items()):
            pname = _prometheus_name(name)
            lines.append(f"# TYPE {pname} counter")
            lines.append(f"{pname} {value}")
        for name, value in sorted(self.gauges.items()):
            pname = _prometheus_name(name)
            lines.append(f"# TYPE {pname} gauge")
            lines.append(f"{pname} {value}")
        for name, data in sorted(self.histograms.items()):
            pname = _prometheus_name(name)
            lines.append(f"# TYPE {pname} histogram")
            cumulative = 0
            for bound, count in zip(data["bounds"], data["counts"]):
                cumulative += count
                lines.append(
                    f'{pname}_bucket{{le="{bound}"}} {cumulative}'
                )
            cumulative += data["counts"][-1]
            lines.append(f'{pname}_bucket{{le="+Inf"}} {cumulative}')
            lines.append(f"{pname}_sum {data['sum']}")
            lines.append(f"{pname}_count {data['count']}")
        return "\n".join(lines) + "\n"

    def write(self, path) -> None:
        """Write to ``path``: Prometheus text for ``.prom``, else JSON."""
        import pathlib

        p = pathlib.Path(path)
        if p.suffix == ".prom":
            p.write_text(self.to_prometheus())
        else:
            p.write_text(self.to_json() + "\n")


def absorb_cache_stats(prefix: str, stats) -> None:
    """Fold a mergeable cache snapshot into the global registry.

    ``stats`` is a :class:`~repro.core.solve_cache.CacheStats` (or any
    object with ``hits`` / ``misses`` / ``evictions`` ints) — typically
    a per-worker *delta* shipped back with a shard result payload.
    Counts accumulate under ``{prefix}.hits`` / ``.misses`` /
    ``.evictions``; ``entries`` is a level, not an event count, so it is
    reported as the ``{prefix}.entries`` gauge instead.
    """
    get_counter(f"{prefix}.hits").bump(int(stats.hits))
    get_counter(f"{prefix}.misses").bump(int(stats.misses))
    get_counter(f"{prefix}.evictions").bump(int(stats.evictions))
    entries = getattr(stats, "entries", None)
    if entries is not None:
        get_gauge(f"{prefix}.entries").set(float(entries))


class Stopwatch:
    """Minimal wall-clock stopwatch built on the monotonic clock."""

    def __init__(self):
        self._start: float | None = None
        self.elapsed = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed += time.perf_counter() - self._start
        self._start = None


@dataclass
class RunMetrics:
    """Outcome of a measured plan execution."""

    items_in: int
    items_out: int
    elapsed_seconds: float

    @property
    def throughput(self) -> float:
        """Input items processed per second."""
        if self.elapsed_seconds <= 0:
            return float("inf")
        return self.items_in / self.elapsed_seconds

    @property
    def service_time(self) -> float:
        """Mean seconds of processing per input item."""
        if self.items_in == 0:
            return 0.0
        return self.elapsed_seconds / self.items_in


def measure_run(
    feed: Callable[[], int],
) -> RunMetrics:
    """Time ``feed`` (which pushes a workload and returns output count).

    ``feed`` must return the number of outputs produced; the number of
    inputs is returned by convention as ``feed.items`` if present, else
    equals the outputs.
    """
    with Stopwatch() as sw:
        outputs = feed()
    inputs = getattr(feed, "items", outputs)
    return RunMetrics(items_in=inputs, items_out=outputs, elapsed_seconds=sw.elapsed)


def measure_service_time(
    process_one: Callable[[object], object],
    workload: Sequence,
) -> RunMetrics:
    """Time a per-item processing function over a workload."""
    n_out = 0
    with Stopwatch() as sw:
        for item in workload:
            result = process_one(item)
            if result:
                n_out += len(result) if isinstance(result, list) else 1
    return RunMetrics(
        items_in=len(workload), items_out=n_out, elapsed_seconds=sw.elapsed
    )


@dataclass
class QueueingResult:
    """Steady-state outcome of offering a rate to a bounded-memory server."""

    offered_rate: float
    achieved_throughput: float
    mean_latency: float
    final_queue_length: float
    saturated: bool


class QueueingModel:
    """Deterministic fluid model of a push engine with a page pool.

    Parameters
    ----------
    service_time:
        Measured seconds of processing per input item (unloaded).
    queue_capacity:
        Items that fit in memory before thrashing begins (the paper's
        1.5 GB page pool, scaled to item counts).
    thrash_factor:
        Multiplier on service time per unit of queue-capacity overshoot;
        models allocator/paging pressure as queues grow.
    """

    def __init__(
        self,
        service_time: float,
        queue_capacity: float = 50_000.0,
        thrash_factor: float = 1.5,
    ):
        if service_time <= 0:
            raise ValueError("service time must be positive")
        self.service_time = service_time
        self.queue_capacity = queue_capacity
        self.thrash_factor = thrash_factor

    @property
    def capacity(self) -> float:
        """Unloaded capacity in items/second."""
        return 1.0 / self.service_time

    def offered(self, rate: float, duration: float = 60.0, steps: int = 600) -> QueueingResult:
        """Simulate ``duration`` seconds of arrivals at ``rate``.

        Fluid approximation: per time step, ``rate * dt`` items arrive and
        the server drains at ``1 / effective_service_time`` where the
        effective service time inflates once the queue passes capacity.
        """
        dt = duration / steps
        queue = 0.0
        processed = 0.0
        latency_accum = 0.0
        for _ in range(steps):
            # Thrash is driven by the backlog carried into the step, and
            # arrivals drain concurrently with service within the step —
            # otherwise a step's worth of arrivals (rate * dt) would
            # spuriously saturate small queue capacities even under load.
            overshoot = max(0.0, queue / self.queue_capacity - 1.0)
            eff_service = self.service_time * (1.0 + self.thrash_factor * overshoot)
            drained = min(queue + rate * dt, dt / eff_service)
            queue += rate * dt - drained
            processed += drained
            # Little's law contribution for this step.
            latency_accum += queue * dt
        achieved = processed / duration
        mean_latency = latency_accum / processed if processed else float("inf")
        return QueueingResult(
            offered_rate=rate,
            achieved_throughput=achieved,
            mean_latency=mean_latency,
            final_queue_length=queue,
            saturated=queue > self.queue_capacity,
        )

    def sweep(self, rates: Iterable[float], duration: float = 60.0) -> list[QueueingResult]:
        return [self.offered(r, duration) for r in rates]
