"""Lowering of logical plans to the discrete baseline engine.

The mirror image of :mod:`repro.core.transform`: the same logical nodes
become tuple-at-a-time operators (filter, map, nested-loop sliding-window
join, windowed aggregates), so benchmark comparisons run identical query
shapes through both engines.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.errors import PlanError
from .operators import (
    DiscreteFilter,
    DiscreteMap,
    DiscreteNestedLoopJoin,
    DiscreteWindowAggregate,
)
from .plan import DiscreteNodeRef, DiscretePlan
from .tuples import StreamTuple

if TYPE_CHECKING:  # pragma: no cover
    from ..query.planner import PlannedQuery


class LoweredQuery:
    """A discrete plan plus input-wiring metadata."""

    def __init__(self, plan: DiscretePlan, stream_sources: dict[str, list[str]]):
        self.plan = plan
        self.stream_sources = stream_sources

    def push(self, stream: str, tup: StreamTuple) -> list[StreamTuple]:
        sources = self.stream_sources.get(stream)
        if not sources:
            raise PlanError(
                f"query has no scan of stream {stream!r}; "
                f"streams: {list(self.stream_sources)}"
            )
        outputs: list[StreamTuple] = []
        for source in sources:
            outputs.extend(self.plan.push(source, tup))
        return outputs

    def flush(self) -> list[StreamTuple]:
        return self.plan.flush()

    def reset(self) -> None:
        self.plan.reset()


def to_discrete_plan(planned: "PlannedQuery") -> LoweredQuery:
    """Lower a planned query to a discrete (tuple) plan."""
    from ..query.logical import (
        LogicalAggregate,
        LogicalFilter,
        LogicalJoin,
        LogicalNode,
        LogicalProject,
        LogicalScan,
    )

    plan = DiscretePlan("discrete")

    def lower(node: LogicalNode) -> tuple[DiscreteNodeRef, str | None]:
        if isinstance(node, LogicalScan):
            ref = plan.add_source(node.source_name)
            return ref, node.binding_name
        if isinstance(node, LogicalFilter):
            child, alias = lower(node.child)
            op = DiscreteFilter(node.predicate, alias=alias)
            return plan.add_operator(op, [child]), alias
        if isinstance(node, LogicalProject):
            child, alias = lower(node.child)
            op = DiscreteMap(node.projections, alias=alias)
            return plan.add_operator(op, [child]), None
        if isinstance(node, LogicalJoin):
            left, _ = lower(node.left)
            right, _ = lower(node.right)
            op = DiscreteNestedLoopJoin(
                node.predicate,
                left_alias=node.left_alias,
                right_alias=node.right_alias,
                window=node.window,
            )
            return plan.add_operator(op, [(left, 0), (right, 1)]), None
        if isinstance(node, LogicalAggregate):
            child, _ = lower(node.child)
            op = DiscreteWindowAggregate(
                node.attr.split(".")[-1],
                node.func,
                window=node.window,
                slide=node.slide,
                output_attr=node.output_attr,
                group_fields=tuple(f.split(".")[-1] for f in node.group_fields),
            )
            return plan.add_operator(op, [child]), None
        raise PlanError(f"cannot lower logical node {node!r}")

    root, _ = lower(planned.root)
    plan.set_output(root)
    return LoweredQuery(plan, dict(planned.stream_sources))
