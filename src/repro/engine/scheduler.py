"""Multi-query runtime: queued inputs, round-robin scheduling, resilience.

The paper's prototype ran inside Borealis, a push engine where operators
consume from queues under a scheduler and queue growth (against the page
pool) is what produces the throughput tail-offs of Figs. 8/9.  This
module provides that runtime shape for the reproduction: any number of
registered queries (continuous or discrete) share named input streams;
arrivals are enqueued, a round-robin scheduler drains the queues in
batches, and queue depths are observable — the live counterpart of the
fluid :class:`~repro.engine.metrics.QueueingModel`.

On top of the seed runtime, two production disciplines:

* **Fault isolation** — a failing continuous solve (any
  :class:`~repro.core.errors.PulseError`) no longer kills the step.  The
  offending (query, key) is quarantined through the per-key
  :class:`~repro.engine.resilience.CircuitBreaker` and, when the query
  was registered with a discrete ``fallback``, the segment is sampled
  into tuples and replayed through the lowered plan — the paper's
  model-invalidation fallback, automated.
* **Back-pressure** — ``queue_capacity`` is enforced, not merely
  reported, under an explicit policy: ``"block"`` refuses the arrival
  (the producer must retry), ``"shed-newest"`` drops it, and
  ``"shed-oldest"`` evicts the oldest queued items to make room.  All
  sheds are metered in the :mod:`repro.engine.metrics` registry.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Mapping

from ..core.batch_solver import (
    incremental_enabled,
    solve_tasks,
    task_root_query,
)
from ..core.delta import DeltaTracker
from ..core.errors import PlanError, PulseError

#: What the per-item fault boundary contains: library failures plus the
#: errors malformed/corrupt items raise inside operator evaluation
#: (missing fields, non-numeric values).  Programming errors outside
#: these classes still propagate.
_ITEM_FAULTS = (PulseError, KeyError, ValueError, TypeError, ArithmeticError)
from ..core.operators.sampler import OutputSampler
from ..core.segment import (
    Segment,
    ensure_segment_ids_above,
    segment_id_watermark,
)
from ..core.transform import TransformedQuery
from . import tracing
from .durability import Durability, RecoveryReport
from .lowering import LoweredQuery
from .metrics import get_counter, get_histogram
from .parallel import ParallelSolveDispatcher
from .resilience import BreakerConfig, CircuitBreaker, SlowSolveWatchdog
from .tuples import StreamTuple

#: Version stamp inside runtime checkpoint payloads; bumped when the
#: state-dict shape changes incompatibly.
RUNTIME_SNAPSHOT_VERSION = 1

#: Valid back-pressure policies for :class:`QueryRuntime`.
BACKPRESSURE_POLICIES = ("block", "shed-oldest", "shed-newest")


@dataclass
class _Registration:
    name: str
    query: TransformedQuery | LoweredQuery
    streams: tuple[str, ...]
    #: Discrete lowered twin used when the breaker quarantines a key or
    #: a continuous push fails; ``None`` sheds instead of degrading.
    fallback: LoweredQuery | None = None
    #: Sampling period used to turn a quarantined segment into tuples
    #: for the fallback plan; defaults to the query's effective sample
    #: period, then 1.0.
    fallback_period: float | None = None
    queues: dict[str, deque] = field(default_factory=dict)
    outputs: list = field(default_factory=list)
    items_processed: int = 0
    #: Total queued items across this query's streams, maintained at
    #: enqueue/drain time so the scheduler loop never re-sums queues.
    pending: int = 0
    errors: int = 0
    fallback_items: int = 0
    last_error: Exception | None = None
    _sampler: OutputSampler | None = None
    #: The error bound this registration's equation systems are solved
    #: at right now.  For a shared graph serving several subscribers it
    #: is the *tightest* subscribed bound (paper Sec. IV: a solution at
    #: a tight bound is valid for every looser bound); ``None`` means
    #: the query's own plan bound applies unmodified.
    solve_bound: float | None = None
    #: Per-query change-set tracker for the incremental (delta) path.
    #: Derived observability state: not captured in checkpoints — a
    #: restored runtime re-learns the per-key trailer from the replayed
    #: arrivals themselves.
    delta: DeltaTracker = field(default_factory=DeltaTracker)

    def __post_init__(self) -> None:
        for stream in self.streams:
            self.queues[stream] = deque()

    def sampler(self) -> OutputSampler:
        if self._sampler is None:
            period = self.fallback_period
            if period is None:
                period = getattr(self.query, "effective_sample_period", None)
            self._sampler = OutputSampler(period if period else 1.0)
        return self._sampler


class QueryRuntime:
    """Hosts registered queries behind input queues.

    Parameters
    ----------
    batch_size:
        Items drained from one query's queues per scheduling round —
        small batches interleave queries fairly, large batches amortize
        scheduling overhead.
    queue_capacity:
        Total queued items across all queries before the back-pressure
        policy engages (the page-pool analogue).  ``None`` disables the
        check.
    backpressure:
        What happens to an arrival that would exceed capacity:
        ``"block"`` refuses it (``enqueue`` returns ``False``),
        ``"shed-newest"`` drops it, ``"shed-oldest"`` evicts the oldest
        queued items to admit it.
    breaker:
        A :class:`~repro.engine.resilience.CircuitBreaker` (or a
        :class:`~repro.engine.resilience.BreakerConfig` to build one)
        gating the continuous path per (query, key).  ``None`` disables
        quarantine; step failures still degrade to the fallback.
    num_shards:
        Key-partition width for the parallel solve path.  ``1`` (the
        default) is the untouched serial runtime.  Above 1, each drain
        round is *primed*: predicted root work is hash-partitioned by
        key and shipped to per-shard workers in ndarray batches before
        items are processed — processing itself still runs serially in
        arrival order, so outputs are bit-identical to ``num_shards=1``.
        The breaker and shed policies are per-key and therefore
        per-shard-local automatically.
    parallel:
        With ``num_shards > 1``: ``True`` backs each shard with its own
        single-worker process pool; ``False`` runs the same sharded
        path inline in this process (debugging); ``"auto"`` (default)
        uses pools only on multi-core hosts — a single core still gets
        the batched-sweep amortization without paying process IPC.
    slow_solve_budget_s:
        Latency budget per processed arrival.  When set, every item is
        timed and exceedances are flagged through the
        :class:`~repro.engine.resilience.SlowSolveWatchdog` counters
        (``resilience.watchdog.*``); ``None`` (the default) disables
        the timing entirely.  Independent of the observability switch,
        so production can watch latency without paying for tracing.
    durability:
        A :class:`~repro.engine.durability.Durability` coordinator.
        When set, every :meth:`enqueue` is WAL-logged *before* it can
        touch operator state, :meth:`checkpoint` snapshots the whole
        runtime atomically, and :meth:`restore` rebuilds state from
        the newest valid snapshot plus a WAL-tail replay.  ``None``
        (the default) is the ephemeral runtime, byte-for-byte the
        pre-durability hot path.
    """

    def __init__(
        self,
        batch_size: int = 64,
        queue_capacity: int | None = None,
        backpressure: str = "block",
        breaker: CircuitBreaker | BreakerConfig | None = None,
        num_shards: int = 1,
        parallel: "bool | str" = "auto",
        slow_solve_budget_s: float | None = None,
        durability: Durability | None = None,
    ):
        if batch_size < 1:
            raise ValueError("batch size must be at least 1")
        if backpressure not in BACKPRESSURE_POLICIES:
            raise ValueError(
                f"backpressure policy must be one of "
                f"{BACKPRESSURE_POLICIES}, got {backpressure!r}"
            )
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        self.batch_size = batch_size
        self.queue_capacity = queue_capacity
        self.backpressure = backpressure
        if isinstance(breaker, BreakerConfig):
            breaker = CircuitBreaker(breaker)
        self.breaker = breaker
        self.num_shards = num_shards
        self.parallel = parallel
        self._dispatcher: ParallelSolveDispatcher | None = None
        if num_shards > 1:
            self._dispatcher = ParallelSolveDispatcher(
                num_shards, parallel=parallel
            )
        self._durability = durability
        #: Sequence number of the most recent WAL-logged arrival; the
        #: durable resume point exposed to clients after recovery.
        self.ingest_seq = durability.last_seq if durability else 0
        self._replaying = False
        self._queries: dict[str, _Registration] = {}
        self._round_robin: deque[str] = deque()
        self._streams: set[str] = set()
        self._total_pending = 0
        self.items_enqueued = 0
        self.items_dropped = 0
        self.items_shed = 0
        self.step_errors = 0
        # Counter handles bound once here — the enqueue/step hot paths
        # never resolve registry names per event.
        self._shed_newest_counter = get_counter("runtime.shed_newest")
        self._shed_oldest_counter = get_counter("runtime.shed_oldest")
        self._blocked_counter = get_counter("runtime.blocked")
        self._step_errors_counter = get_counter("runtime.step_errors")
        self._fallback_unavailable_counter = get_counter(
            "runtime.fallback_unavailable"
        )
        self._fallback_errors_counter = get_counter("runtime.fallback_errors")
        self._fallback_items_counter = get_counter("runtime.fallback_items")
        self._watchdog = (
            SlowSolveWatchdog(slow_solve_budget_s)
            if slow_solve_budget_s is not None
            else None
        )
        # Handles bound once; observed only while observability is on
        # (or the watchdog is set), so a plain run never touches them.
        self._round_hist = get_histogram("runtime.round_seconds")
        self._arrival_hist = get_histogram("runtime.arrival_seconds")
        self._prime_hist = get_histogram("runtime.prime_seconds")

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        query: TransformedQuery | LoweredQuery,
        fallback: LoweredQuery | None = None,
        fallback_period: float | None = None,
    ) -> None:
        """Register a compiled query under a unique name.

        ``fallback`` (continuous queries only) names the discrete
        lowered twin that serves quarantined keys; see the class
        docstring.
        """
        if name in self._queries:
            raise PlanError(f"query {name!r} already registered")
        if fallback is not None and not isinstance(query, TransformedQuery):
            raise PlanError(
                "only continuous queries take a discrete fallback"
            )
        streams = tuple(query.stream_sources)
        reg = _Registration(
            name, query, streams,
            fallback=fallback, fallback_period=fallback_period,
        )
        self._queries[name] = reg
        self._round_robin.append(name)
        self._streams.update(streams)

    def unregister(self, name: str) -> None:
        reg = self._queries.pop(name, None)
        if reg is None:
            raise PlanError(f"query {name!r} is not registered")
        self._round_robin.remove(name)
        self._total_pending -= reg.pending
        self._streams = {
            s for r in self._queries.values() for s in r.streams
        }

    def rebind_bound(self, name: str, error_bound: float | None) -> None:
        """Re-target a continuous registration's solve bound in place.

        The shared-plan server calls this when the tightest subscribed
        bound over a graph changes (a tighter subscriber arrived, or
        the tightest one left).  The compiled plan and its operator
        state (join buffers, window accumulators) stay untouched —
        already-emitted outputs were solved at the previous bound and
        remain valid for every subscriber it served; only the recorded
        target for *future* solves moves.
        """
        reg = self._queries.get(name)
        if reg is None:
            raise PlanError(f"query {name!r} is not registered")
        if not isinstance(reg.query, TransformedQuery):
            raise PlanError(
                f"query {name!r} is discrete; only continuous "
                f"registrations carry a solve bound"
            )
        reg.solve_bound = None if error_bound is None else float(error_bound)

    def solve_bound(self, name: str) -> float | None:
        reg = self._queries.get(name)
        if reg is None:
            raise PlanError(f"query {name!r} is not registered")
        return reg.solve_bound

    def has_query(self, name: str) -> bool:
        return name in self._queries

    @property
    def query_names(self) -> list[str]:
        return list(self._queries)

    # ------------------------------------------------------------------
    # input
    # ------------------------------------------------------------------
    def enqueue(self, stream: str, item: Segment | StreamTuple) -> bool:
        """Queue one arrival for every query consuming ``stream``.

        Segments route to continuous queries, tuples to discrete ones.
        An unregistered stream name raises :class:`PlanError` — a silent
        drop there hides wiring bugs; a stream that is registered but
        has no query of the item's representation returns ``False``.
        At capacity the configured back-pressure policy decides: refuse
        (``block``), drop the arrival (``shed-newest``), or evict old
        queue entries to admit it (``shed-oldest``).
        """
        if stream not in self._streams:
            raise PlanError(
                f"stream {stream!r} is not consumed by any registered "
                f"query; known streams: {sorted(self._streams)}"
            )
        if self._durability is not None and not self._replaying:
            # Write-ahead: the arrival is durable before any operator
            # state can change.  Replay re-runs the same admission
            # logic, so back-pressure decisions are not re-logged.
            self.ingest_seq = self._durability.log((stream, item))
        want_segment = isinstance(item, Segment)
        targets = [
            reg
            for reg in self._queries.values()
            if stream in reg.queues
            and isinstance(reg.query, TransformedQuery) == want_segment
        ]
        if not targets:
            return False
        if self.queue_capacity is not None:
            shortfall = (
                self._total_pending + len(targets) - self.queue_capacity
            )
            if shortfall > 0 and self.backpressure == "shed-oldest":
                for _ in range(shortfall):
                    if not self._evict_oldest():
                        break
                shortfall = (
                    self._total_pending + len(targets) - self.queue_capacity
                )
            if shortfall > 0:
                self.items_dropped += 1
                if self.backpressure == "shed-newest":
                    self.items_shed += 1
                    self._shed_newest_counter.bump()
                else:
                    self._blocked_counter.bump()
                return False
        for reg in targets:
            reg.queues[stream].append(item)
            reg.pending += 1
            self._total_pending += 1
        self.items_enqueued += 1
        return True

    def _evict_oldest(self) -> bool:
        """Shed the oldest item of the deepest queue; ``False`` if empty."""
        deepest: deque | None = None
        owner: _Registration | None = None
        for reg in self._queries.values():
            for queue in reg.queues.values():
                if queue and (deepest is None or len(queue) > len(deepest)):
                    deepest = queue
                    owner = reg
        if deepest is None or owner is None:
            return False
        deepest.popleft()
        owner.pending -= 1
        self._total_pending -= 1
        self.items_shed += 1
        self._shed_oldest_counter.bump()
        return True

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def step(self) -> int:
        """One scheduling round: drain up to ``batch_size`` items from
        the next query in round-robin order.  Returns items processed.

        A :class:`PulseError` from any single item is contained: the
        error is counted, the breaker quarantines the (query, key), and
        the item degrades to the registration's fallback (if any) — the
        round continues.
        """
        if not self._round_robin:
            return 0
        name = self._round_robin[0]
        self._round_robin.rotate(-1)
        reg = self._queries[name]
        # Drain-then-process: the round's items are collected first (in
        # exactly the order the serial loop would have popped them —
        # processing never enqueues, so the split changes nothing), which
        # gives the sharded path one look at the whole round for priming.
        drained: list[tuple[str, Segment | StreamTuple]] = []
        while len(drained) < self.batch_size and reg.pending:
            for stream, queue in reg.queues.items():
                if not queue:
                    continue
                drained.append((stream, queue.popleft()))
                reg.pending -= 1
                self._total_pending -= 1
                if len(drained) >= self.batch_size:
                    break
        dispatcher = self._dispatcher
        use_dispatch = dispatcher is not None and isinstance(
            reg.query, TransformedQuery
        )
        observing = tracing.observability_enabled()
        watchdog = self._watchdog
        if not observing and watchdog is None:
            # The untouched fast path: zero instrumentation calls, zero
            # clock reads (pinned by ``tests/engine/test_tracing.py``).
            if use_dispatch:
                self._prime_round(reg, drained)
                dispatcher.activate()
            try:
                for stream, item in drained:
                    self._process_item(reg, stream, item)
                    reg.items_processed += 1
            finally:
                if use_dispatch:
                    dispatcher.deactivate()
            return len(drained)
        return self._step_observed(
            reg, drained, dispatcher if use_dispatch else None,
            observing, watchdog,
        )

    def _step_observed(
        self,
        reg: _Registration,
        drained: list,
        dispatcher: ParallelSolveDispatcher | None,
        observing: bool,
        watchdog: SlowSolveWatchdog | None,
    ) -> int:
        """The round's processing half with spans/timing enabled.

        Same control flow as the fast path in :meth:`step`; split out so
        the disabled case stays branch-minimal.  ``observing`` gates the
        histograms and spans; ``watchdog`` the per-arrival budget check.
        """
        tracer = tracing.current_tracer() if observing else None
        round_span = (
            tracer.start(
                "round", "round", query=reg.name, items=len(drained)
            )
            if tracer is not None
            else None
        )
        t_round = time.perf_counter()
        try:
            if dispatcher is not None:
                prime_span = (
                    tracer.start("prime", "prime", query=reg.name)
                    if tracer is not None
                    else None
                )
                t_prime = time.perf_counter()
                try:
                    self._prime_round(reg, drained)
                finally:
                    if observing:
                        self._prime_hist.observe(
                            time.perf_counter() - t_prime
                        )
                    if prime_span is not None:
                        tracer.finish(prime_span)
                dispatcher.activate()
            try:
                for stream, item in drained:
                    self._process_item_observed(
                        reg, stream, item, tracer, observing, watchdog
                    )
                    reg.items_processed += 1
            finally:
                if dispatcher is not None:
                    dispatcher.deactivate()
        finally:
            if observing:
                self._round_hist.observe(time.perf_counter() - t_round)
            if round_span is not None:
                tracer.finish(round_span)
        return len(drained)

    def _process_item_observed(
        self,
        reg: _Registration,
        stream: str,
        item: "Segment | StreamTuple",
        tracer,
        observing: bool,
        watchdog: SlowSolveWatchdog | None,
    ) -> None:
        """One arrival with an arrival span, emit event and budget check."""
        key = item.key if isinstance(item, Segment) else None
        before = len(reg.outputs)
        span = (
            tracer.start(
                "arrival", "arrival",
                query=reg.name, stream=stream, key=key,
            )
            if tracer is not None
            else None
        )
        delta_span = None
        if (
            tracer is not None
            and incremental_enabled()
            and isinstance(item, Segment)
            and isinstance(reg.query, TransformedQuery)
        ):
            # Classify (pure peek) for the span attributes; the counter
            # bump happens inside _process_item via observe().
            change = reg.delta.classify(stream, item)
            delta_span = tracer.start(
                "delta_apply", "delta_apply",
                query=reg.name,
                change=change.kind,
                content_changed=change.content_changed,
                seg_id=item.seg_id,
            )
        t0 = time.perf_counter()
        try:
            self._process_item(reg, stream, item)
        finally:
            elapsed = time.perf_counter() - t0
            emitted = len(reg.outputs) - before
            flagged = watchdog is not None and watchdog.check(
                reg.name, key, elapsed
            )
            if observing:
                self._arrival_hist.observe(elapsed)
            if tracer is not None:
                if delta_span is not None:
                    tracer.finish(delta_span, outputs=emitted)
                tracer.event("emit", "emit", outputs=emitted)
                if flagged:
                    tracer.event(
                        "slow_solve", "watchdog",
                        seconds=elapsed, budget_s=watchdog.budget_s,
                    )
                tracer.finish(span, outputs=emitted)

    def _prime_round(
        self,
        reg: _Registration,
        drained: list[tuple[str, Segment | StreamTuple]],
    ) -> None:
        """Batch the round's predicted solve work before processing.

        Two layers: root rows ship to the shard workers (stacked
        eigensolves), then the full predicted task list pre-solves
        through the cache funnel in one sweep so per-arrival processing
        hits the solve cache.

        Best-effort and read-only: keys the breaker would refuse are
        skipped (via the non-mutating :meth:`CircuitBreaker.peek`, so
        quarantine ticks are not consumed), and a priming error for one
        item only skips that item's prediction — the item itself still
        processes (and fails, if it must) through the normal path.
        """
        dispatcher = self._dispatcher
        assert dispatcher is not None
        items: list[tuple[str, Segment]] = []
        for stream, item in drained:
            if not isinstance(item, Segment):
                continue
            if self.breaker is not None and not self.breaker.peek(
                reg.name, item.key
            ):
                continue
            items.append((stream, item))
        if not items:
            return
        try:
            keyed_tasks = reg.query.prime_round(items)
        except _ITEM_FAULTS:
            return
        by_shard: dict[int, list] = {}
        prefill: list = []
        for key, task in keyed_tasks:
            prefill.append(task)
            row = task_root_query(task)
            if row is not None:
                by_shard.setdefault(dispatcher.shard_for_key(key), []).append(
                    row
                )
        if by_shard:
            dispatcher.prime(by_shard)
        if prefill:
            # Pre-solve the round's predicted tasks as ONE cache-funnel
            # sweep with the primed roots dispatched: process-side
            # solves then hit the solve cache instead of paying the
            # per-arrival kernel machinery.  Failures are recorded (not
            # raised) and never cached, so a poisoned task still fails
            # inside ``process`` exactly as the serial path would.
            dispatcher.activate()
            try:
                solve_tasks(prefill, failures={})
            except _ITEM_FAULTS:
                pass
            finally:
                dispatcher.deactivate()

    def _process_item(
        self, reg: _Registration, stream: str, item: Segment | StreamTuple
    ) -> None:
        """Push one item, containing failures per the resilience policy."""
        continuous = isinstance(reg.query, TransformedQuery)
        key = item.key if isinstance(item, Segment) else None
        if continuous and incremental_enabled() and isinstance(item, Segment):
            # Record the arrival in the per-query change-set (bumps the
            # delta.changes.* counters).  Counter bumps are permitted on
            # the fast path; only tracing calls are pinned to zero.
            reg.delta.observe(stream, item)
        if (
            continuous
            and self.breaker is not None
            and not self.breaker.allow(reg.name, key)
        ):
            reg.outputs.extend(self._fallback_push(reg, stream, item))
            return
        try:
            outputs = reg.query.push(stream, item)
        except _ITEM_FAULTS as exc:
            reg.errors += 1
            reg.last_error = exc
            self.step_errors += 1
            self._step_errors_counter.bump()
            if continuous:
                if self.breaker is not None:
                    self.breaker.record_failure(reg.name, key)
                reg.outputs.extend(self._fallback_push(reg, stream, item))
            # Discrete items that fail (e.g. corrupt tuples) are dropped
            # after being counted; there is no lower path to fall to.
            return
        if continuous and self.breaker is not None:
            self.breaker.record_success(reg.name, key)
        reg.outputs.extend(outputs)

    def _fallback_push(
        self, reg: _Registration, stream: str, item: Segment | StreamTuple
    ) -> list:
        """Degrade one quarantined/failed arrival to the discrete twin.

        Segments are sampled into tuples at the registration's fallback
        period and replayed through the lowered plan (passthrough to
        raw-tuple processing); outputs are tuples, flagged by presence
        in the same ``outputs()`` drain as the healthy segments.
        """
        if reg.fallback is None:
            self._fallback_unavailable_counter.bump()
            return []
        rows = (
            reg.sampler().tuples(item)
            if isinstance(item, Segment)
            else [dict(item)]
        )
        outputs: list = []
        for row in rows:
            row = dict(row)
            row.pop("__key", None)
            try:
                outputs.extend(reg.fallback.push(stream, StreamTuple(row)))
            except _ITEM_FAULTS:
                self._fallback_errors_counter.bump()
        reg.fallback_items += 1
        self._fallback_items_counter.bump()
        return outputs

    def run_until_idle(self, max_rounds: int = 1_000_000) -> int:
        """Schedule rounds until every queue is empty; returns items."""
        total = 0
        rounds = 0
        while self.total_pending and rounds < max_rounds:
            total += self.step()
            rounds += 1
        return total

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------
    def checkpoint_state(self) -> dict:
        """The runtime's incrementally-maintained state as one dict.

        Captures exactly what replay cannot cheaply rebuild: compiled
        plans *with* their operator state (segment buffers, window
        accumulators, group maps — the plan object graph is pickled
        wholesale by the snapshot writer), queued-but-unprocessed
        arrivals, undelivered outputs, per-query and runtime counters,
        breaker health, the round-robin cursor, and the global
        segment-id watermark.  Derived caches (solve cache, signature
        memos keyed off live objects) are rebuilt by replay instead.
        """
        return {
            "version": RUNTIME_SNAPSHOT_VERSION,
            "registrations": [
                {
                    "name": reg.name,
                    "query": reg.query,
                    "fallback": reg.fallback,
                    "fallback_period": reg.fallback_period,
                    "queues": {
                        stream: list(q) for stream, q in reg.queues.items()
                    },
                    "outputs": list(reg.outputs),
                    "items_processed": reg.items_processed,
                    "errors": reg.errors,
                    "fallback_items": reg.fallback_items,
                    "solve_bound": reg.solve_bound,
                }
                for reg in self._queries.values()
            ],
            "round_robin": list(self._round_robin),
            "counters": {
                "items_enqueued": self.items_enqueued,
                "items_dropped": self.items_dropped,
                "items_shed": self.items_shed,
                "step_errors": self.step_errors,
                "ingest_seq": self.ingest_seq,
            },
            "breaker": (
                self.breaker.state_dict() if self.breaker else None
            ),
            "seg_id_watermark": segment_id_watermark(),
        }

    def restore_state(self, state: Mapping) -> None:
        """Load a :meth:`checkpoint_state` dict, replacing all state.

        The runtime's *configuration* (batch size, capacity, policy,
        shards) is not part of the snapshot — build the runtime with
        the desired knobs, then restore into it.  Advances the global
        segment-id counter past the snapshot's watermark so ids issued
        after the restore never collide with restored segments (the
        identity-keyed operator memos rely on uniqueness).
        """
        version = state.get("version")
        if version != RUNTIME_SNAPSHOT_VERSION:
            raise PlanError(
                f"unsupported runtime snapshot version {version!r}"
            )
        self._queries.clear()
        self._round_robin.clear()
        self._streams.clear()
        self._total_pending = 0
        for entry in state["registrations"]:
            reg = _Registration(
                entry["name"],
                entry["query"],
                tuple(entry["query"].stream_sources),
                fallback=entry["fallback"],
                fallback_period=entry["fallback_period"],
            )
            for stream, items in entry["queues"].items():
                reg.queues[stream] = deque(items)
            reg.outputs = list(entry["outputs"])
            reg.items_processed = entry["items_processed"]
            reg.errors = entry["errors"]
            reg.fallback_items = entry["fallback_items"]
            # Pre-shared-plan snapshots carry no solve bound; absent
            # means "plan bound applies", which is what they meant.
            reg.solve_bound = entry.get("solve_bound")
            reg.pending = sum(len(q) for q in reg.queues.values())
            self._queries[reg.name] = reg
            self._streams.update(reg.streams)
            self._total_pending += reg.pending
        self._round_robin.extend(
            name for name in state["round_robin"] if name in self._queries
        )
        counters = state["counters"]
        self.items_enqueued = counters["items_enqueued"]
        self.items_dropped = counters["items_dropped"]
        self.items_shed = counters["items_shed"]
        self.step_errors = counters["step_errors"]
        self.ingest_seq = counters["ingest_seq"]
        if state.get("breaker") is not None:
            if self.breaker is None:
                self.breaker = CircuitBreaker()
            self.breaker.load_state(state["breaker"])
        ensure_segment_ids_above(state["seg_id_watermark"])

    def checkpoint(self) -> dict:
        """Atomically snapshot the runtime at its current ingest seq.

        Requires an attached durability coordinator; the WAL is
        fsynced first, the snapshot written (temp + rename), the WAL
        rotated and old files pruned.  Returns checkpoint info
        (path, seq, bytes, duration).
        """
        if self._durability is None:
            raise PlanError("checkpoint requires a durability coordinator")
        return self._durability.checkpoint(
            self.checkpoint_state(), seq=self.ingest_seq
        )

    def restore(self) -> RecoveryReport:
        """Recover from the durability directory: snapshot + WAL tail.

        Loads the newest valid snapshot (genesis when none), replays
        every intact WAL record after it through the normal
        :meth:`enqueue` path, and processes to idle.  Outputs produced
        by the replay are discarded — everything up to the recovered
        sequence number counts as delivered (or lost with the dead
        process); consumers resume from ``ingest_seq``.  Damaged WAL
        frames are skipped with accounting in the returned report,
        never raised.
        """
        if self._durability is None:
            raise PlanError("restore requires a durability coordinator")
        tracer = tracing.current_tracer()
        span = (
            tracer.start_detached("recovery", "recovery") if tracer else None
        )
        start = time.perf_counter()
        state, report, records = self._durability.recover()
        if state is not None:
            self.restore_state(state)
        self._replaying = True
        try:
            for seq, (stream, item) in records:
                if not self.enqueue(stream, item) and (
                    self.backpressure == "block"
                ):
                    # A blocked producer would have retried; drain and
                    # re-offer so replay never loses a durable record.
                    self.run_until_idle()
                    self.enqueue(stream, item)
                self.ingest_seq = seq
            self.run_until_idle()
        finally:
            self._replaying = False
        for reg in self._queries.values():
            reg.outputs.clear()
        self._durability.finish_recovery(report)
        report.duration_s = time.perf_counter() - start
        if tracer and span is not None:
            tracer.finish_detached(
                span,
                snapshot_seq=report.snapshot_seq,
                replayed=report.replayed,
                recovered_seq=report.recovered_seq,
            )
        return report

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Tear down the shard workers and durability appender."""
        if self._dispatcher is not None:
            self._dispatcher.shutdown()
            self._dispatcher = None
        if self._durability is not None:
            self._durability.close()

    def __enter__(self) -> "QueryRuntime":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------
    @property
    def total_pending(self) -> int:
        return self._total_pending

    def queue_depths(self) -> Mapping[str, int]:
        return {name: reg.pending for name, reg in self._queries.items()}

    def outputs(self, name: str) -> list:
        """Drain and return the named query's accumulated outputs."""
        reg = self._queries[name]
        out = reg.outputs
        reg.outputs = []
        return out

    def stats(self) -> Mapping[str, int]:
        return {
            name: reg.items_processed for name, reg in self._queries.items()
        }

    def resilience_stats(self) -> Mapping[str, object]:
        """Step errors, fallback traffic and breaker population."""
        stats: dict[str, object] = {
            "step_errors": self.step_errors,
            "items_shed": self.items_shed,
            "fallback_items": {
                name: reg.fallback_items
                for name, reg in self._queries.items()
            },
            "errors": {
                name: reg.errors for name, reg in self._queries.items()
            },
        }
        if self.breaker is not None:
            stats["breaker"] = self.breaker.snapshot()
            stats["recovered_fraction"] = self.breaker.recovered_fraction()
        if self._watchdog is not None:
            stats["watchdog"] = {
                "budget_s": self._watchdog.budget_s,
                "items_checked": self._watchdog.items_checked,
                "slow_solves": self._watchdog.slow_solves,
            }
        return stats

    def parallel_stats(self) -> Mapping[str, object] | None:
        """Shard dispatch/priming stats; ``None`` for the serial runtime."""
        if self._dispatcher is None:
            return None
        return self._dispatcher.stats()
