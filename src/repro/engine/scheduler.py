"""Multi-query runtime: queued inputs, round-robin scheduling.

The paper's prototype ran inside Borealis, a push engine where operators
consume from queues under a scheduler and queue growth (against the page
pool) is what produces the throughput tail-offs of Figs. 8/9.  This
module provides that runtime shape for the reproduction: any number of
registered queries (continuous or discrete) share named input streams;
arrivals are enqueued, a round-robin scheduler drains the queues in
batches, and queue depths are observable — the live counterpart of the
fluid :class:`~repro.engine.metrics.QueueingModel`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Mapping

from ..core.errors import PlanError
from ..core.segment import Segment
from ..core.transform import TransformedQuery
from .lowering import LoweredQuery
from .tuples import StreamTuple


@dataclass
class _Registration:
    name: str
    query: TransformedQuery | LoweredQuery
    streams: tuple[str, ...]
    queues: dict[str, deque] = field(default_factory=dict)
    outputs: list = field(default_factory=list)
    items_processed: int = 0
    #: Total queued items across this query's streams, maintained at
    #: enqueue/drain time so the scheduler loop never re-sums queues.
    pending: int = 0

    def __post_init__(self) -> None:
        for stream in self.streams:
            self.queues[stream] = deque()


class QueryRuntime:
    """Hosts registered queries behind input queues.

    Parameters
    ----------
    batch_size:
        Items drained from one query's queues per scheduling round —
        small batches interleave queries fairly, large batches amortize
        scheduling overhead.
    queue_capacity:
        Total queued items across all queries before :meth:`enqueue`
        reports back-pressure (the page-pool analogue).  ``None``
        disables the check.
    """

    def __init__(
        self,
        batch_size: int = 64,
        queue_capacity: int | None = None,
    ):
        if batch_size < 1:
            raise ValueError("batch size must be at least 1")
        self.batch_size = batch_size
        self.queue_capacity = queue_capacity
        self._queries: dict[str, _Registration] = {}
        self._round_robin: deque[str] = deque()
        self._total_pending = 0
        self.items_enqueued = 0
        self.items_dropped = 0

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(
        self, name: str, query: TransformedQuery | LoweredQuery
    ) -> None:
        """Register a compiled query under a unique name."""
        if name in self._queries:
            raise PlanError(f"query {name!r} already registered")
        streams = tuple(query.stream_sources)
        reg = _Registration(name, query, streams)
        self._queries[name] = reg
        self._round_robin.append(name)

    def unregister(self, name: str) -> None:
        reg = self._queries.pop(name, None)
        if reg is None:
            raise PlanError(f"query {name!r} is not registered")
        self._round_robin.remove(name)
        self._total_pending -= reg.pending

    @property
    def query_names(self) -> list[str]:
        return list(self._queries)

    # ------------------------------------------------------------------
    # input
    # ------------------------------------------------------------------
    def enqueue(self, stream: str, item: Segment | StreamTuple) -> bool:
        """Queue one arrival for every query consuming ``stream``.

        Segments route to continuous queries, tuples to discrete ones.
        Returns ``False`` (and drops the item) when the runtime is at
        queue capacity — the observable back-pressure signal.
        """
        if (
            self.queue_capacity is not None
            and self.total_pending >= self.queue_capacity
        ):
            self.items_dropped += 1
            return False
        routed = False
        want_segment = isinstance(item, Segment)
        for reg in self._queries.values():
            if stream not in reg.queues:
                continue
            is_continuous = isinstance(reg.query, TransformedQuery)
            if is_continuous != want_segment:
                continue
            reg.queues[stream].append(item)
            reg.pending += 1
            self._total_pending += 1
            routed = True
        if routed:
            self.items_enqueued += 1
        return routed

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def step(self) -> int:
        """One scheduling round: drain up to ``batch_size`` items from
        the next query in round-robin order.  Returns items processed."""
        if not self._round_robin:
            return 0
        name = self._round_robin[0]
        self._round_robin.rotate(-1)
        reg = self._queries[name]
        processed = 0
        while processed < self.batch_size and reg.pending:
            for stream, queue in reg.queues.items():
                if not queue:
                    continue
                item = queue.popleft()
                reg.pending -= 1
                self._total_pending -= 1
                reg.outputs.extend(reg.query.push(stream, item))
                reg.items_processed += 1
                processed += 1
                if processed >= self.batch_size:
                    break
        return processed

    def run_until_idle(self, max_rounds: int = 1_000_000) -> int:
        """Schedule rounds until every queue is empty; returns items."""
        total = 0
        rounds = 0
        while self.total_pending and rounds < max_rounds:
            total += self.step()
            rounds += 1
        return total

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------
    @property
    def total_pending(self) -> int:
        return self._total_pending

    def queue_depths(self) -> Mapping[str, int]:
        return {name: reg.pending for name, reg in self._queries.items()}

    def outputs(self, name: str) -> list:
        """Drain and return the named query's accumulated outputs."""
        reg = self._queries[name]
        out = reg.outputs
        reg.outputs = []
        return out

    def stats(self) -> Mapping[str, int]:
        return {
            name: reg.items_processed for name, reg in self._queries.items()
        }
