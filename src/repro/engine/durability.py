"""Atomic snapshots + WAL coordination: the engine's durability story.

A checkpoint is one file written atomically (write temp → flush →
fsync → rename) carrying a versioned, CRC-guarded pickle of the
engine's *incrementally-maintained* state: fitted segments sitting in
operator buffers, scheduler queues, circuit-breaker health, and the
segment-id watermark.  Derived caches (solve cache, signature memos)
are deliberately *not* checkpointed — they repopulate during replay,
and persisting them would only widen the surface a corrupt file can
poison.

Recovery is "newest valid snapshot wins": snapshot files are tried
newest-first and a damaged one (bad magic, CRC mismatch, unpicklable
body) is *skipped with accounting*, falling back to the next older —
a half-written snapshot must never brick recovery when an older good
one plus a longer WAL replay reaches the same state.

The replay contract is the paper-level determinism property the
parity tests pin: the engine's output is a pure function of arrival
order, so ``snapshot(seq=k)`` + WAL records ``k+1..n`` reconverges
bit-exactly with a process that never died.
"""

from __future__ import annotations

import os
import pickle
import struct
import time
import zlib
from dataclasses import dataclass, field

from .metrics import get_counter, get_histogram
from .tracing import current_tracer
from .wal import (
    WalCorruption,
    WalError,
    WalReadStats,
    WriteAheadLog,
    read_wal,
)

SNAPSHOT_MAGIC = b"PSNAPV01"
SNAPSHOT_VERSION = 1

_SNAP_HEADER = struct.Struct("<IQQI")  # version, seq, payload len, crc32


class SnapshotError(WalError):
    """A snapshot file failed validation (callers fall back to older)."""

    def __init__(self, message: str, path: str = ""):
        super().__init__(message)
        self.path = path


def _snapshot_name(seq: int) -> str:
    return f"snapshot-{seq:016d}.snap"


def _is_snapshot_name(name: str) -> bool:
    return (
        name.startswith("snapshot-")
        and name.endswith(".snap")
        and name[9:-5].isdigit()
    )


def write_snapshot(directory: str | os.PathLike, seq: int, state: object) -> str:
    """Atomically persist ``state`` as the checkpoint at sequence ``seq``.

    Write-temp + fsync + rename: a crash at any instant leaves either
    the complete new file or no new file — never a half-snapshot under
    the final name.  Returns the snapshot path.
    """
    directory = os.fspath(directory)
    os.makedirs(directory, exist_ok=True)
    payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    blob = (
        SNAPSHOT_MAGIC
        + _SNAP_HEADER.pack(SNAPSHOT_VERSION, seq, len(payload), crc)
        + payload
    )
    final = os.path.join(directory, _snapshot_name(seq))
    tmp = final + ".tmp"
    start = time.perf_counter()
    with open(tmp, "wb") as fh:
        fh.write(blob)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, final)
    dir_fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)
    get_histogram("checkpoint.write_seconds").observe(
        time.perf_counter() - start
    )
    get_counter("checkpoint.snapshots").bump()
    get_counter("checkpoint.bytes").bump(len(blob))
    return final


def read_snapshot(path: str | os.PathLike) -> tuple[int, object]:
    """Load and validate one snapshot file → ``(seq, state)``.

    Raises :class:`SnapshotError` on any damage; callers iterate
    newest-first and fall back.
    """
    path = os.fspath(path)
    with open(path, "rb") as fh:
        blob = fh.read()
    if blob[: len(SNAPSHOT_MAGIC)] != SNAPSHOT_MAGIC:
        raise SnapshotError("bad snapshot magic", path=path)
    off = len(SNAPSHOT_MAGIC)
    if len(blob) < off + _SNAP_HEADER.size:
        raise SnapshotError("snapshot header cut short", path=path)
    version, seq, length, crc = _SNAP_HEADER.unpack(
        blob[off : off + _SNAP_HEADER.size]
    )
    if version != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"unsupported snapshot version {version}", path=path
        )
    payload = blob[off + _SNAP_HEADER.size :]
    if len(payload) != length:
        raise SnapshotError("snapshot payload cut short", path=path)
    if (zlib.crc32(payload) & 0xFFFFFFFF) != crc:
        raise SnapshotError("snapshot crc mismatch", path=path)
    try:
        state = pickle.loads(payload)
    except Exception as exc:
        raise SnapshotError(
            f"snapshot decode failed: {exc}", path=path
        ) from exc
    return seq, state


def load_latest_snapshot(
    directory: str | os.PathLike,
) -> tuple[int, object, str] | None:
    """Newest *valid* snapshot → ``(seq, state, path)``, or ``None``.

    Damaged snapshots are skipped with ``recovery.bad_snapshots``
    counted; only when every candidate is bad (or none exist) does
    recovery start from genesis.
    """
    directory = os.fspath(directory)
    try:
        names = sorted(
            (n for n in os.listdir(directory) if _is_snapshot_name(n)),
            reverse=True,
        )
    except FileNotFoundError:
        return None
    for name in names:
        path = os.path.join(directory, name)
        try:
            seq, state = read_snapshot(path)
        except SnapshotError:
            get_counter("recovery.bad_snapshots").bump()
            continue
        return seq, state, path
    return None


def prune_snapshots(directory: str | os.PathLike, keep: int = 2) -> int:
    """Delete all but the ``keep`` newest snapshot files."""
    directory = os.fspath(directory)
    try:
        names = sorted(
            (n for n in os.listdir(directory) if _is_snapshot_name(n)),
            reverse=True,
        )
    except FileNotFoundError:
        return 0
    removed = 0
    for name in names[max(1, keep) :]:
        os.remove(os.path.join(directory, name))
        removed += 1
    return removed


@dataclass
class RecoveryReport:
    """What one recovery pass found and replayed — surfaced, not logged."""

    snapshot_seq: int = 0
    snapshot_path: str | None = None
    replayed: int = 0
    #: Highest sequence number durably recovered (snapshot or replay);
    #: clients resume ingest from here (records past it were lost with
    #: the un-fsynced tail — the at-least-once contract).
    recovered_seq: int = 0
    wal_stats: WalReadStats = field(default_factory=WalReadStats)
    duration_s: float = 0.0

    def as_dict(self) -> dict:
        return {
            "snapshot_seq": self.snapshot_seq,
            "snapshot_path": self.snapshot_path,
            "replayed": self.replayed,
            "recovered_seq": self.recovered_seq,
            "duration_s": self.duration_s,
            "wal": self.wal_stats.as_dict(),
        }


class Durability:
    """One engine's WAL + snapshot directory, with checkpoint/recover.

    Layout under ``directory``::

        wal-<firstseq>.log        append-only ingest frames
        snapshot-<seq>.snap       atomic checkpoints

    The coordinator is deliberately engine-agnostic: callers hand it
    opaque records to log and an opaque state object to snapshot, and
    drive replay themselves from :meth:`recover`'s record iterator —
    the scheduler and the network bridge log different record shapes
    (segments vs. raw tuples) through the same machinery.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        fsync_every: int = 32,
        snapshots_keep: int = 2,
        start_seq: int = 0,
    ):
        self.directory = os.fspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.snapshots_keep = snapshots_keep
        self.wal = WriteAheadLog(
            self.directory, fsync_every=fsync_every, start_seq=start_seq
        )

    # ------------------------------------------------------------------
    @property
    def last_seq(self) -> int:
        return self.wal.last_seq

    def log(self, record: object) -> int:
        """WAL one ingest record; returns its sequence number."""
        return self.wal.append(record)

    def checkpoint(self, state: object, seq: int | None = None) -> dict:
        """Atomic snapshot at ``seq`` (default: the WAL's last sequence).

        Fsyncs the WAL first (the snapshot must never be *ahead* of the
        durable log), writes the snapshot, rotates the WAL, and prunes
        old snapshots.  Returns checkpoint info (path, seq, duration,
        size, files pruned).
        """
        tracer = current_tracer()
        span = (
            tracer.start_detached("checkpoint", "checkpoint")
            if tracer
            else None
        )
        start = time.perf_counter()
        seq = self.wal.last_seq if seq is None else int(seq)
        self.wal.sync()
        path = write_snapshot(self.directory, seq, state)
        wal_removed = self.wal.rotate(seq)
        snaps_removed = prune_snapshots(
            self.directory, keep=self.snapshots_keep
        )
        info = {
            "path": path,
            "seq": seq,
            "bytes": os.path.getsize(path),
            "duration_s": time.perf_counter() - start,
            "wal_files_removed": wal_removed,
            "snapshots_removed": snaps_removed,
        }
        if tracer and span is not None:
            tracer.finish_detached(
                span, seq=seq, bytes=info["bytes"]
            )
        return info

    def recover(self):
        """Yield the recovery plan: ``(state, report, records)``.

        ``state`` is the newest valid snapshot's payload (``None`` for
        genesis), ``records`` an iterator of ``(seq, record)`` WAL
        frames strictly after the snapshot.  The caller applies the
        state, replays the records, then calls
        :meth:`finish_recovery` with the report so counters and the
        WAL append position line up.
        """
        report = RecoveryReport()
        loaded = load_latest_snapshot(self.directory)
        state = None
        if loaded is not None:
            report.snapshot_seq, state, report.snapshot_path = loaded
        report.recovered_seq = report.snapshot_seq

        def records():
            for seq, record in read_wal(
                self.directory,
                after_seq=report.snapshot_seq,
                stats=report.wal_stats,
            ):
                report.replayed += 1
                report.recovered_seq = seq
                yield seq, record

        return state, report, records()

    def finish_recovery(self, report: RecoveryReport) -> None:
        """Align the appender past everything replayed and count it."""
        if report.recovered_seq > self.wal.last_seq:
            # New records must never reuse a replayed sequence number.
            self.wal.advance_seq(report.recovered_seq)
        get_counter("recovery.runs").bump()
        get_counter("recovery.replayed_records").bump(report.replayed)
        get_counter("recovery.corrupt_frames").bump(
            report.wal_stats.corrupt_frames
        )
        get_counter("recovery.torn_tails").bump(report.wal_stats.torn_tails)

    def close(self) -> None:
        self.wal.close()
