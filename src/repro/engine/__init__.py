"""Discrete stream-processing engine: the Borealis stand-in baseline.

Provides the tuple datatype, schemas, discrete operators (filter, map,
nested-loop sliding-window join, windowed aggregates with group-by), a
push-based plan executor, and the throughput/latency/queueing
instrumentation used by the benchmarks.
"""

from .metrics import (
    Counter,
    CounterRegistry,
    Gauge,
    QueueingModel,
    RunMetrics,
    Stopwatch,
    counter_snapshot,
    gauge_snapshot,
    get_counter,
    get_gauge,
    measure_service_time,
    reset_counters,
)
from .operators import (
    DiscreteFilter,
    DiscreteHashJoin,
    DiscreteMap,
    DiscreteNestedLoopJoin,
    DiscreteOperator,
    DiscreteWindowAggregate,
)
from .plan import DiscretePlan
from .resilience import BreakerConfig, BreakerState, CircuitBreaker
from .tuples import Schema, StreamDef, StreamTuple

__all__ = [
    "BreakerConfig",
    "BreakerState",
    "CircuitBreaker",
    "Counter",
    "CounterRegistry",
    "DiscreteFilter",
    "DiscreteHashJoin",
    "DiscreteMap",
    "DiscreteNestedLoopJoin",
    "DiscreteOperator",
    "DiscretePlan",
    "DiscreteWindowAggregate",
    "Gauge",
    "QueueingModel",
    "RunMetrics",
    "Schema",
    "Stopwatch",
    "StreamDef",
    "StreamTuple",
    "counter_snapshot",
    "gauge_snapshot",
    "get_counter",
    "get_gauge",
    "measure_service_time",
    "reset_counters",
]
