"""Zero-copy shared-memory transport for shard-worker row batches.

The pickled-ndarray payload path (:func:`~repro.core.batch_solver.
solve_rows_worker`) serializes every coefficient block twice per round:
once into the submit pickle, once back out in the worker.  This module
replaces that copy pair with two ``multiprocessing.shared_memory``
segments per shard per round:

* a **request segment** the parent packs once — ``lengths`` (int64),
  ``lo``/``hi`` (float64) and the ``(n, width)`` float64 coefficient
  block at fixed offsets — and the worker maps zero-copy (the solver
  core reads rows straight out of the mapping);
* a **result arena** sized for the algebraic worst case (a degree-``d``
  row has at most ``d`` real roots, so ``sum(lengths - 1)`` slots
  always suffice) that the worker fills with the ``(n + 1)`` int64
  offset table followed by the flat float64 roots.

What still crosses the pickle boundary is a dict of *scalars and small
lists* — segment names, failures, cache-stat deltas, optional timing
histograms — never row data.

Lifecycle (the part that leaks when done casually):

* the **parent** creates both segments, submits the worker, reads the
  result views, and — in a ``finally`` — closes **and unlinks** both,
  so a worker crash, a ``BrokenExecutor`` or a mid-read exception
  cannot strand segments in ``/dev/shm``
  (:func:`active_segments` gives tests a leak probe);
* the **worker** attaches by name and closes its mappings in a
  ``finally`` after dropping every ndarray view (a live view holds an
  exported memoryview and ``close()`` would raise ``BufferError``).
  Python < 3.13 registers mere attachments with the resource tracker
  (no ``track=False`` yet), which is benign under the fork start
  method these pools use — parent and children share one tracker, so
  the attach-register is a set dedupe and the parent's ``unlink`` is
  the single deregistration.  (Under a spawn context each worker's
  private tracker would log spurious leaked-segment warnings at
  worker exit; the segments themselves are already unlinked by then.)

The transport moves bytes, never arithmetic: the worker funnels into
:func:`~repro.core.batch_solver.solve_rows_arrays`, the same core the
pickle path uses, so results are bit-identical across transports (the
serial-vs-shard parity suite runs against both).
"""

from __future__ import annotations

import os
from multiprocessing import shared_memory

import numpy as np

from ..core.batch_solver import solve_rows_arrays

#: ``/dev/shm`` name prefix for this engine's segments (leak scanning).
SEGMENT_PREFIX = "pulse_shm_"

_FLOAT = np.dtype(np.float64)
_INT = np.dtype(np.int64)


class RequestSegment:
    """Parent-side packed request block (owns the segment)."""

    def __init__(
        self,
        lengths: np.ndarray,
        lo: np.ndarray,
        hi: np.ndarray,
        coeffs: np.ndarray,
    ):
        n = int(lengths.shape[0])
        width = int(coeffs.shape[1]) if n else 1
        nbytes = _request_nbytes(n, width)
        self.shm = shared_memory.SharedMemory(
            create=True,
            size=max(nbytes, 8),
            name=_fresh_name("req"),
        )
        views = _request_views(self.shm, n, width)
        views["lengths"][:] = lengths
        views["lo"][:] = lo
        views["hi"][:] = hi
        views["coeffs"][:] = coeffs
        del views
        self.n = n
        self.width = width
        self.nbytes = nbytes

    def meta(self) -> dict:
        return {"name": self.shm.name, "n": self.n, "width": self.width}

    def destroy(self) -> None:
        _destroy(self.shm)


class ResultArena:
    """Parent-side result arena (owns the segment)."""

    def __init__(self, lengths: np.ndarray):
        n = int(lengths.shape[0])
        # A degree-d row yields at most d real roots, and the exact
        # trailing-zero candidates stay within the same bound, so the
        # arena can never overflow for rows the solver accepts.
        capacity = int(np.maximum(lengths - 1, 0).sum()) if n else 0
        nbytes = _result_nbytes(n, capacity)
        self.shm = shared_memory.SharedMemory(
            create=True,
            size=max(nbytes, 8),
            name=_fresh_name("res"),
        )
        self.n = n
        self.capacity = capacity
        self.nbytes = nbytes

    def meta(self) -> dict:
        return {"name": self.shm.name, "n": self.n, "capacity": self.capacity}

    def read(self) -> tuple[np.ndarray, np.ndarray]:
        """Copy out ``(offsets, flat_roots)`` (safe past ``destroy``)."""
        offsets_view, roots_view = _result_views(
            self.shm, self.n, self.capacity
        )
        offsets = offsets_view.copy()
        flat = roots_view[: int(offsets[-1])].copy()
        del offsets_view, roots_view
        return offsets, flat

    def destroy(self) -> None:
        _destroy(self.shm)


def _fresh_name(kind: str) -> str:
    # pid + random suffix from urandom: collision-free across forked
    # workers without consuming the (seeded) global RNG state.
    return f"{SEGMENT_PREFIX}{kind}_{os.getpid()}_{os.urandom(4).hex()}"


def _request_nbytes(n: int, width: int) -> int:
    return n * _INT.itemsize + 2 * n * _FLOAT.itemsize + n * width * _FLOAT.itemsize


def _result_nbytes(n: int, capacity: int) -> int:
    return (n + 1) * _INT.itemsize + capacity * _FLOAT.itemsize


def _request_views(
    shm: shared_memory.SharedMemory, n: int, width: int
) -> dict[str, np.ndarray]:
    off = 0
    lengths = np.ndarray((n,), dtype=_INT, buffer=shm.buf, offset=off)
    off += n * _INT.itemsize
    lo = np.ndarray((n,), dtype=_FLOAT, buffer=shm.buf, offset=off)
    off += n * _FLOAT.itemsize
    hi = np.ndarray((n,), dtype=_FLOAT, buffer=shm.buf, offset=off)
    off += n * _FLOAT.itemsize
    coeffs = np.ndarray((n, width), dtype=_FLOAT, buffer=shm.buf, offset=off)
    return {"lengths": lengths, "lo": lo, "hi": hi, "coeffs": coeffs}


def _result_views(
    shm: shared_memory.SharedMemory, n: int, capacity: int
) -> tuple[np.ndarray, np.ndarray]:
    offsets = np.ndarray((n + 1,), dtype=_INT, buffer=shm.buf, offset=0)
    roots = np.ndarray(
        (capacity,),
        dtype=_FLOAT,
        buffer=shm.buf,
        offset=(n + 1) * _INT.itemsize,
    )
    return offsets, roots


def _destroy(shm: shared_memory.SharedMemory) -> None:
    """Close and unlink, tolerating an already-gone segment."""
    try:
        shm.close()
    except BufferError:
        # A live view still pins the mapping; unlink below still
        # removes the name so nothing leaks past process exit.
        pass
    try:
        shm.unlink()
    except FileNotFoundError:
        pass


def pack_round(
    lengths: np.ndarray, lo: np.ndarray, hi: np.ndarray, coeffs: np.ndarray
) -> tuple[RequestSegment, ResultArena]:
    """Allocate and fill one round's request + result segments."""
    request = RequestSegment(lengths, lo, hi, coeffs)
    try:
        arena = ResultArena(lengths)
    except Exception:
        request.destroy()
        raise
    return request, arena


def solve_rows_shm_worker(meta: dict) -> dict:
    """Shard-worker entry point for the shared-memory transport.

    ``meta`` carries the segment descriptors plus the scalar knobs of
    :func:`~repro.core.batch_solver.solve_rows_worker` (``root_budget``,
    ``cache``, ``observe``, ``shard``).  Row data is read from the
    request segment and roots are written to the result arena; the
    returned dict holds only scalars and small lists (``n_roots`` is
    the flat root count, for parent-side sanity checking).
    """
    req_meta = meta["request"]
    res_meta = meta["result"]
    req = shared_memory.SharedMemory(name=req_meta["name"])
    try:
        res = shared_memory.SharedMemory(name=res_meta["name"])
    except BaseException:
        req.close()
        raise
    views: dict[str, np.ndarray] | None = None
    out_offsets = out_roots = None
    try:
        views = _request_views(req, int(req_meta["n"]), int(req_meta["width"]))
        flat, offsets, failures, stats, timings = solve_rows_arrays(
            views["coeffs"],
            views["lengths"],
            views["lo"],
            views["hi"],
            budget=int(meta.get("root_budget") or 0) or None,
            use_cache=bool(meta.get("cache", True)),
            observe=bool(meta.get("observe", False)),
        )
        n_roots = int(offsets[-1])
        capacity = int(res_meta["capacity"])
        if n_roots > capacity:  # algebraically unreachable; be loud
            raise RuntimeError(
                f"result arena overflow: {n_roots} roots > {capacity} slots"
            )
        out_offsets, out_roots = _result_views(
            res, int(res_meta["n"]), capacity
        )
        out_offsets[:] = offsets
        out_roots[:n_roots] = flat
        result = {
            "shard": int(meta.get("shard", 0)),
            "n_roots": n_roots,
            "failures": failures,
            "cache_stats": stats,
        }
        if timings is not None:
            result["timings"] = timings
        return result
    finally:
        del views, out_offsets, out_roots
        req.close()
        res.close()


def active_segments() -> list[str]:
    """Names of this engine's segments currently live in ``/dev/shm``.

    The leak probe for tests: after a dispatcher shuts down — cleanly
    or through a broken executor — this must be empty.  Returns ``[]``
    on platforms without a ``/dev/shm`` (the transport itself still
    works; only the probe is Linux-shaped).
    """
    try:
        return sorted(
            name
            for name in os.listdir("/dev/shm")
            if name.startswith(SEGMENT_PREFIX)
        )
    except (FileNotFoundError, NotADirectoryError, PermissionError):
        return []
