"""Discrete nested-loop sliding-window join — the paper's join baseline.

Fig. 5iii compares Pulse's continuous join against "a nested loops
sliding window join": each arriving tuple is compared against every
buffered tuple of the opposite input whose timestamp lies within the join
window, so the comparison count grows quadratically with the stream rate
(Section V-A: "a nested loops join has quadratic complexity in the number
of comparisons it performs").
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ...core.predicate import BoolExpr
from ..tuples import StreamTuple
from .base import DiscreteOperator

#: Buffers at least this long use the vectorized band check.
VECTORIZE_THRESHOLD = 16


def band_candidates(
    partners: deque | list, center: float, window: float
) -> list:
    """Partners whose timestamps lie within ``window`` of ``center``.

    Long probe buffers run the band check as one vectorized comparison
    over the stacked timestamps (the same batching the continuous join
    gets from the solver kernel); short ones stay scalar to avoid the
    array setup cost.
    """
    if len(partners) < VECTORIZE_THRESHOLD:
        return [p for p in partners if abs(p.time - center) <= window]
    times = np.fromiter((p.time for p in partners), float, len(partners))
    mask = np.abs(times - center) <= window
    return [p for p, hit in zip(partners, mask) if hit]


class DiscreteNestedLoopJoin(DiscreteOperator):
    """Sliding-window nested-loop join over two tuple streams.

    Parameters
    ----------
    predicate:
        Join predicate evaluated per candidate pair, with each side's
        attributes qualified by its alias.
    window:
        Band width: tuples pair when their timestamps differ by at most
        ``window``.
    """

    arity = 2

    def __init__(
        self,
        predicate: BoolExpr,
        left_alias: str = "L",
        right_alias: str = "R",
        window: float = 1.0,
        name: str = "nl-join",
    ):
        self.predicate = predicate
        self.left_alias = left_alias
        self.right_alias = right_alias
        self.window = float(window)
        self.name = name
        self._buffers: tuple[deque, deque] = (deque(), deque())
        self.tuples_processed = 0
        self.comparisons = 0

    def reset(self) -> None:
        for buf in self._buffers:
            buf.clear()
        self.tuples_processed = 0
        self.comparisons = 0

    def process(self, tup: StreamTuple, port: int = 0) -> list[StreamTuple]:
        if port not in (0, 1):
            raise ValueError(f"join has ports 0 and 1, got {port}")
        self.tuples_processed += 1
        own, other = self._buffers[port], self._buffers[1 - port]
        own.append(tup)
        # Evict expired tuples from both buffers (timestamps are
        # monotonically increasing per input).
        horizon = tup.time - self.window
        for buf in self._buffers:
            while buf and buf[0].time < horizon:
                buf.popleft()

        aliases = (
            (self.left_alias, self.right_alias)
            if port == 0
            else (self.right_alias, self.left_alias)
        )
        outputs: list[StreamTuple] = []
        # Every buffered partner is a comparison (the band check), as in
        # the scalar loop; survivors get the predicate evaluation.
        self.comparisons += len(other)
        for partner in band_candidates(other, tup.time, self.window):
            env = tup.env(aliases[0])
            env.update(partner.env(aliases[1]))
            if self.predicate.evaluate(env):
                outputs.append(self._merge(tup, partner, aliases))
        return outputs

    def _merge(self, tup: StreamTuple, partner: StreamTuple, aliases) -> StreamTuple:
        out = StreamTuple(
            {StreamTuple.TIME_FIELD: max(tup.time, partner.time)}
        )
        for alias, source in ((aliases[0], tup), (aliases[1], partner)):
            for k, v in source.items():
                if k != StreamTuple.TIME_FIELD:
                    out[f"{alias}.{k}"] = v
        return out

    @property
    def state_size(self) -> int:
        return len(self._buffers[0]) + len(self._buffers[1])
