"""Discrete hash join for equi-key predicates.

Section V-A: "We plan on investigating this result with other join
implementations, such as a hash join or indexed join, but believe the
result will still hold due to the low overhead of validation compared to
the join predicate evaluation."  This operator lets the reproduction
test that conjecture (see ``benchmarks/bench_ablation_join_impl.py``):
tuples are bucketed by an equi-key, so each arrival only probes its own
bucket instead of the whole window — still linear in bucket size, but
with a much smaller constant than the nested-loop join.

A residual (non-equi) predicate is evaluated per bucket match.
"""

from __future__ import annotations

from collections import deque

from ...core.predicate import BoolExpr
from ..tuples import StreamTuple
from .base import DiscreteOperator
from .join_op import band_candidates


class DiscreteHashJoin(DiscreteOperator):
    """Sliding-window equi-hash join with optional residual predicate.

    Parameters
    ----------
    left_key, right_key:
        The equi-join attribute on each input (e.g. ``symbol``).
    residual:
        Optional additional predicate evaluated on each hash match
        (aliased attributes, like the nested-loop join's predicate).
    window:
        Band width on timestamps, as in the nested-loop join.
    """

    arity = 2

    def __init__(
        self,
        left_key: str,
        right_key: str,
        residual: BoolExpr | None = None,
        left_alias: str = "L",
        right_alias: str = "R",
        window: float = 1.0,
        name: str = "hash-join",
    ):
        self.left_key = left_key
        self.right_key = right_key
        self.residual = residual
        self.left_alias = left_alias
        self.right_alias = right_alias
        self.window = float(window)
        self.name = name
        self._buckets: tuple[dict, dict] = ({}, {})
        self.tuples_processed = 0
        self.probes = 0

    def reset(self) -> None:
        self._buckets = ({}, {})
        self.tuples_processed = 0
        self.probes = 0

    def _key_attr(self, port: int) -> str:
        return self.left_key if port == 0 else self.right_key

    def process(self, tup: StreamTuple, port: int = 0) -> list[StreamTuple]:
        if port not in (0, 1):
            raise ValueError(f"join has ports 0 and 1, got {port}")
        self.tuples_processed += 1
        key = tup[self._key_attr(port)]
        own = self._buckets[port].setdefault(key, deque())
        own.append(tup)
        horizon = tup.time - self.window
        # Evict expired tuples from this key's buckets on both sides.
        for side in (0, 1):
            bucket = self._buckets[side].get(key)
            if bucket:
                while bucket and bucket[0].time < horizon:
                    bucket.popleft()

        other = self._buckets[1 - port].get(key)
        if not other:
            return []
        aliases = (
            (self.left_alias, self.right_alias)
            if port == 0
            else (self.right_alias, self.left_alias)
        )
        outputs: list[StreamTuple] = []
        self.probes += len(other)
        for partner in band_candidates(other, tup.time, self.window):
            if self.residual is not None:
                env = tup.env(aliases[0])
                env.update(partner.env(aliases[1]))
                if not self.residual.evaluate(env):
                    continue
            outputs.append(self._merge(tup, partner, aliases))
        return outputs

    def _merge(self, tup, partner, aliases) -> StreamTuple:
        out = StreamTuple({StreamTuple.TIME_FIELD: max(tup.time, partner.time)})
        for alias, source in ((aliases[0], tup), (aliases[1], partner)):
            for k, v in source.items():
                if k != StreamTuple.TIME_FIELD:
                    out[f"{alias}.{k}"] = v
        return out

    @property
    def state_size(self) -> int:
        return sum(
            len(bucket)
            for side in self._buckets
            for bucket in side.values()
        )
