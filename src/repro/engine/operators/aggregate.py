"""Discrete sliding-window aggregate — the paper's aggregate baseline.

The implementation follows the cost model the paper measures in Fig. 5ii
and Fig. 7i: every open window keeps incremental state, and each arriving
tuple is applied to *all* open windows that contain it, so per-tuple cost
is linear in the number of open windows (``window / slide``) and hence in
the window size at a fixed slide.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..tuples import StreamTuple
from .base import DiscreteOperator

_SUPPORTED = ("min", "max", "sum", "avg", "count")


@dataclass
class _WindowState:
    """Incremental state of one open window closing at ``close``."""

    close: float
    minimum: float = math.inf
    maximum: float = -math.inf
    total: float = 0.0
    count: int = 0

    def add(self, value: float) -> None:
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        self.total += value
        self.count += 1

    def result(self, func: str) -> float | None:
        if self.count == 0:
            return None
        if func == "min":
            return self.minimum
        if func == "max":
            return self.maximum
        if func == "sum":
            return self.total
        if func == "avg":
            return self.total / self.count
        return float(self.count)


class DiscreteWindowAggregate(DiscreteOperator):
    """Sliding-window aggregate with optional hash group-by.

    Parameters
    ----------
    attr:
        Attribute being aggregated (ignored for ``count``).
    func:
        One of min, max, sum, avg, count.  Unlike the continuous path the
        discrete engine supports frequency-based aggregates.
    window, slide:
        Window width and slide; closes sit on the slide grid.
    group_fields:
        Tuple attributes to group by (hash-based, Fig. 3's last row).
    """

    arity = 1

    def __init__(
        self,
        attr: str,
        func: str,
        window: float,
        slide: float,
        output_attr: str | None = None,
        group_fields: tuple[str, ...] = (),
        name: str | None = None,
    ):
        func = func.lower()
        if func not in _SUPPORTED:
            raise ValueError(f"aggregate {func!r} not in {_SUPPORTED}")
        if window <= 0 or slide <= 0:
            raise ValueError("window and slide must be positive")
        self.attr = attr
        self.func = func
        self.window = float(window)
        self.slide = float(slide)
        self.output_attr = output_attr or f"{func}_{attr}"
        self.group_fields = tuple(group_fields)
        self.name = name or f"{func}({attr})[{window}/{slide}]"
        self._groups: dict[tuple, dict[float, _WindowState]] = {}
        self.tuples_processed = 0
        self.state_increments = 0

    def reset(self) -> None:
        self._groups.clear()
        self.tuples_processed = 0
        self.state_increments = 0

    # ------------------------------------------------------------------
    def process(self, tup: StreamTuple, port: int = 0) -> list[StreamTuple]:
        self.tuples_processed += 1
        t = tup.time
        group = tup.key(self.group_fields)
        windows = self._groups.setdefault(group, {})

        outputs = self._close_windows(group, windows, t)

        # Open any not-yet-materialized windows that will contain t:
        # closes on the slide grid in (t, t + window].
        first = math.floor(t / self.slide) * self.slide + self.slide
        close = first
        while close <= t + self.window + 1e-12:
            if close not in windows:
                windows[close] = _WindowState(close)
            close += self.slide

        value = float(tup.get(self.attr, 0.0)) if self.func != "count" else 0.0
        for state in windows.values():
            # Window [close - w, close) contains t by construction of the
            # open set, but guard for windows opened by later arrivals.
            if state.close - self.window <= t < state.close:
                state.add(value)
                self.state_increments += 1
        return outputs

    def _close_windows(
        self, group: tuple, windows: dict[float, _WindowState], now: float
    ) -> list[StreamTuple]:
        """Emit and drop every window whose close time has passed."""
        outputs: list[StreamTuple] = []
        for close in sorted(c for c in windows if c <= now):
            state = windows.pop(close)
            result = state.result(self.func)
            if result is None:
                continue
            out = StreamTuple({StreamTuple.TIME_FIELD: close, self.output_attr: result})
            for field, val in zip(self.group_fields, group):
                out[field] = val
            outputs.append(out)
        return outputs

    def flush(self) -> list[StreamTuple]:
        outputs: list[StreamTuple] = []
        for group, windows in self._groups.items():
            outputs.extend(self._close_windows(group, windows, math.inf))
        return outputs

    @property
    def open_windows(self) -> int:
        return sum(len(w) for w in self._groups.values())
