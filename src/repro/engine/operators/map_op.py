"""Discrete map/projection: per-tuple expression evaluation."""

from __future__ import annotations

from typing import Sequence

from ...core.operators.map_op import Projection
from ..tuples import StreamTuple
from .base import DiscreteOperator


class DiscreteMap(DiscreteOperator):
    """Evaluates each projection expression against the tuple.

    Non-numeric attributes referenced by a bare ``Attr`` pass through
    unchanged (symbols, ids); the timestamp is always preserved.
    """

    arity = 1

    def __init__(
        self,
        projections: Sequence[Projection],
        alias: str | None = None,
        passthrough: Sequence[str] = (),
        name: str = "map",
    ):
        self.projections = tuple(projections)
        self.alias = alias
        self.passthrough = tuple(passthrough)
        self.name = name
        self.tuples_processed = 0

    def process(self, tup: StreamTuple, port: int = 0) -> list[StreamTuple]:
        self.tuples_processed += 1
        env = tup.env(self.alias)
        out = StreamTuple({StreamTuple.TIME_FIELD: tup.time})
        for field in self.passthrough:
            if field in tup:
                out[field] = tup[field]
        for proj in self.projections:
            from ...core.expr import Attr

            if isinstance(proj.expr, Attr):
                value = env.get(proj.expr.name)
                if value is not None and not isinstance(value, (int, float)):
                    out[proj.name] = value
                    continue
            out[proj.name] = proj.expr.evaluate(env)
        return [out]
