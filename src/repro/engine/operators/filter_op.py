"""Discrete filter: per-tuple predicate evaluation."""

from __future__ import annotations

from ...core.predicate import BoolExpr
from ..tuples import StreamTuple
from .base import DiscreteOperator


class DiscreteFilter(DiscreteOperator):
    """Evaluates the predicate against every tuple's attribute values.

    This is the "extremely simple filter operation" of Fig. 5i whose
    per-tuple cost the continuous filter must amortize across a segment.
    """

    arity = 1

    def __init__(self, predicate: BoolExpr, alias: str | None = None, name: str = "filter"):
        self.predicate = predicate
        self.alias = alias
        self.name = name
        self.tuples_processed = 0

    def process(self, tup: StreamTuple, port: int = 0) -> list[StreamTuple]:
        self.tuples_processed += 1
        if self.predicate.evaluate(tup.env(self.alias)):
            return [tup]
        return []
