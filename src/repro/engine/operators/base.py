"""Base class for discrete (tuple-at-a-time) operators."""

from __future__ import annotations

from ..tuples import StreamTuple


class DiscreteOperator:
    """Tuple-in / tuple-out operator for the baseline engine."""

    name: str = "operator"
    arity: int = 1

    def process(self, tup: StreamTuple, port: int = 0) -> list[StreamTuple]:
        raise NotImplementedError

    def flush(self) -> list[StreamTuple]:
        """Emit buffered results at end of stream."""
        return []

    def reset(self) -> None:
        """Discard operator state."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
