"""Discrete (tuple-at-a-time) operator implementations — the baseline engine."""

from .aggregate import DiscreteWindowAggregate
from .base import DiscreteOperator
from .filter_op import DiscreteFilter
from .hash_join import DiscreteHashJoin
from .join_op import DiscreteNestedLoopJoin
from .map_op import DiscreteMap

__all__ = [
    "DiscreteFilter",
    "DiscreteHashJoin",
    "DiscreteMap",
    "DiscreteNestedLoopJoin",
    "DiscreteOperator",
    "DiscreteWindowAggregate",
]
