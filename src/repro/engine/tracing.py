"""Structured trace spans: where a drain round spends its time.

The paper's evaluation is entirely about *measured* processing cost and
output latency; this module makes those measurable in the reproduction.
When observability is enabled, the engine emits a tree of **spans** —
one record per unit of work, with an explicit ``parent_id`` — covering
the full life of an arrival::

    round                       one scheduler drain round
    ├─ prime                    sharded prefill sweep (shards > 1)
    │  └─ solve ─ root_query    predicted tasks through the cache funnel
    └─ arrival                  one queued item being processed
       ├─ operator              one plan node processing one segment
       │  └─ solve              an equation-system / cache-funnel solve
       │     └─ root_query      the kernel's root-finding stage
       └─ emit                  outputs appended for this arrival

Spans are written as JSONL (one JSON object per line) so traces stream
to disk with O(1) memory and replay with :func:`read_trace` /
:func:`build_span_tree`.  Timestamps come from the monotonic clock,
rebased so ``t == 0`` is tracer creation.

**Zero cost when disabled.**  The hot paths in :mod:`repro.core` are
instrumented through module-level hook globals that default to ``None``
(exactly the pattern of the solver fault hook); a disabled run executes
one global load and an ``is None`` test per site and makes *zero*
instrumentation calls — ``tests/engine/test_tracing.py`` pins this.
:func:`enable_observability` installs the hooks (and turns on the
latency histograms in :mod:`repro.engine.metrics`);
:func:`disable_observability` restores the ``None`` state.

Tracing and histograms are enabled together because they share the same
guard: histograms are always cheap enough to keep alongside spans, and
a single switch keeps the guarded call sites trivial.  A tracer is
optional within an enabled state (``--metrics-out`` without
``--trace-out`` records histograms only).
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator, Mapping, TextIO

from .metrics import Histogram, get_histogram

#: Local binding: the clock is read twice per span on the hot path.
_perf_counter = time.perf_counter

#: Bumped when the JSONL record shape changes incompatibly.
TRACE_SCHEMA_VERSION = 1

#: Span kinds emitted by the engine (test suites assert against these).
SPAN_KINDS = (
    "round",
    "prime",
    "arrival",
    "operator",
    "solve",
    "root_query",
    "emit",
    "cache",
    "watchdog",
    "session",
    "ingest",
    "checkpoint",
    "recovery",
    # Per-arrival change-set application under the incremental knob
    # (child of "arrival"; attributes carry the classified change kind).
    "delta_apply",
)


class TraceError(ValueError):
    """A trace file failed to parse or reconstruct into a span tree."""


@dataclass(slots=True)
class Span:
    """One unit of traced work; ``parent_id`` encodes the tree."""

    span_id: int
    parent_id: int | None
    name: str
    kind: str
    t_start: float
    t_end: float | None = None
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float | None:
        if self.t_end is None:
            return None
        return self.t_end - self.t_start

    def to_record(self) -> dict:
        rec = {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "t_start": self.t_start,
            "t_end": self.t_end,
        }
        if self.attrs:
            # Attr coercion happens here, at serialization time, so the
            # in-run cost of opening a span stays minimal.
            rec["attrs"] = {
                k: _json_safe(v) for k, v in self.attrs.items()
            }
        return rec

    @classmethod
    def from_record(cls, rec: Mapping) -> "Span":
        try:
            return cls(
                span_id=int(rec["span_id"]),
                parent_id=(
                    None if rec.get("parent_id") is None
                    else int(rec["parent_id"])
                ),
                name=str(rec["name"]),
                kind=str(rec["kind"]),
                t_start=float(rec["t_start"]),
                t_end=(
                    None if rec.get("t_end") is None
                    else float(rec["t_end"])
                ),
                attrs=dict(rec.get("attrs") or {}),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceError(f"malformed span record: {exc}") from exc


def _json_safe(value):
    """Coerce a span attribute to something JSON can carry."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (tuple, list)):
        return [_json_safe(v) for v in value]
    return repr(value)


class Tracer:
    """Emits finished spans as JSONL and tracks the current-span stack.

    The stack makes parent ids implicit at the call sites: a span
    started while another is open becomes its child.  The engine is
    single-threaded per process (shard workers never trace), so a plain
    list suffices — no contextvars on the hot path.

    ``sink`` may be a filesystem path (opened/owned by the tracer), an
    open text file, or a list (records appended as dicts — the test
    harness mode).

    Finished spans are buffered and serialized in chunks of
    ``buffer_limit`` (or at :meth:`flush`/:meth:`close`): JSON encoding
    is the dominant per-span cost, and deferring it keeps the traced
    hot path inside the observability layer's overhead budget while
    bounding memory at ``O(buffer_limit)`` spans.
    """

    def __init__(self, sink, buffer_limit: int = 65536):
        self._records: list[dict] | None = None
        self._fh: TextIO | None = None
        self._owns_fh = False
        if isinstance(sink, list):
            self._records = sink
        elif hasattr(sink, "write"):
            self._fh = sink
        else:
            self._fh = open(Path(sink), "w", encoding="utf-8")
            self._owns_fh = True
        self._buffer_limit = buffer_limit
        self._pending: list[Span] = []
        self._stack: list[int] = []
        self._next_id = 1
        self._t0 = _perf_counter()
        self.spans_emitted = 0

    # ------------------------------------------------------------------
    def _now(self) -> float:
        return _perf_counter() - self._t0

    def start(self, name: str, kind: str, **attrs) -> Span:
        """Open a span under the current top of stack."""
        return self._start_at(_perf_counter(), name, kind, attrs)

    def _start_at(
        self, raw_t: float, name: str, kind: str, attrs: dict
    ) -> Span:
        """:meth:`start` against an already-read raw clock value.

        The internal entry point for the timed-site hooks, which read
        the clock once and share it between histogram and span.
        """
        stack = self._stack
        span = Span(
            self._next_id,
            stack[-1] if stack else None,
            name,
            kind,
            raw_t - self._t0,
            None,
            attrs,
        )
        self._next_id += 1
        stack.append(span.span_id)
        return span

    def finish(self, span: Span, **attrs) -> None:
        """Close a span and emit its record."""
        self._finish_at(_perf_counter(), span, attrs or None)

    def _finish_at(
        self, raw_t: float, span: Span, attrs: dict | None = None
    ) -> None:
        span.t_end = raw_t - self._t0
        if attrs:
            span.attrs.update(attrs)
        # Pop back to (and including) this span; mismatched nesting
        # collapses gracefully instead of corrupting later parents.
        stack = self._stack
        while stack:
            if stack.pop() == span.span_id:
                break
        self.spans_emitted += 1
        pending = self._pending
        pending.append(span)
        if len(pending) >= self._buffer_limit:
            self._drain()

    # ------------------------------------------------------------------
    # detached spans: explicit parents, no stack participation
    # ------------------------------------------------------------------
    def start_detached(
        self, name: str, kind: str, parent_id: int | None = None, **attrs
    ) -> Span:
        """Open a span with an explicit parent, outside the stack.

        The stack models strictly nested work on one thread; the network
        server's ``session`` spans are long-lived and *overlap* (many
        connections at once), and its ``ingest`` spans must parent to
        their session rather than to whatever engine work happens to be
        on the stack.  Detached spans carry their parent explicitly and
        never touch the stack, so they cannot corrupt the nesting of
        the engine's own spans.  Finish with :meth:`finish_detached`
        (``finish`` would pop the stack down past unrelated spans).
        """
        span = Span(
            self._next_id, parent_id, name, kind, self._now(), None, attrs
        )
        self._next_id += 1
        return span

    def finish_detached(self, span: Span, **attrs) -> None:
        """Close a detached span and emit its record (stack untouched)."""
        span.t_end = self._now()
        if attrs:
            span.attrs.update(attrs)
        self._emit(span)

    def event_under(
        self, parent_id: int | None, name: str, kind: str, **attrs
    ) -> None:
        """A zero-duration span under an explicit parent."""
        now = self._now()
        self._emit(
            Span(self._next_id, parent_id, name, kind, now, now, attrs)
        )
        self._next_id += 1

    @contextmanager
    def span(self, name: str, kind: str, **attrs) -> Iterator[Span]:
        s = self.start(name, kind, **attrs)
        try:
            yield s
        finally:
            self.finish(s)

    def event(self, name: str, kind: str, **attrs) -> None:
        """A zero-duration span under the current parent."""
        stack = self._stack
        now = _perf_counter() - self._t0
        self._emit(
            Span(
                self._next_id,
                stack[-1] if stack else None,
                name,
                kind,
                now,
                now,
                attrs,
            )
        )
        self._next_id += 1

    # ------------------------------------------------------------------
    def _emit(self, span: Span) -> None:
        self.spans_emitted += 1
        self._pending.append(span)
        if len(self._pending) >= self._buffer_limit:
            self._drain()

    def _drain(self) -> None:
        if not self._pending:
            return
        pending, self._pending = self._pending, []
        records = []
        for s in pending:
            if type(s) is tuple:
                # Flat site record appended by _TimedSpanSite /
                # _OperatorSite: the histogram fill was deferred along
                # with serialization to keep the hot path lean.
                sid, parent, name, kind, t0, t1, attr, n, hist = s
                if hist is not None:
                    hist.observe(t1 - t0)
                records.append({
                    "span_id": sid,
                    "parent_id": parent,
                    "name": name,
                    "kind": kind,
                    "t_start": t0,
                    "t_end": t1,
                    "attrs": {attr: _json_safe(n)},
                })
            else:
                records.append(s.to_record())
        if self._records is not None:
            self._records.extend(records)
            return
        self._fh.write(
            "".join(
                json.dumps(rec, separators=(",", ":")) + "\n"
                for rec in records
            )
        )

    def flush(self) -> None:
        self._drain()
        if self._fh is not None:
            self._fh.flush()

    def close(self) -> None:
        self.flush()
        if self._owns_fh and self._fh is not None:
            self._fh.close()
            self._fh = None


# ----------------------------------------------------------------------
# replay: JSONL -> span tree
# ----------------------------------------------------------------------
def read_trace(path) -> list[Span]:
    """Parse a trace JSONL file back into :class:`Span` objects.

    Blank lines are skipped; a malformed line raises :class:`TraceError`
    with its line number (a trace is an artifact we control end to end,
    so corruption is a bug, not an input condition).
    """
    spans: list[Span] = []
    with open(Path(path), "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceError(
                    f"{path}:{lineno}: invalid JSON: {exc}"
                ) from exc
            spans.append(Span.from_record(rec))
    return spans


def build_span_tree(
    spans: Iterable[Span],
) -> tuple[list[Span], dict[int, list[Span]]]:
    """Reconstruct the forest: ``(roots, children_by_parent_id)``.

    Validates the structural invariants the observability layer
    guarantees: unique span ids, every ``parent_id`` resolving to an
    emitted span, and no span ending before it starts.  Raises
    :class:`TraceError` on violation — this is the round-trip check the
    regression suite runs on every emitted trace.
    """
    spans = list(spans)
    by_id: dict[int, Span] = {}
    for span in spans:
        if span.span_id in by_id:
            raise TraceError(f"duplicate span id {span.span_id}")
        by_id[span.span_id] = span
    roots: list[Span] = []
    children: dict[int, list[Span]] = {}
    for span in spans:
        if span.t_end is not None and span.t_end < span.t_start:
            raise TraceError(
                f"span {span.span_id} ends before it starts"
            )
        if span.parent_id is None:
            roots.append(span)
        elif span.parent_id not in by_id:
            raise TraceError(
                f"span {span.span_id} has unknown parent "
                f"{span.parent_id}"
            )
        else:
            children.setdefault(span.parent_id, []).append(span)
    return roots, children


def ancestors(span: Span, spans: Iterable[Span]) -> list[Span]:
    """The chain of ancestors of ``span``, nearest first."""
    by_id = {s.span_id: s for s in spans}
    chain: list[Span] = []
    current = span
    while current.parent_id is not None:
        current = by_id[current.parent_id]
        chain.append(current)
    return chain


# ----------------------------------------------------------------------
# the observability switch
# ----------------------------------------------------------------------
#: Module-level state read by the engine-side guards (scheduler,
#: parallel dispatcher).  ``_ENABLED`` and ``_TRACER`` are separate so
#: histograms can run without a trace sink.
_ENABLED = False
_TRACER: Tracer | None = None


def observability_enabled() -> bool:
    return _ENABLED


def current_tracer() -> Tracer | None:
    return _TRACER


class _TimedSpanSite:
    """A context-manager hook timing one instrumented call site.

    Calling the site with its batch size (tasks, rows, systems) returns
    a context manager; on exit the elapsed seconds land in ``hist`` and
    a span is recorded.  This is the most cost-sensitive code in the
    observability layer — it runs once per solve on the hot path — so
    it trades every convenience for cycles:

    - the site object doubles as its own context manager (one slot of
      per-call state), so the common case allocates nothing;
    - hand-written ``__enter__``/``__exit__`` instead of
      ``@contextmanager`` generators;
    - with a tracer attached, the finished span is appended to the
      tracer's pending buffer as a flat tuple — no :class:`Span`
      object, no attrs dict, and the ``hist`` fill rides along in the
      tuple to be applied at drain time, off the hot path;
    - the clock is read exactly once per side.

    None of the instrumented sites recurses into itself, but if one
    ever did, the busy flag falls back to an allocated per-call
    manager instead of corrupting state.
    """

    __slots__ = (
        "tracer", "hist", "name", "kind", "attr", "_n", "_t0",
        "_sid", "_parent", "_busy",
    )

    def __init__(self, tracer, hist, name, kind, attr):
        self.tracer = tracer
        self.hist = hist
        self.name = name
        self.kind = kind
        self.attr = attr
        self._n = 0
        self._t0 = 0.0
        self._sid = 0
        self._parent = None
        self._busy = False

    def __call__(self, n: int):
        if self._busy:
            return _TimedSpanCM(self, n)
        self._n = n
        return self

    def __enter__(self):
        self._busy = True
        tracer = self.tracer
        if tracer is not None:
            stack = tracer._stack
            sid = tracer._next_id
            tracer._next_id = sid + 1
            self._parent = stack[-1] if stack else None
            self._sid = sid
            stack.append(sid)
        self._t0 = _perf_counter()
        return None

    def __exit__(self, exc_type, exc, tb):
        raw = _perf_counter()
        tracer = self.tracer
        if tracer is not None:
            sid = self._sid
            stack = tracer._stack
            # Balanced nesting makes our id the top; the scan below
            # only runs if an inner span collapsed the stack past us.
            if stack and stack[-1] == sid:
                stack.pop()
            elif sid in stack:
                stack.remove(sid)
            tracer.spans_emitted += 1
            pending = tracer._pending
            pending.append((
                sid, self._parent, self.name, self.kind,
                self._t0 - tracer._t0, raw - tracer._t0,
                self.attr, self._n, self.hist,
            ))
            if len(pending) >= tracer._buffer_limit:
                tracer._drain()
        elif self.hist is not None:
            self.hist.observe(raw - self._t0)
        self._busy = False
        return False


class _TimedSpanCM:
    """Allocated per-call fallback for a (theoretical) reentrant site."""

    __slots__ = ("site", "n", "span", "t0")

    def __init__(self, site: _TimedSpanSite, n: int):
        self.site = site
        self.n = n
        self.span = None

    def __enter__(self):
        site = self.site
        raw = _perf_counter()
        self.t0 = raw
        if site.tracer is not None:
            self.span = site.tracer._start_at(
                raw, site.name, site.kind, {site.attr: self.n}
            )
        return self.span

    def __exit__(self, exc_type, exc, tb):
        site = self.site
        raw = _perf_counter()
        if site.hist is not None:
            site.hist.observe(raw - self.t0)
        if self.span is not None:
            site.tracer._finish_at(raw, self.span)
        return False


def _timed_span_hook(
    tracer: Tracer | None,
    hist: Histogram | None,
    name: str,
    kind: str,
    attr: str,
) -> Callable:
    """Build the context-manager hook for one instrumented site."""
    return _TimedSpanSite(tracer, hist, name, kind, attr)


def enable_observability(trace_sink=None) -> Tracer | None:
    """Turn on histograms and (optionally) span tracing.

    ``trace_sink`` is a path, open file, or list for the
    :class:`Tracer`; ``None`` records histograms only.  Installs the
    guarded hooks into :mod:`repro.core.batch_solver`,
    :mod:`repro.core.equation_system`, :mod:`repro.core.plan` and
    :mod:`repro.core.solve_cache`; the engine-side sites (scheduler,
    parallel dispatcher) read this module's state directly.

    Returns the tracer (or ``None``).  Enabling twice tears down the
    previous state first, so the hooks never stack.
    """
    global _ENABLED, _TRACER
    if _ENABLED:
        disable_observability()

    from ..core import batch_solver, equation_system, plan, solve_cache

    tracer = Tracer(trace_sink) if trace_sink is not None else None

    batch_solver.set_solver_instrumentation(
        solve_span=_timed_span_hook(
            tracer,
            get_histogram("solver.solve_tasks_seconds"),
            "solve_tasks",
            "solve",
            "tasks",
        ),
        roots_span=_timed_span_hook(
            tracer,
            get_histogram("solver.root_query_seconds"),
            "real_roots",
            "root_query",
            "rows",
        ),
        eigen_observer=_eigen_observer(
            get_histogram("solver.eigensolve_seconds")
        ),
        degree_observer=_degree_observer(),
    )
    equation_system.set_system_instrumentation(
        system_span=_timed_span_hook(
            tracer,
            get_histogram("solver.system_solve_seconds"),
            "equation_system.solve",
            "solve",
            "rows",
        ),
        batch_span=_timed_span_hook(
            tracer,
            get_histogram("solver.system_solve_seconds"),
            "solve_systems_batch",
            "solve",
            "systems",
        ),
    )
    plan.set_operator_trace(
        _operator_trace(tracer) if tracer is not None else None
    )
    solve_cache.set_cache_observer(_cache_observer(tracer))

    _TRACER = tracer
    _ENABLED = True
    return tracer


def disable_observability() -> None:
    """Restore the zero-cost state: every hook back to ``None``."""
    global _ENABLED, _TRACER
    from ..core import batch_solver, equation_system, plan, solve_cache

    batch_solver.set_solver_instrumentation(
        solve_span=None,
        roots_span=None,
        eigen_observer=None,
        degree_observer=None,
    )
    equation_system.set_system_instrumentation(
        system_span=None, batch_span=None
    )
    plan.set_operator_trace(None)
    solve_cache.set_cache_observer(None)
    if _TRACER is not None:
        _TRACER.close()
    _TRACER = None
    _ENABLED = False


@contextmanager
def observability(trace_sink=None) -> Iterator[Tracer | None]:
    """Scoped :func:`enable_observability` / :func:`disable_observability`."""
    tracer = enable_observability(trace_sink)
    try:
        yield tracer
    finally:
        disable_observability()


def _eigen_observer(hist: Histogram) -> Callable[[int, float], None]:
    def observe(n_matrices: int, seconds: float) -> None:
        hist.observe(seconds)

    return observe


def _degree_observer() -> Callable[[int, int, float], None]:
    """Per-degree root-kernel latency: one histogram per degree bucket.

    The solver calls this with ``(degree, n_rows, seconds)`` after each
    closed-form kernel call and each companion degree bucket, so
    ``solver.roots_seconds.degree_3`` (Cardano) is separable from
    ``degree_5``+ (eigensolve fallback) in snapshots and BENCH JSON.
    Histogram handles are cached per degree — steady state pays one
    dict lookup per call, no registry traffic.
    """
    hists: dict[int, Histogram] = {}

    def observe(degree: int, n_rows: int, seconds: float) -> None:
        hist = hists.get(degree)
        if hist is None:
            hist = get_histogram(f"solver.roots_seconds.degree_{degree}")
            hists[degree] = hist
        hist.observe(seconds)

    return observe


class _OperatorSite:
    """Reusable operator-span hook; same shape as :class:`_TimedSpanSite`.

    ``_cascade`` runs plan nodes in a loop (never one inside another),
    so a single slot of per-call state suffices; the busy flag guards
    the theoretical nested case.  Like the timed sites, finished spans
    land in the pending buffer as flat tuples.
    """

    __slots__ = ("tracer", "_label", "_node_id", "_sid", "_parent",
                 "_t0", "_busy")

    def __init__(self, tracer: Tracer):
        self.tracer = tracer
        self._label = ""
        self._node_id = 0
        self._sid = 0
        self._parent = None
        self._t0 = 0.0
        self._busy = False

    def __call__(self, label: str, node_id: int):
        if self._busy:
            return self.tracer.span(label, "operator", node_id=node_id)
        self._label = label
        self._node_id = node_id
        return self

    def __enter__(self):
        self._busy = True
        tracer = self.tracer
        stack = tracer._stack
        sid = tracer._next_id
        tracer._next_id = sid + 1
        self._parent = stack[-1] if stack else None
        self._sid = sid
        stack.append(sid)
        self._t0 = _perf_counter()
        return None

    def __exit__(self, exc_type, exc, tb):
        raw = _perf_counter()
        tracer = self.tracer
        sid = self._sid
        stack = tracer._stack
        if stack and stack[-1] == sid:
            stack.pop()
        elif sid in stack:
            stack.remove(sid)
        tracer.spans_emitted += 1
        pending = tracer._pending
        pending.append((
            sid, self._parent, self._label, "operator",
            self._t0 - tracer._t0, raw - tracer._t0,
            "node_id", self._node_id, None,
        ))
        if len(pending) >= tracer._buffer_limit:
            tracer._drain()
        self._busy = False
        return False


def _operator_trace(tracer: Tracer) -> Callable:
    return _OperatorSite(tracer)


def _cache_observer(tracer: Tracer | None) -> Callable[[str, int], None]:
    from .metrics import get_gauge

    entries_gauge = get_gauge("solve_cache.entries")

    def observe(event: str, entries: int) -> None:
        entries_gauge.set(float(entries))
        if tracer is not None and event == "evict":
            tracer.event("solve_cache_evict", "cache", entries=entries)

    return observe
