"""Pulse core: continuous-time query processing via equation systems.

The paper's primary contribution: segments as a first-class datatype,
per-operator simultaneous equation systems, the query transform, and
validated execution with inverted error bounds.
"""

from .batch_solver import (
    SolverConfig,
    set_solver_mode,
    solver_config,
    solver_mode,
)
from .equation_system import DifferenceRow, EquationSystem, solve_systems_batch
from .errors import PulseError
from .expr import Abs, Add, Attr, Const, Div, Expr, Mul, Neg, Pow, Sqrt, Sub
from .intervals import Interval, TimeSet
from .modes import HistoricalProcessor, PredictiveProcessor, PredictiveStats
from .piecewise import Piece, PiecewiseFunction, lower_envelope, upper_envelope
from .plan import ContinuousPlan
from .polynomial import Polynomial
from .predicate import And, BoolExpr, Comparison, Not, Or, normalize
from .relation import Rel
from .segment import Segment, SegmentBuffer
from .solve_cache import SolveCache, global_solve_cache, reset_global_solve_cache
from .transform import TransformedQuery, to_continuous_plan

__all__ = [
    "Abs", "Add", "And", "Attr", "BoolExpr", "Comparison", "Const",
    "ContinuousPlan", "DifferenceRow", "Div", "EquationSystem", "Expr",
    "HistoricalProcessor", "Interval", "Mul", "Neg", "Not", "Or", "Piece",
    "PiecewiseFunction", "Polynomial", "Pow", "PredictiveProcessor",
    "PredictiveStats", "PulseError", "Rel", "Segment", "SegmentBuffer",
    "SolveCache", "SolverConfig", "Sqrt", "Sub", "TimeSet",
    "TransformedQuery", "global_solve_cache", "lower_envelope", "normalize",
    "reset_global_solve_cache", "set_solver_mode", "solve_systems_batch",
    "solver_config", "solver_mode", "to_continuous_plan", "upper_envelope",
]
