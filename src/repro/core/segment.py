"""Segments: Pulse's first-class datatype.

A segment is one piece of a piecewise polynomial model (Section II-B): a
time range ``[t_start, t_end)`` over which a particular set of polynomial
coefficients is valid, together with the key values identifying the modeled
entity and any unmodeled attributes (constant for the segment's lifespan).

Segments flow through the transformed query plan the way tuples flow
through a discrete plan; every continuous operator consumes segments and
produces segments, which is what keeps the operator set closed
(Section III-C).
"""

from __future__ import annotations

import itertools
from types import MappingProxyType
from typing import Iterable, Iterator, Mapping

from .errors import InvalidSegmentError
from .intervals import EPS, Interval
from .polynomial import Polynomial

_segment_ids = itertools.count(1)

Key = tuple


def segment_id_watermark() -> int:
    """The most recently issued segment id (0 before any segment).

    Durability snapshots record this so a restored process can
    guarantee id uniqueness; reading it burns one id, which is
    harmless — ids only need to be unique, not dense.
    """
    return next(_segment_ids) - 1


def ensure_segment_ids_above(watermark: int) -> None:
    """Advance the global id counter past ``watermark``.

    Called on snapshot restore: restored segments keep their original
    ``seg_id`` (identity-keyed operator memos and signature caches rely
    on per-process uniqueness), so ids issued after the restore must
    start above everything the snapshot carried.
    """
    global _segment_ids
    current = next(_segment_ids)
    _segment_ids = itertools.count(max(current, watermark + 1))


class Segment:
    """One piece of a piecewise polynomial model.

    Parameters
    ----------
    key:
        Tuple of key-attribute values identifying the modeled entity
        (e.g. a vessel id, a stock symbol).  May be empty for keyless
        streams.
    t_start, t_end:
        The half-open valid time range ``[t_start, t_end)``.
    models:
        Mapping from modeled attribute name to its :class:`Polynomial`
        in the time variable ``t`` (absolute time, not segment-relative).
    constants:
        Unmodeled attributes, constant over the segment's lifespan.
    lineage:
        Identifiers of the input segments this segment was derived from;
        maintained for query inversion (Section IV-B).
    """

    __slots__ = ("key", "t_start", "t_end", "models", "constants", "seg_id", "lineage")

    def __init__(
        self,
        key: Key,
        t_start: float,
        t_end: float,
        models: Mapping[str, Polynomial],
        constants: Mapping[str, object] | None = None,
        lineage: tuple[int, ...] = (),
        seg_id: int | None = None,
    ):
        if not t_start < t_end:
            raise InvalidSegmentError(
                f"segment time range must be non-empty, got [{t_start}, {t_end})"
            )
        for name, model in models.items():
            if not isinstance(model, Polynomial):
                raise InvalidSegmentError(
                    f"model for attribute {name!r} must be a Polynomial"
                )
        object.__setattr__(self, "key", tuple(key))
        object.__setattr__(self, "t_start", float(t_start))
        object.__setattr__(self, "t_end", float(t_end))
        object.__setattr__(self, "models", MappingProxyType(dict(models)))
        object.__setattr__(
            self, "constants", MappingProxyType(dict(constants or {}))
        )
        object.__setattr__(self, "lineage", tuple(lineage))
        object.__setattr__(
            self, "seg_id", next(_segment_ids) if seg_id is None else seg_id
        )

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Segment is immutable")

    def __reduce__(self):
        """Explicit pickling: the immutable ``__setattr__`` blocks the
        default slots protocol, and ``models``/``constants`` are
        mapping proxies.  Durability snapshots round-trip segments
        through here; ``seg_id`` is preserved so identity-keyed memos
        survive a restore (see :func:`ensure_segment_ids_above`)."""
        return (
            Segment,
            (
                self.key,
                self.t_start,
                self.t_end,
                dict(self.models),
                dict(self.constants),
                self.lineage,
                self.seg_id,
            ),
        )

    # ------------------------------------------------------------------
    # temporal accessors
    # ------------------------------------------------------------------
    @property
    def interval(self) -> Interval:
        return Interval(self.t_start, self.t_end)

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    @property
    def is_point(self) -> bool:
        """Whether the segment's validity has collapsed to (almost) a point.

        Equality predicates reduce segments to instants; we represent an
        instant ``p`` as the sliver ``[p, p + EPS)``.
        """
        return self.duration <= 2 * EPS

    def contains_time(self, t: float) -> bool:
        return self.t_start <= t < self.t_end

    def overlaps(self, other: "Segment") -> bool:
        return self.t_start < other.t_end and other.t_start < self.t_end

    def overlap_range(self, other: "Segment") -> tuple[float, float] | None:
        lo = max(self.t_start, other.t_start)
        hi = min(self.t_end, other.t_end)
        if lo < hi:
            return (lo, hi)
        return None

    # ------------------------------------------------------------------
    # model access
    # ------------------------------------------------------------------
    def model(self, attr: str) -> Polynomial:
        try:
            return self.models[attr]
        except KeyError:
            raise KeyError(
                f"segment has no model for attribute {attr!r}; "
                f"available: {sorted(self.models)}"
            ) from None

    def value_at(self, attr: str, t: float):
        """Evaluate a modeled attribute (or return an unmodeled constant)."""
        if attr in self.models:
            return self.models[attr](t)
        if attr in self.constants:
            return self.constants[attr]
        raise KeyError(f"segment has no attribute {attr!r}")

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return tuple(self.models) + tuple(self.constants)

    # ------------------------------------------------------------------
    # derivation
    # ------------------------------------------------------------------
    def restrict(self, lo: float, hi: float) -> "Segment":
        """The same models restricted to ``[lo, hi) ∩ [t_start, t_end)``."""
        lo = max(lo, self.t_start)
        hi = min(hi, self.t_end)
        if not lo < hi:
            raise InvalidSegmentError(
                f"restriction [{lo}, {hi}) of {self} is empty"
            )
        return Segment(
            self.key, lo, hi, self.models, self.constants, lineage=self.lineage
        )

    def at_instant(self, t: float) -> "Segment":
        """A point segment capturing this model at instant ``t``."""
        return Segment(
            self.key,
            t,
            t + EPS,
            self.models,
            self.constants,
            lineage=self.lineage,
        )

    def with_models(
        self,
        models: Mapping[str, Polynomial],
        constants: Mapping[str, object] | None = None,
        lineage: tuple[int, ...] | None = None,
    ) -> "Segment":
        return Segment(
            self.key,
            self.t_start,
            self.t_end,
            models,
            self.constants if constants is None else constants,
            lineage=self.lineage if lineage is None else lineage,
        )

    def derive(
        self,
        key: Key,
        lo: float,
        hi: float,
        models: Mapping[str, Polynomial],
        constants: Mapping[str, object] | None = None,
        parents: Iterable["Segment"] = (),
    ) -> "Segment":
        """Build an output segment recording its parents as lineage."""
        lineage = tuple(p.seg_id for p in parents) or (self.seg_id,)
        return Segment(key, lo, hi, models, constants or {}, lineage=lineage)

    def __repr__(self) -> str:
        attrs = ",".join(sorted(self.models))
        return (
            f"Segment(key={self.key}, [{self.t_start:g},{self.t_end:g}), "
            f"models=[{attrs}])"
        )


def resolve_model(segment: Segment, name: str) -> Polynomial:
    """Find a model by exact name, then by unique suffix.

    Post-join segments carry alias-qualified attributes (``s1.x``); plan
    operators configured with bare names (``x``) resolve through the
    suffix when it is unambiguous.
    """
    if name in segment.models:
        return segment.models[name]
    suffix = name.split(".")[-1]
    matches = [a for a in segment.models if a.split(".")[-1] == suffix]
    if len(matches) == 1:
        return segment.models[matches[0]]
    raise KeyError(
        f"cannot resolve model {name!r} among {sorted(segment.models)}"
    )


def resolve_constant(segment: Segment, name: str, default=None):
    """Find an unmodeled attribute by exact name, then unique suffix."""
    if name in segment.constants:
        return segment.constants[name]
    suffix = name.split(".")[-1]
    matches = [a for a in segment.constants if a.split(".")[-1] == suffix]
    if len(matches) == 1:
        return segment.constants[matches[0]]
    if len(matches) > 1:
        values = {segment.constants[m] for m in matches}
        if len(values) == 1:
            return values.pop()
    return default


def apply_update_semantics(
    existing: list[Segment], incoming: Segment
) -> list[Segment]:
    """Apply the paper's successor-overrides-overlap update semantics.

    For two temporally overlapping segments of the same key, the successor
    acts as an update to the predecessor for the overlap: the predecessor
    is trimmed to end where the successor begins (Section II-B).  Returns
    the new segment list sorted by start time; ``existing`` is not mutated.
    """
    out: list[Segment] = []
    for seg in existing:
        if seg.key != incoming.key or not seg.overlaps(incoming):
            out.append(seg)
            continue
        if seg.t_start < incoming.t_start:
            out.append(seg.restrict(seg.t_start, incoming.t_start))
        # Any part of the predecessor at or after the successor's start is
        # overridden (the successor is newer for the whole overlap; a
        # predecessor tail past the successor's end is also dropped since
        # the update semantics order pieces sequentially).
        if seg.t_end > incoming.t_end and incoming.t_start <= seg.t_start:
            # Fully-later predecessor keeps its tail beyond the update.
            out.append(seg.restrict(incoming.t_end, seg.t_end))
    out.append(incoming)
    out.sort(key=lambda s: (s.t_start, s.t_end))
    return out


class SegmentBuffer:
    """Order-based per-key segment state used by stateful operators.

    Joins keep one buffer per input (Fig. 3: "order-based segment
    buffers"); min/max aggregates and the lineage store reuse it.  Segments
    are held per key in start-time order with update semantics applied on
    insert, and evicted by a temporal watermark.
    """

    def __init__(self):
        self._by_key: dict[Key, list[Segment]] = {}
        self._watermark = float("-inf")

    def __len__(self) -> int:
        return sum(len(v) for v in self._by_key.values())

    @property
    def watermark(self) -> float:
        return self._watermark

    def insert(self, segment: Segment) -> None:
        current = self._by_key.get(segment.key, [])
        self._by_key[segment.key] = apply_update_semantics(current, segment)

    def keys(self) -> Iterator[Key]:
        return iter(self._by_key)

    def segments(self, key: Key | None = None) -> Iterator[Segment]:
        if key is not None:
            yield from self._by_key.get(key, [])
            return
        for segs in self._by_key.values():
            yield from segs

    def overlapping(
        self, lo: float, hi: float, key: Key | None = None
    ) -> Iterator[Segment]:
        """All stored segments overlapping ``[lo, hi)``."""
        pool = (
            self._by_key.get(key, [])
            if key is not None
            else (s for segs in self._by_key.values() for s in segs)
        )
        for seg in pool:
            if seg.t_start < hi and lo < seg.t_end:
                yield seg

    def evict_before(self, watermark: float) -> int:
        """Drop segments entirely before ``watermark``; returns drop count."""
        self._watermark = max(self._watermark, watermark)
        dropped = 0
        for key in list(self._by_key):
            kept = [s for s in self._by_key[key] if s.t_end > watermark]
            dropped += len(self._by_key[key]) - len(kept)
            if kept:
                self._by_key[key] = kept
            else:
                del self._by_key[key]
        return dropped

    def clear(self) -> None:
        self._by_key.clear()
