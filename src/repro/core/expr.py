"""Scalar expression language over stream attributes.

Queries reference attributes through arithmetic expressions — the paper's
examples include ``S.ap - L.ap``, ``pow(S1.x - S2.x, 2)`` and
``sqrt(...)``.  The same expression tree serves both processing paths:

* the **discrete** engine evaluates an expression against a tuple's
  attribute values (:meth:`Expr.evaluate`);
* the **continuous** path compiles an expression to a :class:`Polynomial`
  in the time variable, given each attribute's model
  (:meth:`Expr.to_polynomial`).

``sqrt`` and ``abs`` are not polynomial; they are eliminated at the
*predicate* level by monotone rewrites (see :mod:`repro.core.predicate`),
and raise :class:`NonPolynomialExpressionError` if compilation reaches
them directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Mapping

from .errors import NonPolynomialExpressionError
from .polynomial import Polynomial

#: Resolves an attribute name to its polynomial model within one segment
#: (or aligned pair of segments).
ModelResolver = Callable[[str], Polynomial]


class Expr:
    """Base class for scalar expressions."""

    def attributes(self) -> frozenset[str]:
        """All attribute names referenced by the expression."""
        raise NotImplementedError

    def evaluate(self, env: Mapping[str, float]) -> float:
        """Evaluate against concrete attribute values (discrete path)."""
        raise NotImplementedError

    def to_polynomial(self, resolve: ModelResolver) -> Polynomial:
        """Compile to a polynomial in ``t`` (continuous path)."""
        raise NotImplementedError

    # Operator sugar so tests and planners can compose trees naturally.
    def __add__(self, other: "Expr | float") -> "Expr":
        return Add(self, _coerce(other))

    def __radd__(self, other: float) -> "Expr":
        return Add(_coerce(other), self)

    def __sub__(self, other: "Expr | float") -> "Expr":
        return Sub(self, _coerce(other))

    def __rsub__(self, other: float) -> "Expr":
        return Sub(_coerce(other), self)

    def __mul__(self, other: "Expr | float") -> "Expr":
        return Mul(self, _coerce(other))

    def __rmul__(self, other: float) -> "Expr":
        return Mul(_coerce(other), self)

    def __neg__(self) -> "Expr":
        return Neg(self)


def _coerce(value: "Expr | float | int") -> Expr:
    if isinstance(value, Expr):
        return value
    if isinstance(value, (int, float)):
        return Const(float(value))
    raise TypeError(f"cannot use {value!r} in an expression")


@dataclass(frozen=True)
class Const(Expr):
    """A numeric literal."""

    value: float

    def attributes(self) -> frozenset[str]:
        return frozenset()

    def evaluate(self, env: Mapping[str, float]) -> float:
        return self.value

    def to_polynomial(self, resolve: ModelResolver) -> Polynomial:
        return Polynomial.constant(self.value)

    def __repr__(self) -> str:
        return f"{self.value:g}"


@dataclass(frozen=True)
class Attr(Expr):
    """A (possibly qualified) attribute reference such as ``S.price``."""

    name: str

    def attributes(self) -> frozenset[str]:
        return frozenset({self.name})

    def evaluate(self, env: Mapping[str, float]) -> float:
        try:
            return env[self.name]
        except KeyError:
            # Allow unqualified fallback: "price" matches "S.price" when
            # unambiguous, or when all matches hold the same value (the
            # post-equi-join case: s.symbol == l.symbol).
            matches = [k for k in env if k.split(".")[-1] == self.name]
            if len(matches) == 1:
                return env[matches[0]]
            if len(matches) > 1:
                values = [env[m] for m in matches]
                if all(v == values[0] for v in values[1:]):
                    return values[0]
            raise KeyError(f"attribute {self.name!r} not bound") from None

    def to_polynomial(self, resolve: ModelResolver) -> Polynomial:
        return resolve(self.name)

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Add(Expr):
    left: Expr
    right: Expr

    def attributes(self) -> frozenset[str]:
        return self.left.attributes() | self.right.attributes()

    def evaluate(self, env: Mapping[str, float]) -> float:
        return self.left.evaluate(env) + self.right.evaluate(env)

    def to_polynomial(self, resolve: ModelResolver) -> Polynomial:
        return self.left.to_polynomial(resolve) + self.right.to_polynomial(resolve)

    def __repr__(self) -> str:
        return f"({self.left!r} + {self.right!r})"


@dataclass(frozen=True)
class Sub(Expr):
    left: Expr
    right: Expr

    def attributes(self) -> frozenset[str]:
        return self.left.attributes() | self.right.attributes()

    def evaluate(self, env: Mapping[str, float]) -> float:
        return self.left.evaluate(env) - self.right.evaluate(env)

    def to_polynomial(self, resolve: ModelResolver) -> Polynomial:
        return self.left.to_polynomial(resolve) - self.right.to_polynomial(resolve)

    def __repr__(self) -> str:
        return f"({self.left!r} - {self.right!r})"


@dataclass(frozen=True)
class Mul(Expr):
    left: Expr
    right: Expr

    def attributes(self) -> frozenset[str]:
        return self.left.attributes() | self.right.attributes()

    def evaluate(self, env: Mapping[str, float]) -> float:
        return self.left.evaluate(env) * self.right.evaluate(env)

    def to_polynomial(self, resolve: ModelResolver) -> Polynomial:
        return self.left.to_polynomial(resolve) * self.right.to_polynomial(resolve)

    def __repr__(self) -> str:
        return f"({self.left!r} * {self.right!r})"


@dataclass(frozen=True)
class Div(Expr):
    """Division; the continuous path only supports constant divisors
    (otherwise the result is rational, not polynomial)."""

    left: Expr
    right: Expr

    def attributes(self) -> frozenset[str]:
        return self.left.attributes() | self.right.attributes()

    def evaluate(self, env: Mapping[str, float]) -> float:
        return self.left.evaluate(env) / self.right.evaluate(env)

    def to_polynomial(self, resolve: ModelResolver) -> Polynomial:
        divisor = self.right.to_polynomial(resolve)
        if not divisor.is_constant:
            raise NonPolynomialExpressionError(
                "division by a modeled attribute is not polynomial"
            )
        if divisor.coeffs[0] == 0.0:
            raise ZeroDivisionError("division by the zero polynomial")
        return self.left.to_polynomial(resolve) / divisor.coeffs[0]

    def __repr__(self) -> str:
        return f"({self.left!r} / {self.right!r})"


@dataclass(frozen=True)
class Neg(Expr):
    operand: Expr

    def attributes(self) -> frozenset[str]:
        return self.operand.attributes()

    def evaluate(self, env: Mapping[str, float]) -> float:
        return -self.operand.evaluate(env)

    def to_polynomial(self, resolve: ModelResolver) -> Polynomial:
        return -self.operand.to_polynomial(resolve)

    def __repr__(self) -> str:
        return f"(-{self.operand!r})"


@dataclass(frozen=True)
class Pow(Expr):
    """Integer power, e.g. ``pow(S1.x - S2.x, 2)``."""

    base: Expr
    exponent: int

    def attributes(self) -> frozenset[str]:
        return self.base.attributes()

    def evaluate(self, env: Mapping[str, float]) -> float:
        return self.base.evaluate(env) ** self.exponent

    def to_polynomial(self, resolve: ModelResolver) -> Polynomial:
        if self.exponent < 0:
            raise NonPolynomialExpressionError(
                "negative exponents leave the closed polynomial class"
            )
        return self.base.to_polynomial(resolve) ** self.exponent

    def __repr__(self) -> str:
        return f"pow({self.base!r}, {self.exponent})"


@dataclass(frozen=True)
class Sqrt(Expr):
    """Square root — eliminable only through predicate rewrites."""

    operand: Expr

    def attributes(self) -> frozenset[str]:
        return self.operand.attributes()

    def evaluate(self, env: Mapping[str, float]) -> float:
        return math.sqrt(self.operand.evaluate(env))

    def to_polynomial(self, resolve: ModelResolver) -> Polynomial:
        raise NonPolynomialExpressionError(
            "sqrt is not polynomial; it must be eliminated by a predicate "
            "rewrite (sqrt(E) R c  =>  E R c^2)"
        )

    def __repr__(self) -> str:
        return f"sqrt({self.operand!r})"


@dataclass(frozen=True)
class Abs(Expr):
    """Absolute value — eliminable only through predicate rewrites."""

    operand: Expr

    def attributes(self) -> frozenset[str]:
        return self.operand.attributes()

    def evaluate(self, env: Mapping[str, float]) -> float:
        return abs(self.operand.evaluate(env))

    def to_polynomial(self, resolve: ModelResolver) -> Polynomial:
        raise NonPolynomialExpressionError(
            "abs is not polynomial; it must be eliminated by a predicate "
            "rewrite (abs(E) < c  =>  -c < E < c)"
        )

    def __repr__(self) -> str:
        return f"abs({self.operand!r})"
