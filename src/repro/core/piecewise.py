"""Piecewise polynomial functions and envelope maintenance.

Min/max aggregates keep, as operator state, a *piecewise* function ``s(t)``
that is the lower (min) or upper (max) envelope of the model functions seen
so far (Section III-B, Figure 2).  This module provides the piecewise
container plus the envelope computation, built on pairwise root finding:
within any elementary interval delimited by piece boundaries and pairwise
intersection roots, the envelope coincides with a single polynomial.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Sequence

from .intervals import EPS, Interval
from .polynomial import Polynomial
from .roots import real_roots


@dataclass(frozen=True, slots=True)
class Piece:
    """A polynomial valid over a half-open interval."""

    interval: Interval
    poly: Polynomial

    def __call__(self, t: float) -> float:
        return self.poly(t)


class PiecewiseFunction:
    """An ordered sequence of non-overlapping polynomial pieces.

    Gaps are allowed (the function is partial); evaluation inside a gap
    raises ``ValueError``.
    """

    __slots__ = ("_pieces",)

    def __init__(self, pieces: Iterable[Piece] = ()):
        ordered = sorted(pieces, key=lambda p: p.interval.lo)
        for a, b in zip(ordered[:-1], ordered[1:]):
            if a.interval.hi > b.interval.lo + EPS:
                raise ValueError(
                    f"pieces overlap: {a.interval} and {b.interval}"
                )
        self._pieces: tuple[Piece, ...] = tuple(ordered)

    @classmethod
    def empty(cls) -> "PiecewiseFunction":
        return cls()

    @property
    def pieces(self) -> tuple[Piece, ...]:
        return self._pieces

    @property
    def is_empty(self) -> bool:
        return not self._pieces

    @property
    def domain_start(self) -> float:
        if not self._pieces:
            raise ValueError("empty piecewise function has no domain")
        return self._pieces[0].interval.lo

    @property
    def domain_end(self) -> float:
        if not self._pieces:
            raise ValueError("empty piecewise function has no domain")
        return self._pieces[-1].interval.hi

    def piece_at(self, t: float) -> Piece | None:
        for piece in self._pieces:
            if piece.interval.contains(t):
                return piece
        # The overall supremum belongs to the last piece by convention so
        # that closed-window evaluation at the domain end is defined.
        if self._pieces and abs(t - self._pieces[-1].interval.hi) <= EPS:
            return self._pieces[-1]
        return None

    def __call__(self, t: float) -> float:
        piece = self.piece_at(t)
        if piece is None:
            raise ValueError(f"t={t} outside the piecewise domain")
        return piece.poly(t)

    def defined_at(self, t: float) -> bool:
        return self.piece_at(t) is not None

    def restrict(self, lo: float, hi: float) -> "PiecewiseFunction":
        out = []
        for piece in self._pieces:
            clipped = piece.interval.intersect(Interval(lo, hi)) if lo < hi else None
            if clipped is not None:
                out.append(Piece(clipped, piece.poly))
        return PiecewiseFunction(out)

    def splice(self, lo: float, hi: float, poly: Polynomial) -> "PiecewiseFunction":
        """Replace the function on ``[lo, hi)`` with ``poly``.

        This is the state-update primitive for min/max aggregates: when a
        new input segment dips below the current lower envelope over some
        solution range, that range is overwritten with the new model.
        """
        if lo >= hi:
            return self
        out: list[Piece] = []
        for piece in self._pieces:
            iv = piece.interval
            if iv.hi <= lo + EPS or iv.lo >= hi - EPS:
                out.append(piece)
                continue
            if iv.lo < lo:
                out.append(Piece(Interval(iv.lo, lo), piece.poly))
            if iv.hi > hi:
                out.append(Piece(Interval(hi, iv.hi), piece.poly))
        out.append(Piece(Interval(lo, hi), poly))
        return PiecewiseFunction(out)

    def definite_integral(self, lo: float, hi: float) -> float:
        """Integral over ``[lo, hi]`` of the covered parts."""
        total = 0.0
        for piece in self._pieces:
            a = max(lo, piece.interval.lo)
            b = min(hi, piece.interval.hi)
            if a < b:
                total += piece.poly.definite_integral(a, b)
        return total

    def iter_breakpoints(self) -> Iterator[float]:
        for piece in self._pieces:
            yield piece.interval.lo
        if self._pieces:
            yield self._pieces[-1].interval.hi

    def approx_equal(self, other: "PiecewiseFunction", tol: float = 1e-7) -> bool:
        if len(self._pieces) != len(other._pieces):
            return False
        for a, b in zip(self._pieces, other._pieces):
            if abs(a.interval.lo - b.interval.lo) > tol:
                return False
            if abs(a.interval.hi - b.interval.hi) > tol:
                return False
            if not a.poly.approx_equal(b.poly, tol):
                return False
        return True

    def __repr__(self) -> str:
        body = ", ".join(
            f"{p.interval}:{p.poly!r}" for p in self._pieces
        )
        return f"PiecewiseFunction({body})"


def _elementary_cells(
    pieces: Sequence[Piece],
) -> list[tuple[float, float, list[Piece]]]:
    """Split the union of piece domains into cells where the set of live
    pieces is constant and no two live pieces cross."""
    cuts: set[float] = set()
    for piece in pieces:
        cuts.add(piece.interval.lo)
        cuts.add(piece.interval.hi)
    for i, a in enumerate(pieces):
        for b in pieces[i + 1 :]:
            overlap = a.interval.intersect(b.interval)
            if overlap is None:
                continue
            diff = a.poly - b.poly
            if diff.is_zero or diff.is_constant:
                continue
            for r in real_roots(diff, overlap.lo, overlap.hi):
                if overlap.lo < r < overlap.hi:
                    cuts.add(r)
    ordered = sorted(cuts)
    cells: list[tuple[float, float, list[Piece]]] = []
    for lo, hi in zip(ordered[:-1], ordered[1:]):
        if hi - lo <= EPS:
            continue
        mid = 0.5 * (lo + hi)
        live = [p for p in pieces if p.interval.contains(mid)]
        if live:
            cells.append((lo, hi, live))
    return cells


def _envelope(
    pieces: Sequence[Piece], choose: Callable[[Sequence[float]], float]
) -> PiecewiseFunction:
    out: list[Piece] = []
    for lo, hi, live in _elementary_cells(pieces):
        mid = 0.5 * (lo + hi)
        values = [p.poly(mid) for p in live]
        winner = live[values.index(choose(values))]
        if (
            out
            and out[-1].poly == winner.poly
            and abs(out[-1].interval.hi - lo) <= EPS
        ):
            out[-1] = Piece(Interval(out[-1].interval.lo, hi), winner.poly)
        else:
            out.append(Piece(Interval(lo, hi), winner.poly))
    return PiecewiseFunction(out)


def lower_envelope(pieces: Sequence[Piece]) -> PiecewiseFunction:
    """The pointwise minimum of the given pieces over their union domain."""
    return _envelope(pieces, min)


def upper_envelope(pieces: Sequence[Piece]) -> PiecewiseFunction:
    """The pointwise maximum of the given pieces over their union domain."""
    return _envelope(pieces, max)
