"""Root finding and sign tests for difference polynomials.

The selective-operator transform (Section III-A) reduces predicate
evaluation to locating where a difference polynomial ``(x - y)(t)``
crosses zero inside a segment's valid time range, then running sign tests
between consecutive roots to recover the satisfying time ranges.

The paper names Newton's method and Brent's method [3] as the root-finding
workhorses; both are implemented here from scratch.  For polynomials we
additionally use the closed forms for degrees one and two and the
companion-matrix eigenvalue method (via numpy) for higher degrees, with a
Newton polish step for accuracy.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

import numpy as np

from .errors import SolverError, SolverFailure
from .intervals import EPS, Interval, TimeSet
from .polynomial import Polynomial
from .relation import Rel

#: Tolerance below which an imaginary eigenvalue part is treated as zero.
IMAG_TOL = 1e-8

#: Coefficients beyond this magnitude cannot come from a sane model fit
#: and destroy companion-matrix conditioning (squaring one overflows a
#: double); the guardrail rejects the row instead of solving garbage.
COEFF_MAX = 1e150


def check_coefficients(coeffs: Sequence[float]) -> None:
    """Guardrail: reject coefficient rows no root finder can answer for.

    Raises :class:`SolverFailure` (reason ``"invalid-coefficients"``) on
    NaN/inf entries — the signature of a failed model fit — and on
    absurd magnitudes beyond :data:`COEFF_MAX`.
    """
    # Fast path: one C-level pass each for finiteness and magnitude.
    # This runs per solve row, so the per-element Python loop below is
    # reserved for the failing case (it names the offending value).
    if all(map(math.isfinite, coeffs)) and (
        not coeffs or max(map(abs, coeffs)) <= COEFF_MAX
    ):
        return
    for c in coeffs:
        if not math.isfinite(c):
            raise SolverFailure(
                "invalid-coefficients", f"non-finite coefficient {c!r}"
            )
        if abs(c) > COEFF_MAX:
            raise SolverFailure(
                "invalid-coefficients",
                f"coefficient magnitude {abs(c):.3g} exceeds {COEFF_MAX:g}",
            )


def _root_budget() -> int:
    """The configured per-row root-count budget (lazy import: no cycle)."""
    from .batch_solver import SOLVER_CONFIG

    return SOLVER_CONFIG.max_roots_per_row

#: Tolerance for deduplicating nearby roots.
ROOT_MERGE_TOL = 1e-9

#: Values of |p(root)| above this (relative to coefficient scale) are rejected.
RESIDUAL_TOL = 1e-6


def newton(
    f: Callable[[float], float],
    fprime: Callable[[float], float],
    x0: float,
    tol: float = 1e-12,
    max_iter: int = 50,
) -> float | None:
    """Newton–Raphson iteration; returns ``None`` on non-convergence."""
    x = x0
    for _ in range(max_iter):
        fx = f(x)
        if abs(fx) < tol:
            return x
        d = fprime(x)
        if d == 0.0 or not math.isfinite(d):
            return None
        step = fx / d
        x -= step
        if not math.isfinite(x):
            return None
        if abs(step) < tol * max(1.0, abs(x)):
            return x
    return x if abs(f(x)) < math.sqrt(tol) else None


def brent(
    f: Callable[[float], float],
    a: float,
    b: float,
    tol: float = 1e-12,
    max_iter: int = 100,
) -> float:
    """Brent's method on a bracketing interval ``[a, b]``.

    Requires ``f(a)`` and ``f(b)`` to have opposite signs.  Combines
    bisection, secant and inverse quadratic interpolation (Brent 1973).
    """
    fa, fb = f(a), f(b)
    if fa == 0.0:
        return a
    if fb == 0.0:
        return b
    if fa * fb > 0.0:
        raise SolverError(f"root not bracketed on [{a}, {b}]")
    if abs(fa) < abs(fb):
        a, b, fa, fb = b, a, fb, fa
    c, fc = a, fa
    d = e = b - a
    for _ in range(max_iter):
        if fb * fc > 0.0:
            c, fc = a, fa
            d = e = b - a
        if abs(fc) < abs(fb):
            a, b, c = b, c, b
            fa, fb, fc = fb, fc, fb
        tol1 = 2.0 * math.ulp(abs(b)) + 0.5 * tol
        xm = 0.5 * (c - b)
        if abs(xm) <= tol1 or fb == 0.0:
            return b
        if abs(e) >= tol1 and abs(fa) > abs(fb):
            s = fb / fa
            if a == c:
                # Secant step.
                p = 2.0 * xm * s
                q = 1.0 - s
            else:
                # Inverse quadratic interpolation.
                q = fa / fc
                r = fb / fc
                p = s * (2.0 * xm * q * (q - r) - (b - a) * (r - 1.0))
                q = (q - 1.0) * (r - 1.0) * (s - 1.0)
            if p > 0.0:
                q = -q
            p = abs(p)
            if 2.0 * p < min(3.0 * xm * q - abs(tol1 * q), abs(e * q)):
                e = d
                d = p / q
            else:
                d = xm
                e = d
        else:
            d = xm
            e = d
        a, fa = b, fb
        if abs(d) > tol1:
            b += d
        else:
            b += tol1 if xm > 0 else -tol1
        fb = f(b)
    return b


def _deflate(
    coeffs: tuple[float, ...],
    lo: float = -math.inf,
    hi: float = math.inf,
) -> tuple[float, ...]:
    """Drop numerically meaningless leading coefficients.

    Two guards, both numeric rather than value-based trimming:

    * denormal leading coefficients would produce infs when the
      companion matrix divides by them;
    * over a *finite* solving domain, a leading term whose maximum
      contribution ``|c_n| T^n`` (``T`` the domain's magnitude bound)
      sits below double-precision resolution of the other terms'
      contributions cannot move any root inside the domain, but it
      wrecks the companion matrix's conditioning (e.g. ``1 - 2 t^2 +
      1e-191 t^3``: the spurious eigenvalue at ~1e191 destroys the
      accuracy of the finite roots).
    """
    scale = max(abs(v) for v in coeffs)
    threshold = max(scale * 1e-290, 5e-308)
    end = len(coeffs)
    while end > 1 and abs(coeffs[end - 1]) < threshold:
        end -= 1
    if math.isfinite(lo) and math.isfinite(hi):
        span = max(abs(lo), abs(hi), 1.0)
        contributions = [abs(c) * span**i for i, c in enumerate(coeffs[:end])]
        cmax = max(contributions)
        while end > 1 and contributions[end - 1] < 1e-14 * cmax:
            end -= 1
    return coeffs[:end]


def _quadratic_roots(c0: float, c1: float, c2: float) -> list[float]:
    """Numerically stable real roots of ``c2 t^2 + c1 t + c0``."""
    disc = c1 * c1 - 4.0 * c2 * c0
    if disc < 0.0:
        return []
    if disc == 0.0:
        return [-c1 / (2.0 * c2)]
    sq = math.sqrt(disc)
    # Avoid catastrophic cancellation: compute the larger-magnitude root
    # first, then the other via the product of roots.
    q = -0.5 * (c1 + math.copysign(sq, c1))
    roots = [q / c2]
    if q != 0.0:
        roots.append(c0 / q)
    else:
        roots.append(0.0)
    return roots


def real_roots(
    poly: Polynomial, lo: float = -math.inf, hi: float = math.inf
) -> list[float]:
    """All real roots of ``poly`` within ``[lo, hi]``, sorted ascending.

    Roots are deduplicated; a root of even multiplicity appears once.  The
    zero polynomial has uncountably many roots and raises ``SolverError`` —
    callers must special-case it (the predicate holds everywhere).
    """
    if poly.is_zero:
        raise SolverFailure(
            "zero-polynomial", "the zero polynomial has no discrete root set"
        )
    check_coefficients(poly.coeffs)
    if poly.degree > _root_budget():
        raise SolverFailure(
            "root-budget",
            f"degree {poly.degree} exceeds the root budget {_root_budget()}",
        )
    c = _deflate(poly.coeffs, lo, hi)
    if len(c) == 1:
        return []
    # Exact low-order zero coefficients factor out as roots at t = 0,
    # so the kernel a row lands on is decided by the *inner* length
    # after that popping (mirrors the batched bucketing).
    lead_zeros = 0
    while lead_zeros < len(c) - 1 and c[lead_zeros] == 0.0:
        lead_zeros += 1
    if len(c) - lead_zeros in (4, 5):
        # Cubics and quartics funnel through the batched kernel as a
        # one-row batch (closed-form Cardano/Ferrari when enabled, with
        # its per-row companion fallback).  Every kernel step there is
        # an elementwise ufunc, so a one-row batch computes exactly
        # what the same row computes inside any larger batch — scalar
        # and batched solves stay bit-identical by construction.
        from .batch_solver import real_roots_rows

        return real_roots_rows([(poly.coeffs, lo, hi)])[0]
    if len(c) == 2:
        roots = [-c[0] / c[1]]
    elif len(c) == 3:
        roots = _quadratic_roots(c[0], c[1], c[2])
    else:
        roots = _companion_roots(Polynomial(c))
    roots = [r for r in roots if math.isfinite(r)]
    roots.sort()
    merged: list[float] = []
    for r in roots:
        if not merged or r - merged[-1] > ROOT_MERGE_TOL * max(1.0, abs(r)):
            merged.append(r)
    span = max((abs(r) for r in merged), default=1.0)
    pad = EPS * max(1.0, span)
    return [r for r in merged if lo - pad <= r <= hi + pad]


def _companion_roots(poly: Polynomial) -> list[float]:
    """Roots of a degree >= 3 polynomial via companion-matrix eigenvalues,
    polished with a Newton step."""
    # numpy.roots expects descending coefficients.
    try:
        eigen = np.roots(list(reversed(poly.coeffs)))
    except (np.linalg.LinAlgError, ValueError) as exc:
        raise SolverFailure(
            "eigvals", f"companion eigensolve failed: {exc}"
        ) from exc
    scale = max(abs(v) for v in poly.coeffs)
    deriv = poly.derivative()
    out: list[float] = []
    for z in eigen:
        if abs(z.imag) > IMAG_TOL * max(1.0, abs(z.real)):
            continue
        x = float(z.real)
        polished = newton(poly, deriv, x)
        if polished is not None:
            x = polished
        if abs(poly(x)) <= RESIDUAL_TOL * max(1.0, scale):
            out.append(x)
    return out


def solve_relation(
    poly: Polynomial, rel: Rel, lo: float, hi: float
) -> TimeSet:
    """Solve ``poly(t) R 0`` for ``t`` in the half-open domain ``[lo, hi)``.

    Returns a :class:`TimeSet`: intervals where an inequality holds, and
    isolated points for equality predicates (this is how selective
    operators with ``=`` comparisons reduce segments to instants,
    Section III-C).
    """
    if lo >= hi:
        return TimeSet.empty()
    # Guardrail before the cheap branches: a NaN "constant" would
    # otherwise silently evaluate to an empty solution instead of
    # flagging the broken model to the caller.
    check_coefficients(poly.coeffs)
    if poly.is_zero:
        if rel.includes_equality:
            return TimeSet.interval(lo, hi)
        return TimeSet.empty()
    if poly.is_constant:
        if rel.holds(poly.coeffs[0]):
            return TimeSet.interval(lo, hi)
        return TimeSet.empty()

    roots = real_roots(poly, lo, hi)
    interior = [r for r in roots if lo < r < hi]

    if rel is Rel.EQ:
        points = [r for r in roots if lo - EPS <= r < hi]
        return TimeSet.from_points(points)
    # NE and the inequalities share the sign-test machinery: NE's
    # solution is the full domain minus the measure-zero roots, i.e.
    # exactly the subintervals between roots that the sign tests keep.
    return _sign_intervals(poly, rel, lo, hi, interior)


def _sign_intervals(
    poly: Polynomial,
    rel: Rel,
    lo: float,
    hi: float,
    interior_roots: Sequence[float],
) -> TimeSet:
    """Sign-test the subintervals delimited by the interior roots."""
    boundaries = [lo, *interior_roots, hi]
    intervals: list[Interval] = []
    points: list[float] = []
    for a, b in zip(boundaries[:-1], boundaries[1:]):
        if b - a <= EPS:
            continue
        mid = 0.5 * (a + b)
        if rel.holds(poly(mid)):
            intervals.append(Interval(a, b))
    if rel.includes_equality and rel is not Rel.EQ:
        # LE / GE additionally hold exactly at the roots; isolated roots not
        # adjacent to a satisfying interval must be kept as points.
        solution = TimeSet(intervals=intervals)
        for r in interior_roots:
            if not solution.contains(r, tol=EPS):
                points.append(r)
    return TimeSet(intervals=intervals, points=points)
