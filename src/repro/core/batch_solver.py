"""Batched companion-matrix solver kernel (the solver hot path, batched).

Root finding is Pulse's hot path: every selective operator reduces to
solving difference rows ``d_i(t) R_i 0`` (Section III-A), and a single
join probe can instantiate dozens of byte-similar systems at once.  The
scalar path in :mod:`repro.core.roots` pays one ``np.roots`` LAPACK
round-trip plus a Python-level Newton polish *per row*.  This module
solves many rows in one sweep:

* rows are **degree-bucketed** and their companion matrices stacked into
  one 3-D array, so all eigenvalues of a bucket come from a single
  ``np.linalg.eigvals`` gufunc call;
* the Newton polish runs **vectorized across every candidate root** of
  every row simultaneously, with masks mirroring the scalar iteration's
  control flow step for step;
* sign tests evaluate all subinterval midpoints of all rows through one
  padded coefficient-matrix sweep (``D`` rows gathered per midpoint)
  instead of per-row Horner loops.

The kernel is built for *parity*: every arithmetic step reproduces the
scalar path's operation sequence exactly (padded Horner is bit-identical
to unpadded Horner for finite arguments, and the stacked eigensolver
applies the same LAPACK kernel per matrix), so batched and scalar solves
return identical :class:`TimeSet` objects.  ``tests/property/
test_batch_solver_parity.py`` enforces this, and :func:`set_solver_mode`
forces the scalar path for A/B experiments.
"""

from __future__ import annotations

import dataclasses
import math
import time
from collections import defaultdict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

import numpy as np

from .closed_form import cubic_candidates, quartic_candidates
from .errors import SolverError, SolverFailure
from .intervals import EPS, Interval, TimeSet
from .polynomial import Polynomial
from .relation import Rel
from .roots import (
    IMAG_TOL,
    RESIDUAL_TOL,
    ROOT_MERGE_TOL,
    _deflate,
    _quadratic_roots,
    check_coefficients,
    solve_relation,
)

#: Newton tolerance, matching :func:`repro.core.roots.newton`'s default.
_NEWTON_TOL = 1e-12
_NEWTON_MAX_ITER = 50

#: One solve task: ``poly(t) rel 0`` over the half-open domain ``[lo, hi)``.
SolveTask = tuple[Polynomial, Rel, float, float]


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------
@dataclass
class SolverConfig:
    """Global solver knobs (the ``modes``-level A/B switch).

    Attributes
    ----------
    kernel:
        ``"batch"`` routes multi-row solves through the batched
        companion-matrix kernel; ``"scalar"`` forces the original
        row-at-a-time path (A/B parity testing).
    closed_form:
        Route degree-3/4 rows through the vectorized Cardano/Ferrari
        kernels (:mod:`repro.core.closed_form`) instead of the stacked
        companion eigensolve.  Rows whose closed-form branch hits a
        non-finite intermediate fall back to the eigensolve per row.
        Disable for A/B timing (``bench_ablation_roots``) and for the
        closed-form-vs-companion parity fuzzing in CI.
    cache_enabled:
        Whether multi-use solve results are memoized in the global
        :class:`~repro.core.solve_cache.SolveCache`.
    cache_size:
        Bound on cached entries (LRU eviction beyond it).
    cache_mantissa_bits:
        Low mantissa bits zeroed when quantizing cache-key floats.  The
        default ``0`` caches only byte-identical systems; raising it
        makes near-identical systems (within ``~2**bits`` ulps) share an
        entry at the cost of exactness.
    max_rows_per_system:
        Guardrail budget: a single system presenting more difference
        rows than this fails with a typed ``"row-budget"``
        :class:`~repro.core.errors.SolverFailure` instead of grinding.
    max_roots_per_row:
        Guardrail budget on a row's polynomial degree (the root count
        bound); beyond it the row fails with ``"root-budget"``.
    incremental:
        Route selective operators through the delta-maintenance path
        (:mod:`repro.core.delta`): probes whose content signature and
        time domain are covered by a previously solved entry are served
        from the per-operator :class:`~repro.core.delta.SolutionStore`
        without touching the equation-system layer, and the priming
        pass ships only genuine delta rows.  ``False`` (the default) is
        the full re-solve path — the parity oracle; the two paths must
        emit bit-identical outputs (enforced by the
        ``incremental-parity`` CI job).
    """

    kernel: str = "batch"
    closed_form: bool = True
    cache_enabled: bool = True
    cache_size: int = 4096
    cache_mantissa_bits: int = 0
    max_rows_per_system: int = 256
    max_roots_per_row: int = 64
    incremental: bool = False


SOLVER_CONFIG = SolverConfig()


def solver_config() -> SolverConfig:
    """The process-wide solver configuration (mutable)."""
    return SOLVER_CONFIG


def batch_kernel_enabled() -> bool:
    return SOLVER_CONFIG.kernel == "batch"


def set_solver_mode(mode: str) -> None:
    """Select the solving path: ``"batch"`` or ``"scalar"``.

    ``"scalar"`` also disables the solve cache so the path is exactly
    the seed implementation — the A/B baseline.  ``"batch"`` restores
    both the kernel and the cache.
    """
    if mode not in ("batch", "scalar"):
        raise ValueError(f"solver mode must be 'batch' or 'scalar', got {mode!r}")
    SOLVER_CONFIG.kernel = mode
    SOLVER_CONFIG.cache_enabled = mode == "batch"


@contextmanager
def solver_mode(mode: str) -> Iterator[SolverConfig]:
    """Temporarily force a solver mode (restores all knobs on exit)."""
    saved = dataclasses.asdict(SOLVER_CONFIG)
    try:
        set_solver_mode(mode)
        yield SOLVER_CONFIG
    finally:
        for name, value in saved.items():
            setattr(SOLVER_CONFIG, name, value)


def incremental_enabled() -> bool:
    """Whether the delta-maintenance (incremental re-solve) path is on."""
    return SOLVER_CONFIG.incremental


def set_incremental(on: bool) -> None:
    """Toggle the incremental delta re-solve path (A/B knob)."""
    SOLVER_CONFIG.incremental = bool(on)


@contextmanager
def incremental_mode(on: bool = True) -> Iterator[SolverConfig]:
    """Temporarily toggle the incremental path (restores on exit)."""
    saved = SOLVER_CONFIG.incremental
    try:
        SOLVER_CONFIG.incremental = bool(on)
        yield SOLVER_CONFIG
    finally:
        SOLVER_CONFIG.incremental = saved


# ----------------------------------------------------------------------
# fault injection hook
# ----------------------------------------------------------------------
#: A fault hook sees every solve task about to run (cache misses only)
#: and may raise a :class:`SolverError` to fail it or return a
#: replacement task (e.g. with NaN coefficients) to corrupt it.  ``None``
#: passes the task through untouched.  Installed by the fault-injection
#: harness (:mod:`repro.testing.faults`); never set in production.
FaultHook = Callable[[SolveTask], "SolveTask | None"]

_FAULT_HOOK: FaultHook | None = None


def set_fault_hook(hook: FaultHook | None) -> FaultHook | None:
    """Install (or clear) the solver fault hook; returns the previous one."""
    global _FAULT_HOOK
    previous = _FAULT_HOOK
    _FAULT_HOOK = hook
    return previous


def fault_hook() -> FaultHook | None:
    return _FAULT_HOOK


# ----------------------------------------------------------------------
# roots dispatch hook (sharded runtime integration point)
# ----------------------------------------------------------------------
#: Signature-compatible replacement for :func:`real_roots_batch`.  The
#: sharded runtime installs a dispatcher here that serves root lists
#: from the parent-side :class:`~repro.core.solve_cache.RootCache`
#: (filled by priming sweeps through shard workers) and falls back to
#: the in-process kernel for anything unprimed.  ``None`` means the
#: serial path: every root is computed inline.
RootsDispatch = Callable[
    [Sequence[tuple[Polynomial, float, float]], "dict[int, SolverError] | None"],
    list[list[float]],
]

_ROOTS_DISPATCH: RootsDispatch | None = None


def set_roots_dispatch(dispatch: RootsDispatch | None) -> RootsDispatch | None:
    """Install (or clear) the roots dispatcher; returns the previous one."""
    global _ROOTS_DISPATCH
    previous = _ROOTS_DISPATCH
    _ROOTS_DISPATCH = dispatch
    return previous


def roots_dispatch() -> RootsDispatch | None:
    return _ROOTS_DISPATCH


# ----------------------------------------------------------------------
# instrumentation hooks (observability integration points)
# ----------------------------------------------------------------------
#: Hooks installed by :func:`repro.engine.tracing.enable_observability`.
#: The span hooks are context-manager factories called with the batch
#: size; the eigen observer is called with ``(n_matrices, seconds)``
#: after each stacked eigensolve.  All default to ``None`` — a disabled
#: run pays exactly one global load plus an ``is None`` test per site
#: and makes zero instrumentation calls (pinned by
#: ``tests/engine/test_tracing.py``).
_SPAN_SOLVE_TASKS: Callable | None = None
_SPAN_ROOTS: Callable | None = None
_EIGEN_OBSERVER: Callable | None = None
#: Per-degree kernel observer: called as ``(degree, n_rows, seconds)``
#: after each closed-form kernel call and each companion degree bucket,
#: so the split between Cardano/Ferrari and eigensolve latency is
#: visible per degree (``solver.roots_seconds.degree_<d>`` histograms).
_DEGREE_OBSERVER: Callable | None = None


def set_solver_instrumentation(
    solve_span: Callable | None = None,
    roots_span: Callable | None = None,
    eigen_observer: Callable | None = None,
    degree_observer: Callable | None = None,
) -> None:
    """Install (or clear, the default) the solver instrumentation hooks."""
    global _SPAN_SOLVE_TASKS, _SPAN_ROOTS, _EIGEN_OBSERVER, _DEGREE_OBSERVER
    _SPAN_SOLVE_TASKS = solve_span
    _SPAN_ROOTS = roots_span
    _EIGEN_OBSERVER = eigen_observer
    _DEGREE_OBSERVER = degree_observer


def solver_instrumentation() -> tuple:
    return (_SPAN_SOLVE_TASKS, _SPAN_ROOTS, _EIGEN_OBSERVER, _DEGREE_OBSERVER)


# ----------------------------------------------------------------------
# padded-matrix polynomial evaluation
# ----------------------------------------------------------------------
def pad_coefficient_matrix(
    coeff_rows: Sequence[Sequence[float]], width: int | None = None
) -> np.ndarray:
    """Stack ascending coefficient rows into one zero-padded matrix.

    This is the batched ``D`` of Equation (1): row ``i`` holds the
    coefficients of ``d_i`` padded to the common width, so one sweep
    evaluates every row at once.
    """
    if width is None:
        width = max((len(c) for c in coeff_rows), default=1)
    matrix = np.zeros((len(coeff_rows), width))
    for i, coeffs in enumerate(coeff_rows):
        matrix[i, : len(coeffs)] = coeffs
    return matrix


def horner_rows(matrix: np.ndarray, ts: np.ndarray) -> np.ndarray:
    """Evaluate ``matrix[i]``'s polynomial at ``ts[i]`` for every ``i``.

    A column sweep of fused multiply-adds: starting from the (padded)
    leading column, ``r = r * t + c``.  For finite ``ts`` this is
    bit-identical to scalar Horner on the unpadded coefficients — the
    zero-pad prefix contributes exact zeros — which is what makes the
    batched sign tests reproduce the scalar solver's decisions.
    """
    result = matrix[:, -1].copy()
    for col in range(matrix.shape[1] - 2, -1, -1):
        result = result * ts + matrix[:, col]
    return result


def derivative_matrix(matrix: np.ndarray) -> np.ndarray:
    """Row-wise derivative coefficients of a padded ascending matrix."""
    if matrix.shape[1] <= 1:
        return np.zeros((matrix.shape[0], 1))
    return matrix[:, 1:] * np.arange(1, matrix.shape[1], dtype=float)


def vandermonde_values(matrix: np.ndarray, ts: np.ndarray) -> np.ndarray:
    """``D @ [1, t, t^2, ...]`` for every sample: shape (rows, len(ts)).

    The slack path's batched evaluation — one matrix product instead of
    per-row Horner loops over the sample grid.
    """
    powers = np.vander(np.asarray(ts, dtype=float), matrix.shape[1], increasing=True)
    return matrix @ powers.T


# ----------------------------------------------------------------------
# batched Newton polish
# ----------------------------------------------------------------------
def _newton_polish_batch(
    coeffs: np.ndarray, x0: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized Newton–Raphson mirroring :func:`repro.core.roots.newton`.

    ``coeffs`` holds one padded ascending coefficient row per candidate;
    ``x0`` the starting points.  Returns ``(x, ok)`` where ``ok[i]`` is
    False exactly when the scalar iteration would have returned ``None``
    (zero/non-finite derivative, divergence, or a weak final residual).
    """
    n = x0.shape[0]
    deriv = derivative_matrix(coeffs)
    x = x0.astype(float).copy()
    result = x.copy()
    ok = np.zeros(n, dtype=bool)
    active = np.ones(n, dtype=bool)
    with np.errstate(all="ignore"):
        for _ in range(_NEWTON_MAX_ITER):
            if not active.any():
                break
            fx = horner_rows(coeffs, x)
            conv = active & (np.abs(fx) < _NEWTON_TOL)
            result[conv] = x[conv]
            ok |= conv
            active &= ~conv
            d = horner_rows(deriv, x)
            dead = active & ((d == 0.0) | ~np.isfinite(d))
            active &= ~dead
            step = fx / d
            x_next = x - step
            x = np.where(active, x_next, x)
            diverged = active & ~np.isfinite(x)
            active &= ~diverged
            conv = active & (np.abs(step) < _NEWTON_TOL * np.maximum(1.0, np.abs(x)))
            result[conv] = x[conv]
            ok |= conv
            active &= ~conv
        if active.any():
            fx = horner_rows(coeffs, x)
            final = active & (np.abs(fx) < math.sqrt(_NEWTON_TOL))
            result[final] = x[final]
            ok |= final
    return result, ok


# ----------------------------------------------------------------------
# batched companion-matrix root finding
# ----------------------------------------------------------------------
def _stacked_companion_eigvals(rows: list[list[float]]) -> np.ndarray:
    """Eigenvalues of the companion matrices of descending-coeff rows.

    All rows share one length ``N >= 2``; the returned array has shape
    ``(len(rows), N - 1)``.  The matrix layout matches ``np.roots``
    (ones on the first subdiagonal, ``-p[1:]/p[0]`` in the first row) so
    the eigenvalues agree bit for bit with the scalar path.
    """
    observer = _EIGEN_OBSERVER
    if observer is None:
        return _stacked_companion_eigvals_impl(rows)
    t0 = time.perf_counter()
    out = _stacked_companion_eigvals_impl(rows)
    observer(len(rows), time.perf_counter() - t0)
    return out


def _stacked_companion_eigvals_impl(rows: list[list[float]]) -> np.ndarray:
    p = np.asarray(rows, dtype=float)
    m, length = p.shape
    size = length - 1
    matrices = np.zeros((m, size, size))
    if size > 1:
        idx = np.arange(size - 1)
        matrices[:, idx + 1, idx] = 1.0
    matrices[:, 0, :] = -p[:, 1:] / p[:, :1]
    return np.linalg.eigvals(matrices)


def task_root_query(
    task: SolveTask,
) -> tuple[tuple[float, ...], float, float] | None:
    """The root-finder row a solve task would issue, or ``None``.

    Mirrors :func:`solve_relation_batch`'s classification: only
    non-zero, non-constant rows with in-guardrail coefficients and
    in-budget degree reach the root finder, and only over a non-empty
    domain.  Used by the sharded runtime to derive shippable root rows
    from predicted solve tasks.
    """
    poly, _, lo, hi = task
    if lo >= hi or poly.is_zero or poly.is_constant:
        return None
    if poly.degree > SOLVER_CONFIG.max_roots_per_row:
        return None
    try:
        check_coefficients(poly.coeffs)
    except SolverError:
        return None
    return (poly.coeffs, lo, hi)


def real_roots_batch(
    items: Sequence[tuple[Polynomial, float, float]],
    failures: dict[int, SolverError] | None = None,
) -> list[list[float]]:
    """Batched :func:`repro.core.roots.real_roots` over many polynomials.

    Each item is ``(poly, lo, hi)``.  Degree <= 2 rows use the closed
    forms; higher degrees share stacked companion-matrix eigensolves
    (bucketed by effective degree) and one vectorized Newton polish
    across every candidate root of every row.

    Guardrails mirror the scalar path: zero polynomials, non-finite or
    absurd coefficients and over-budget degrees fail with the same typed
    :class:`SolverFailure` the scalar :func:`~repro.core.roots.real_roots`
    raises.  When ``failures`` is given, per-item failures are recorded
    there (the item's result slot stays ``[]``) instead of raised, so one
    poisoned row cannot sink the whole batch; when a stacked eigensolve
    fails, the bucket falls back row by row so only the offending row is
    charged.
    """
    return real_roots_rows(
        [(poly.coeffs, lo, hi) for poly, lo, hi in items],
        failures=failures,
        budget=SOLVER_CONFIG.max_roots_per_row,
    )


def real_roots_rows(
    rows: Sequence[tuple[tuple[float, ...], float, float]],
    failures: dict[int, SolverError] | None = None,
    budget: int | None = None,
) -> list[list[float]]:
    """The raw-row core of :func:`real_roots_batch`.

    ``rows`` holds ``(coeffs, lo, hi)`` with *trimmed ascending*
    coefficient tuples (exactly :attr:`Polynomial.coeffs` semantics: no
    exactly-zero leading entries, the zero polynomial is ``(0.0,)``).
    Operating on raw tuples keeps the function worker-safe — shard
    workers rebuild rows from a shipped float64 matrix and call this
    directly, so parent and worker share one arithmetic path and their
    outputs are bit-identical by construction.  The result of each row
    is also *partition-invariant*: degree bucketing stacks independent
    companion matrices (the eigensolver gufunc loops per matrix) and the
    Newton polish is element-wise, so splitting a batch across shards
    cannot change any row's roots.
    """
    hook = _SPAN_ROOTS
    if hook is None:
        return _real_roots_rows_impl(rows, failures, budget)
    with hook(len(rows)):
        return _real_roots_rows_impl(rows, failures, budget)


#: Closed-form dispatch tallies for this process: rows solved by the
#: Cardano/Ferrari kernels vs rows they handed back to the companion
#: eigensolve (non-finite branch).  Cumulative; read by the ablation
#: bench and the fallback-coverage tests.
CLOSED_FORM_STATS = {"rows": 0, "fallback_rows": 0}


def closed_form_stats() -> dict[str, int]:
    """A snapshot of the cumulative closed-form dispatch tallies."""
    return dict(CLOSED_FORM_STATS)


def _real_roots_rows_impl(
    rows: Sequence[tuple[tuple[float, ...], float, float]],
    failures: dict[int, SolverError] | None = None,
    budget: int | None = None,
) -> list[list[float]]:
    n = len(rows)
    deflated: list[tuple[float, ...]] = [()] * n
    candidates: list[list[float]] = [[] for _ in range(n)]
    failed: set[int] = set()
    # inner companion length -> list of (item index, descending inner coeffs)
    buckets: dict[int, list[tuple[int, list[float]]]] = defaultdict(list)
    # inner lengths 4/5 peel off to the closed-form kernels when enabled
    cf_buckets: dict[int, list[tuple[int, list[float]]]] = defaultdict(list)
    needs_polish: set[int] = set()
    use_closed_form = SOLVER_CONFIG.closed_form

    def record(j: int, exc: SolverError) -> None:
        if failures is None:
            raise exc
        failed.add(j)
        candidates[j] = []
        failures[j] = exc

    if budget is None:
        budget = SOLVER_CONFIG.max_roots_per_row
    for j, (coeffs, lo, hi) in enumerate(rows):
        try:
            if len(coeffs) == 1 and coeffs[0] == 0.0:
                raise SolverFailure(
                    "zero-polynomial",
                    "the zero polynomial has no discrete root set",
                )
            check_coefficients(coeffs)
            if len(coeffs) - 1 > budget:
                raise SolverFailure(
                    "root-budget",
                    f"degree {len(coeffs) - 1} exceeds the root budget "
                    f"{budget}",
                )
        except SolverError as exc:
            record(j, exc)
            continue
        c = _deflate(coeffs, lo, hi)
        deflated[j] = c
        if len(c) == 2:
            candidates[j] = [-c[0] / c[1]]
        elif len(c) == 3:
            candidates[j] = _quadratic_roots(c[0], c[1], c[2])
        elif len(c) > 3:
            needs_polish.add(j)
            desc = list(reversed(c))
            # np.roots semantics: exact trailing zeros factor out as
            # roots at t = 0 (the scalar path polishes them too).
            while desc[-1] == 0.0 and len(desc) > 1:
                desc.pop()
                candidates[j].append(0.0)
            if len(desc) >= 2:
                if use_closed_form and len(desc) in (4, 5):
                    cf_buckets[len(desc)].append((j, desc))
                else:
                    buckets[len(desc)].append((j, desc))

    # Closed-form ladder rung: degree-3/4 rows through the vectorized
    # Cardano/Ferrari kernels.  A row whose kernel branch went
    # non-finite (ok=False) drops into the companion bucket below —
    # the per-row eigval fallback.
    observer = _DEGREE_OBSERVER
    for length, jobs in sorted(cf_buckets.items()):
        kernel = cubic_candidates if length == 4 else quartic_candidates
        desc_matrix = np.asarray([coeffs for _, coeffs in jobs], dtype=float)
        if observer is None:
            cand, ok = kernel(desc_matrix)
        else:
            t0 = time.perf_counter()
            cand, ok = kernel(desc_matrix)
            observer(length - 1, len(jobs), time.perf_counter() - t0)
        finite = np.isfinite(cand)
        for slot, (j, coeffs) in enumerate(jobs):
            if ok[slot]:
                CLOSED_FORM_STATS["rows"] += 1
                candidates[j].extend(float(v) for v in cand[slot][finite[slot]])
            else:
                CLOSED_FORM_STATS["fallback_rows"] += 1
                buckets[length].append((j, coeffs))

    for length, jobs in sorted(buckets.items()):
        if observer is not None:
            t0 = time.perf_counter()
        try:
            eigen = _stacked_companion_eigvals([coeffs for _, coeffs in jobs])
        except (np.linalg.LinAlgError, ValueError):
            # The stacked eigensolve failed as a whole.  Retry row by
            # row so a single poisoned companion matrix is charged to
            # its own item rather than sinking the degree bucket.
            eigen = []
            for j, coeffs in jobs:
                try:
                    eigen.append(_stacked_companion_eigvals([coeffs])[0])
                except (np.linalg.LinAlgError, ValueError) as exc:
                    record(
                        j,
                        SolverFailure(
                            "eigvals", f"companion eigensolve failed: {exc}"
                        ),
                    )
                    eigen.append(None)
        for (j, _), row in zip(jobs, eigen):
            if row is None:
                continue
            keep = np.abs(row.imag) <= IMAG_TOL * np.maximum(1.0, np.abs(row.real))
            candidates[j].extend(float(v) for v in row.real[keep])
        if observer is not None:
            observer(length - 1, len(jobs), time.perf_counter() - t0)

    # One Newton polish across every candidate of every degree->=3 item.
    polish_items = [
        j for j in sorted(needs_polish - failed) if candidates[j]
    ]
    if polish_items:
        owner = np.concatenate(
            [np.full(len(candidates[j]), j, dtype=int) for j in polish_items]
        )
        x0 = np.concatenate(
            [np.asarray(candidates[j], dtype=float) for j in polish_items]
        )
        width = max(len(deflated[j]) for j in polish_items)
        coeff_rows = pad_coefficient_matrix(
            [deflated[j] for j in polish_items], width
        )
        index_of = {j: k for k, j in enumerate(polish_items)}
        gathered = coeff_rows[[index_of[j] for j in owner]]
        polished, ok = _newton_polish_batch(gathered, x0)
        final = np.where(ok, polished, x0)
        with np.errstate(all="ignore"):
            residual = np.abs(horner_rows(gathered, final))
        for j in polish_items:
            mask = owner == j
            scale = max(abs(v) for v in deflated[j])
            bound = RESIDUAL_TOL * max(1.0, scale)
            candidates[j] = [
                float(v) for v, r in zip(final[mask], residual[mask]) if r <= bound
            ]

    # Scalar post-processing: finite filter, sort, dedupe, domain pad —
    # verbatim from real_roots so the output multiset is identical.
    out: list[list[float]] = []
    for j, (_, lo, hi) in enumerate(rows):
        roots = [r for r in candidates[j] if math.isfinite(r)]
        roots.sort()
        merged: list[float] = []
        for r in roots:
            if not merged or r - merged[-1] > ROOT_MERGE_TOL * max(1.0, abs(r)):
                merged.append(r)
        span = max((abs(r) for r in merged), default=1.0)
        pad = EPS * max(1.0, span)
        out.append([r for r in merged if lo - pad <= r <= hi + pad])
    return out


# ----------------------------------------------------------------------
# worker entry point (sharded runtime)
# ----------------------------------------------------------------------
def solve_rows_worker(payload: dict) -> dict:
    """Pure, picklable shard-worker entry point: payload in, payload out.

    The parallel dispatcher ships one of these per shard per round.  The
    input payload carries rows as contiguous float64 ndarrays (no
    Python-object pickling on the hot path):

    ``coeffs``
        ``(n, width)`` float64 matrix, row ``i`` holding the trimmed
        ascending coefficients in ``coeffs[i, :lengths[i]]`` (zero pad
        beyond — exactly :attr:`Polynomial.coeffs` once sliced).
    ``lengths``
        ``(n,)`` int64 coefficient counts.
    ``lo`` / ``hi``
        ``(n,)`` float64 domain bounds per row.
    ``root_budget``
        Optional per-row degree budget (defaults to the worker's own
        :data:`SOLVER_CONFIG`; the parent always passes its value so
        config drift between processes cannot change behaviour).
    ``cache``
        Optional bool (default ``True``): consult/fill this process's
        :func:`~repro.core.solve_cache.worker_root_cache`.
    ``shard``
        Opaque shard id, echoed back for merge bookkeeping.
    ``observe``
        Optional bool (default ``False``): time this call's kernel work
        and ship the timings home as mergeable histogram dicts under
        ``"timings"`` (``solve_seconds`` for the whole
        :func:`real_roots_rows` sweep, ``eigensolve_seconds`` per
        stacked eigensolve) — the same fixed buckets the parent uses,
        so the dispatcher merges them straight into its histograms.

    The result payload holds ``roots`` (flat float64 of all rows' roots,
    row ``i`` occupying ``roots[offsets[i]:offsets[i + 1]]``),
    ``offsets`` (``(n + 1,)`` int64), ``failures`` (list of
    ``(row_index, reason, detail)`` for typed per-row failures — never
    raised, never cached) and ``cache_stats`` (this call's hit/miss
    /eviction *delta* as a dict, mergeable across calls and workers via
    :meth:`~repro.core.solve_cache.CacheStats.merge`).

    The function touches no global registry and no runtime state beyond
    the per-process root cache, so it is safe to run in forked pool
    workers and, with ``cache=False``, is fully deterministic from its
    arguments alone.
    """
    coeffs = np.ascontiguousarray(payload["coeffs"], dtype=float)
    lengths = np.asarray(payload["lengths"], dtype=np.int64)
    lo = np.asarray(payload["lo"], dtype=float)
    hi = np.asarray(payload["hi"], dtype=float)
    budget = int(payload.get("root_budget") or SOLVER_CONFIG.max_roots_per_row)
    use_cache = bool(payload.get("cache", True))
    shard = int(payload.get("shard", 0))
    observe = bool(payload.get("observe", False))

    flat, offsets, failures, stats, timings = solve_rows_arrays(
        coeffs, lengths, lo, hi,
        budget=budget, use_cache=use_cache, observe=observe,
    )
    result = {
        "shard": shard,
        "roots": flat,
        "offsets": offsets,
        "failures": failures,
        "cache_stats": stats,
    }
    if timings is not None:
        result["timings"] = timings
    return result


def solve_rows_arrays(
    coeffs: np.ndarray,
    lengths: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
    *,
    budget: int | None = None,
    use_cache: bool = True,
    observe: bool = False,
) -> tuple[np.ndarray, np.ndarray, list, dict, dict | None]:
    """The array-in/array-out core shared by both worker transports.

    ``solve_rows_worker`` (pickled-ndarray payloads) and the
    shared-memory transport (:mod:`repro.engine.shm_transport`, arrays
    attached zero-copy from a request segment) both funnel here, so
    the transport cannot change arithmetic: rows in, one
    :func:`real_roots_rows` sweep over the cache misses, flat roots
    out.  Returns ``(flat_roots, offsets, failures, cache_stats_dict,
    timings_dict_or_None)`` with the exact semantics documented on
    :func:`solve_rows_worker`.
    """
    from .solve_cache import CacheStats, RootCache, worker_root_cache

    if budget is None:
        budget = SOLVER_CONFIG.max_roots_per_row
    cache = worker_root_cache() if use_cache else None
    base = cache.snapshot() if cache is not None else None

    n = int(lengths.shape[0])
    roots_out: list[Sequence[float]] = [()] * n
    failures: list[tuple[int, str, str]] = []
    pending_rows: list[tuple[tuple[float, ...], float, float]] = []
    pending_idx: list[int] = []
    pending_keys: list[object] = []
    for i in range(n):
        row = tuple(float(c) for c in coeffs[i, : int(lengths[i])])
        a, b = float(lo[i]), float(hi[i])
        if cache is not None:
            key = RootCache.key(row, a, b)
            hit = cache.get(key)
            if hit is not None:
                roots_out[i] = hit
                continue
            pending_keys.append(key)
        pending_rows.append((row, a, b))
        pending_idx.append(i)

    timings: dict | None = None
    if pending_rows:
        row_failures: dict[int, SolverError] = {}
        if not observe:
            solved = real_roots_rows(
                pending_rows, failures=row_failures, budget=budget
            )
        else:
            # Time the kernel sweep in-worker and ship the histograms
            # home; same buckets as the parent, so they merge directly.
            from ..engine.metrics import Histogram

            solve_hist = Histogram("worker.solve_seconds")
            eigen_hist = Histogram("worker.eigensolve_seconds")
            global _EIGEN_OBSERVER
            prev_observer = _EIGEN_OBSERVER
            _EIGEN_OBSERVER = lambda n, seconds: eigen_hist.observe(seconds)
            t0 = time.perf_counter()
            try:
                solved = real_roots_rows(
                    pending_rows, failures=row_failures, budget=budget
                )
            finally:
                solve_hist.observe(time.perf_counter() - t0)
                _EIGEN_OBSERVER = prev_observer
            timings = {
                "solve_seconds": solve_hist.as_dict(),
                "eigensolve_seconds": eigen_hist.as_dict(),
            }
        for slot, i in enumerate(pending_idx):
            exc = row_failures.get(slot)
            if exc is not None:
                reason = getattr(exc, "reason", "internal")
                detail = getattr(exc, "detail", None)
                failures.append((i, str(reason), str(detail or exc)))
                continue
            roots_out[i] = solved[slot]
            if cache is not None:
                cache.put(pending_keys[slot], solved[slot])

    offsets = np.zeros(n + 1, dtype=np.int64)
    for i in range(n):
        offsets[i + 1] = offsets[i] + len(roots_out[i])
    flat = np.fromiter(
        (r for roots in roots_out for r in roots),
        dtype=float,
        count=int(offsets[-1]),
    )

    if cache is not None:
        snap = cache.snapshot()
        stats = CacheStats(
            hits=snap.hits - base.hits,
            misses=snap.misses - base.misses,
            evictions=snap.evictions - base.evictions,
            entries=snap.entries,
        )
    else:
        stats = CacheStats()
    return flat, offsets, failures, stats.as_dict(), timings


# ----------------------------------------------------------------------
# batched relation solving
# ----------------------------------------------------------------------
def solve_relation_batch(
    tasks: Sequence[SolveTask],
    failures: dict[int, SolverError] | None = None,
) -> list[TimeSet]:
    """Batched :func:`repro.core.roots.solve_relation` over many rows.

    Returns one :class:`TimeSet` per task, identical to what the scalar
    path produces for the same ``(poly, rel, lo, hi)`` — including the
    typed :class:`SolverFailure` guardrails.  With a ``failures`` dict,
    per-task failures are recorded (result slot ``TimeSet.empty()``)
    instead of raised.
    """
    n = len(tasks)
    results: list[TimeSet | None] = [None] * n
    pending: list[int] = []
    for i, (poly, rel, lo, hi) in enumerate(tasks):
        if lo >= hi:
            results[i] = TimeSet.empty()
            continue
        try:
            check_coefficients(poly.coeffs)
        except SolverFailure as exc:
            if failures is None:
                raise
            failures[i] = exc
            results[i] = TimeSet.empty()
            continue
        if poly.is_zero:
            results[i] = (
                TimeSet.interval(lo, hi)
                if rel.includes_equality
                else TimeSet.empty()
            )
        elif poly.is_constant:
            results[i] = (
                TimeSet.interval(lo, hi)
                if rel.holds(poly.coeffs[0])
                else TimeSet.empty()
            )
        else:
            pending.append(i)
    if not pending:
        return results  # type: ignore[return-value]

    slot_failures: dict[int, SolverError] | None = (
        None if failures is None else {}
    )
    roots_fn = _ROOTS_DISPATCH if _ROOTS_DISPATCH is not None else real_roots_batch
    roots_per = roots_fn(
        [(tasks[i][0], tasks[i][2], tasks[i][3]) for i in pending],
        slot_failures,
    )
    if slot_failures:
        for slot, exc in slot_failures.items():
            failures[pending[slot]] = exc  # type: ignore[index]
            results[pending[slot]] = TimeSet.empty()

    failed_tasks = set() if slot_failures is None else {
        pending[slot] for slot in slot_failures
    }

    # Collect every sign-test midpoint across all pending rows, then
    # evaluate them in one gathered coefficient-matrix sweep.
    sign_jobs: list[tuple[int, list[float], list[tuple[float, float, float]]]] = []
    eval_rows: list[int] = []  # index into `pending` per midpoint
    eval_ts: list[float] = []
    for slot, i in enumerate(pending):
        if i in failed_tasks:
            continue
        poly, rel, lo, hi = tasks[i]
        roots = roots_per[slot]
        if rel is Rel.EQ:
            points = [r for r in roots if lo - EPS <= r < hi]
            results[i] = TimeSet.from_points(points)
            continue
        interior = [r for r in roots if lo < r < hi]
        boundaries = [lo, *interior, hi]
        spans: list[tuple[float, float, float]] = []
        for a, b in zip(boundaries[:-1], boundaries[1:]):
            if b - a <= EPS:
                continue
            mid = 0.5 * (a + b)
            spans.append((a, b, mid))
            eval_rows.append(slot)
            eval_ts.append(mid)
        sign_jobs.append((i, interior, spans))

    midpoint_values: dict[tuple[int, float], float] = {}
    if eval_ts:
        ts = np.asarray(eval_ts, dtype=float)
        finite = np.isfinite(ts)
        coeff_matrix = pad_coefficient_matrix(
            [tasks[pending[s]][0].coeffs for s in sorted(set(eval_rows))]
        )
        order = {s: k for k, s in enumerate(sorted(set(eval_rows)))}
        gathered = coeff_matrix[[order[s] for s in eval_rows]]
        with np.errstate(all="ignore"):
            values = horner_rows(gathered, ts)
        for k, (slot, t) in enumerate(zip(eval_rows, eval_ts)):
            if finite[k]:
                midpoint_values[(slot, t)] = float(values[k])
            else:
                # Padded Horner is only Horner-exact for finite t;
                # infinite-domain midpoints fall back to the scalar
                # evaluation the sequential path would have used.
                midpoint_values[(slot, t)] = tasks[pending[slot]][0](t)

    slot_of = {i: slot for slot, i in enumerate(pending)}
    for i, interior, spans in sign_jobs:
        poly, rel, lo, hi = tasks[i]
        intervals = [
            Interval(a, b)
            for a, b, mid in spans
            if rel.holds(midpoint_values[(slot_of[i], mid)])
        ]
        points: list[float] = []
        if rel.includes_equality and rel is not Rel.EQ:
            solution = TimeSet(intervals=intervals)
            for r in interior:
                if not solution.contains(r, tol=EPS):
                    points.append(r)
        results[i] = TimeSet(intervals=intervals, points=points)
    return results  # type: ignore[return-value]


# ----------------------------------------------------------------------
# cached entry points
# ----------------------------------------------------------------------
def solve_tasks(
    tasks: Sequence[SolveTask],
    failures: dict[int, SolverError] | None = None,
) -> list[TimeSet]:
    """Solve many difference rows, consulting the cache and the kernel.

    This is the single funnel every row solve goes through: cache lookup
    first (when enabled), then either the batched kernel or the scalar
    path for the misses, then cache fill.  Failed tasks are never
    cached; with a ``failures`` dict, their typed errors are recorded
    per task index (result slot ``TimeSet.empty()``) instead of raised.
    """
    hook = _SPAN_SOLVE_TASKS
    if hook is None:
        return _solve_tasks_impl(tasks, failures)
    with hook(len(tasks)):
        return _solve_tasks_impl(tasks, failures)


def _solve_tasks_impl(
    tasks: Sequence[SolveTask],
    failures: dict[int, SolverError] | None = None,
) -> list[TimeSet]:
    cfg = SOLVER_CONFIG
    cache = None
    if cfg.cache_enabled:
        from .solve_cache import global_solve_cache

        cache = global_solve_cache()
    results: list[TimeSet | None] = [None] * len(tasks)
    miss_indices: list[int] = []
    keys: list[object] = []
    aliases: list[tuple[int, int]] = []  # (result index, miss slot)
    if cache is not None:
        # Counter handle bound once per call, not looked up per task.
        hits_counter = cache._counter("hits")
        slot_of_key: dict[object, int] = {}
        for i, task in enumerate(tasks):
            key = cache.key(*task)
            if key in slot_of_key:
                # Duplicate of an in-flight miss: served from this very
                # batch's fill, so it counts as a hit.
                hits_counter.bump()
                aliases.append((i, slot_of_key[key]))
                continue
            hit = cache.get(key)
            if hit is not None:
                results[i] = hit
            else:
                slot_of_key[key] = len(miss_indices)
                miss_indices.append(i)
                keys.append(key)
    else:
        miss_indices = list(range(len(tasks)))

    miss_failures: dict[int, SolverError] = {}
    if miss_indices:
        pending = [tasks[i] for i in miss_indices]
        hook = _FAULT_HOOK
        if hook is not None:
            hooked: list[SolveTask] = []
            for slot, task in enumerate(pending):
                try:
                    replacement = hook(task)
                except SolverError as exc:
                    if failures is None:
                        raise
                    miss_failures[slot] = exc
                    replacement = None
                hooked.append(task if replacement is None else replacement)
            pending = hooked
        live = [s for s in range(len(pending)) if s not in miss_failures]
        solved: dict[int, TimeSet] = {}
        if batch_kernel_enabled():
            live_failures: dict[int, SolverError] | None = (
                None if failures is None else {}
            )
            solved_live = solve_relation_batch(
                [pending[s] for s in live], failures=live_failures
            )
            for k, s in enumerate(live):
                solved[s] = solved_live[k]
            if live_failures:
                for k, exc in live_failures.items():
                    miss_failures[live[k]] = exc
        else:
            for s in live:
                p, rel, lo, hi = pending[s]
                try:
                    solved[s] = solve_relation(p, rel, lo, hi)
                except SolverError as exc:
                    if failures is None:
                        raise
                    miss_failures[s] = exc
        for slot, i in enumerate(miss_indices):
            if slot in miss_failures:
                failures[i] = miss_failures[slot]  # type: ignore[index]
                results[i] = TimeSet.empty()
                continue
            results[i] = solved[slot]
            if cache is not None:
                cache.put(keys[slot], solved[slot])
    for i, slot in aliases:
        if slot in miss_failures and failures is not None:
            failures[i] = miss_failures[slot]
        results[i] = results[miss_indices[slot]]
    return results  # type: ignore[return-value]


def solve_one(poly: Polynomial, rel: Rel, lo: float, hi: float) -> TimeSet:
    """Solve a single row through the cache/kernel funnel."""
    return solve_tasks([(poly, rel, lo, hi)])[0]
