"""Predicates and their normalization to polynomial difference form.

Section III-A's three-step transform — rewrite in difference form,
substitute the continuous models, factorize over the time variable — is
implemented here as :meth:`Comparison.difference_expr` plus
:func:`normalize`, which additionally eliminates ``sqrt`` and ``abs`` by
monotone rewrites so that every *atom* reaching the equation system is a
pure polynomial comparison against zero.

Boolean structure (conjunction, disjunction, negation) is kept as a tree;
the equation-system solver applies it to the per-atom solution time ranges
exactly as the paper prescribes for general predicates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from .errors import PredicateError
from .expr import Abs, Const, Expr, Sqrt, Sub
from .relation import Rel


class BoolExpr:
    """Base class for boolean predicate trees."""

    def attributes(self) -> frozenset[str]:
        raise NotImplementedError

    def evaluate(self, env: Mapping[str, float]) -> bool:
        """Discrete-path evaluation against concrete attribute values."""
        raise NotImplementedError

    def atoms(self) -> Iterable["Comparison"]:
        """All comparison atoms in the tree, left to right."""
        raise NotImplementedError


@dataclass(frozen=True)
class Comparison(BoolExpr):
    """An atomic comparison ``left R right``."""

    left: Expr
    rel: Rel
    right: Expr

    def attributes(self) -> frozenset[str]:
        return self.left.attributes() | self.right.attributes()

    def evaluate(self, env: Mapping[str, float]) -> bool:
        left = self.left.evaluate(env)
        right = self.right.evaluate(env)
        if isinstance(left, (int, float)) and isinstance(right, (int, float)):
            return self.rel.holds(left - right)
        # Non-numeric values (keys, symbols) compare directly.
        return _compare_values(left, self.rel, right)

    def atoms(self) -> Iterable["Comparison"]:
        yield self

    def difference_expr(self) -> Expr:
        """Step 1 of the transform: rewrite ``x R y`` as ``x - y R 0``."""
        if isinstance(self.right, Const) and self.right.value == 0.0:
            return self.left
        return Sub(self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} {self.rel} {self.right!r})"


@dataclass(frozen=True)
class And(BoolExpr):
    children: tuple[BoolExpr, ...]

    def __init__(self, *children: BoolExpr):
        flat: list[BoolExpr] = []
        for child in children:
            if isinstance(child, And):
                flat.extend(child.children)
            else:
                flat.append(child)
        object.__setattr__(self, "children", tuple(flat))

    def attributes(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for child in self.children:
            out |= child.attributes()
        return out

    def evaluate(self, env: Mapping[str, float]) -> bool:
        return all(child.evaluate(env) for child in self.children)

    def atoms(self) -> Iterable[Comparison]:
        for child in self.children:
            yield from child.atoms()

    def __repr__(self) -> str:
        return "(" + " AND ".join(repr(c) for c in self.children) + ")"


@dataclass(frozen=True)
class Or(BoolExpr):
    children: tuple[BoolExpr, ...]

    def __init__(self, *children: BoolExpr):
        flat: list[BoolExpr] = []
        for child in children:
            if isinstance(child, Or):
                flat.extend(child.children)
            else:
                flat.append(child)
        object.__setattr__(self, "children", tuple(flat))

    def attributes(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for child in self.children:
            out |= child.attributes()
        return out

    def evaluate(self, env: Mapping[str, float]) -> bool:
        return any(child.evaluate(env) for child in self.children)

    def atoms(self) -> Iterable[Comparison]:
        for child in self.children:
            yield from child.atoms()

    def __repr__(self) -> str:
        return "(" + " OR ".join(repr(c) for c in self.children) + ")"


@dataclass(frozen=True)
class Not(BoolExpr):
    child: BoolExpr

    def attributes(self) -> frozenset[str]:
        return self.child.attributes()

    def evaluate(self, env: Mapping[str, float]) -> bool:
        return not self.child.evaluate(env)

    def atoms(self) -> Iterable[Comparison]:
        yield from self.child.atoms()

    def __repr__(self) -> str:
        return f"(NOT {self.child!r})"


#: Predicate atoms that always hold / never hold, used when rewrites
#: resolve a comparison statically (e.g. ``sqrt(E) >= c`` with ``c < 0``).
@dataclass(frozen=True)
class Literal(BoolExpr):
    value: bool

    def attributes(self) -> frozenset[str]:
        return frozenset()

    def evaluate(self, env: Mapping[str, float]) -> bool:
        return self.value

    def atoms(self) -> Iterable[Comparison]:
        return iter(())

    def __repr__(self) -> str:
        return "TRUE" if self.value else "FALSE"


TRUE = Literal(True)
FALSE = Literal(False)


def _compare_values(left: object, rel: Rel, right: object) -> bool:
    """Direct comparison for non-numeric operand values."""
    if rel is Rel.EQ:
        return left == right
    if rel is Rel.NE:
        return left != right
    if rel is Rel.LT:
        return left < right
    if rel is Rel.LE:
        return left <= right
    if rel is Rel.GE:
        return left >= right
    return left > right


def normalize(pred: BoolExpr) -> BoolExpr:
    """Rewrite a predicate so every atom is polynomial-compilable.

    Applies, recursively until fixpoint:

    * ``NOT atom``      → atom with the negated relation;
    * ``sqrt(E) R c``   → ``E R c**2`` (sqrt is monotone; its argument is
      non-negative wherever it is defined) with static resolution when
      ``c < 0``;
    * ``abs(E) R c``    → the two-sided expansion (``abs(E) < c`` becomes
      ``E < c AND E > -c``; ``abs(E) > c`` becomes ``E > c OR E < -c``);
    * constants are folded through ``And``/``Or``.
    """
    if isinstance(pred, Literal):
        return pred
    if isinstance(pred, And):
        children = [normalize(c) for c in pred.children]
        if any(c == FALSE for c in children):
            return FALSE
        children = [c for c in children if c != TRUE]
        if not children:
            return TRUE
        if len(children) == 1:
            return children[0]
        return And(*children)
    if isinstance(pred, Or):
        children = [normalize(c) for c in pred.children]
        if any(c == TRUE for c in children):
            return TRUE
        children = [c for c in children if c != FALSE]
        if not children:
            return FALSE
        if len(children) == 1:
            return children[0]
        return Or(*children)
    if isinstance(pred, Not):
        return normalize(_push_not(pred.child))
    if isinstance(pred, Comparison):
        return _normalize_comparison(pred)
    raise PredicateError(f"unknown predicate node {pred!r}")


def _push_not(pred: BoolExpr) -> BoolExpr:
    if isinstance(pred, Literal):
        return Literal(not pred.value)
    if isinstance(pred, Comparison):
        return Comparison(pred.left, pred.rel.negate(), pred.right)
    if isinstance(pred, And):
        return Or(*[_push_not(c) for c in pred.children])
    if isinstance(pred, Or):
        return And(*[_push_not(c) for c in pred.children])
    if isinstance(pred, Not):
        return pred.child
    raise PredicateError(f"unknown predicate node {pred!r}")


def _normalize_comparison(cmp: Comparison) -> BoolExpr:
    left, rel, right = cmp.left, cmp.rel, cmp.right

    # Orient sqrt/abs to the left-hand side.
    if isinstance(right, (Sqrt, Abs)) and not isinstance(left, (Sqrt, Abs)):
        left, rel, right = right, rel.flip(), left

    if isinstance(left, Sqrt):
        return _rewrite_sqrt(left, rel, right)
    if isinstance(left, Abs):
        return _rewrite_abs(left, rel, right)
    return Comparison(left, rel, right)


def _require_const(expr: Expr, context: str) -> float:
    if not isinstance(expr, Const):
        raise PredicateError(
            f"{context} can only be compared against constants in the "
            "continuous transform"
        )
    return expr.value


def _rewrite_sqrt(left: Sqrt, rel: Rel, right: Expr) -> BoolExpr:
    c = _require_const(right, "sqrt(...)")
    if c < 0.0:
        # sqrt(E) >= 0 > c always; so >,>=,!= hold and <,<=,= never do.
        return TRUE if rel in (Rel.GT, Rel.GE, Rel.NE) else FALSE
    squared = Const(c * c)
    return normalize(Comparison(left.operand, rel, squared))


def _rewrite_abs(left: Abs, rel: Rel, right: Expr) -> BoolExpr:
    c = _require_const(right, "abs(...)")
    inner = left.operand
    if c < 0.0:
        return TRUE if rel in (Rel.GT, Rel.GE, Rel.NE) else FALSE
    neg = Const(-c)
    pos = Const(c)
    if rel in (Rel.LT, Rel.LE):
        return normalize(
            And(Comparison(inner, rel, pos), Comparison(inner, rel.flip(), neg))
        )
    if rel in (Rel.GT, Rel.GE):
        return normalize(
            Or(Comparison(inner, rel, pos), Comparison(inner, rel.flip(), neg))
        )
    if rel is Rel.EQ:
        return normalize(
            Or(Comparison(inner, Rel.EQ, pos), Comparison(inner, Rel.EQ, neg))
        )
    # NE: negation of EQ.
    return normalize(
        And(Comparison(inner, Rel.NE, pos), Comparison(inner, Rel.NE, neg))
    )
