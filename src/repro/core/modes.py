"""Pulse's two operating modes (Section II-A).

**Predictive processing** runs the query on models of *unseen* data: a
tuple instantiates a predictive model via the query's MODEL clause, the
equation-system plan precomputes results off into the future, and
subsequent real tuples are merely *validated* against the model — the
solver re-executes only on a bound violation (or when no model is
active).  This is what lets Pulse process far fewer items than a
tuple-at-a-time engine.

**Historical processing** fits a model of a recorded stream once and
feeds the compact segment stream to many queries ("what-if" /
parameter-sweep analysis), amortizing the modeling cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from ..engine.tuples import StreamTuple
from ..fitting.model_builder import build_segments, predictive_segment

# The solver A/B switch lives here alongside the processing modes: both
# predictive and historical execution funnel through the same kernel, and
# ``set_solver_mode("scalar")`` / ``solver_mode("batch")`` select between
# the batched companion-matrix kernel and the per-row scalar path for
# parity testing and ablation runs.
from .batch_solver import (  # noqa: F401  (re-exported switch)
    SolverConfig,
    incremental_enabled,
    incremental_mode,
    set_incremental,
    set_solver_mode,
    solver_config,
    solver_mode,
)
from .expr import Expr
from .segment import Segment
from .transform import TransformedQuery, to_continuous_plan
from .validation.bounds import ErrorBound
from .validation.inversion import collect_dependencies
from .validation.splitters import SplitHeuristic
from .validation.validator import Outcome, QueryValidator


@dataclass
class PredictiveStats:
    tuples_in: int = 0
    models_built: int = 0
    tuples_dropped: int = 0
    violations: int = 0

    @property
    def drop_rate(self) -> float:
        return self.tuples_dropped / self.tuples_in if self.tuples_in else 0.0


class PredictiveProcessor:
    """Online predictive execution of one transformed query.

    Parameters
    ----------
    planned:
        The planned query (from :func:`repro.query.plan_query`).
    model_exprs:
        ``attribute -> MODEL expression`` used to instantiate predictive
        models from tuples (the query's MODEL clauses).
    horizon:
        Prediction horizon: each model is valid ``horizon`` seconds past
        its instantiating tuple.
    bound:
        Output accuracy bound (from ``ERROR WITHIN``).
    key_fields / constant_fields:
        Tuple fields forming the key / carried as unmodeled attributes.
    splitter:
        Bound split heuristic ("equi" or "gradient", Section IV-C).
    """

    def __init__(
        self,
        planned,
        model_exprs: Mapping[str, Expr],
        horizon: float,
        bound: ErrorBound,
        key_fields: Sequence[str] = (),
        constant_fields: Sequence[str] = (),
        splitter: str | SplitHeuristic = "equi",
        slack_validation: bool = True,
    ):
        self.planned = planned
        self.model_exprs = dict(model_exprs)
        self.horizon = horizon
        self.key_fields = tuple(key_fields)
        self.constant_fields = tuple(constant_fields)
        self.query: TransformedQuery = to_continuous_plan(planned)
        self.validator = QueryValidator(
            self.query,
            bound,
            splitter=splitter,
            dependencies=collect_dependencies(planned.root),
        )
        self.slack_validation = slack_validation
        self.stats = PredictiveStats()
        #: The single input stream this processor feeds (queries with one
        #: base stream; self-joins fan out internally).
        self._stream = next(iter(planned.stream_sources))

    @classmethod
    def from_query(
        cls,
        planned,
        horizon: float,
        bound: ErrorBound | None = None,
        key_fields: Sequence[str] = (),
        constant_fields: Sequence[str] = (),
        **kwargs,
    ) -> "PredictiveProcessor":
        """Build a processor from the query's own MODEL clauses.

        Figure 1's declarative specification (``FROM A MODEL A.x = A.x +
        A.v * t``) carries the model expressions inside the query text;
        this constructor extracts them from the planned scans.  The
        error bound likewise defaults to the query's ``ERROR WITHIN``.
        """
        from ..query.logical import LogicalScan

        model_exprs: dict[str, Expr] = {}
        for node in planned.root.walk():
            if not isinstance(node, LogicalScan):
                continue
            for clause in node.models:
                attr = clause.attr.split(".")[-1]
                model_exprs[attr] = clause.expr
        if not model_exprs:
            from .errors import PlanError

            raise PlanError(
                "the query declares no MODEL clauses; pass model_exprs "
                "to PredictiveProcessor directly"
            )
        if bound is None:
            if planned.error_spec is None:
                raise ValueError(
                    "no bound given and the query has no ERROR WITHIN"
                )
            bound = ErrorBound.from_spec(planned.error_spec)
        return cls(
            planned,
            model_exprs=model_exprs,
            horizon=horizon,
            bound=bound,
            key_fields=key_fields,
            constant_fields=constant_fields,
            **kwargs,
        )

    # ------------------------------------------------------------------
    def process_tuple(self, tup: StreamTuple) -> list[Segment]:
        """Validate one tuple; re-model and re-solve only when needed.

        Returns newly produced (predicted) output segments — empty when
        the tuple was dropped by validation.
        """
        self.stats.tuples_in += 1
        key = tup.key(self.key_fields)
        outcomes = [
            self.validator.validate(key, attr, tup.time, float(tup[attr]))
            for attr in self.model_exprs
            if attr in tup
        ]
        if outcomes and all(o.can_drop for o in outcomes):
            if not self.slack_validation and any(
                o is Outcome.WITHIN_SLACK for o in outcomes
            ):
                # Ablation hook: slack validation disabled means nulls
                # force re-solving on every tuple.
                return self._rebuild(tup)
            self.stats.tuples_dropped += 1
            return []
        if any(o is Outcome.VIOLATION for o in outcomes):
            self.stats.violations += 1
        return self._rebuild(tup)

    def _rebuild(self, tup: StreamTuple) -> list[Segment]:
        """Instantiate a fresh predictive model and run the solver."""
        segment = predictive_segment(
            tup,
            self.model_exprs,
            horizon=self.horizon,
            key_fields=self.key_fields,
            constants=self.constant_fields,
        )
        self.stats.models_built += 1
        outputs = self.validator.ingest(self._stream, segment)
        return outputs

    def evict_before(self, watermark: float) -> None:
        self.validator.evict_before(watermark)


class HistoricalProcessor:
    """Offline what-if execution: model once, query many times.

    Parameters
    ----------
    tuples:
        The recorded stream (replayed from disk in the paper).
    attrs:
        Modeled attributes to fit.
    tolerance:
        Segmentation tolerance (absolute residual per piece).
    """

    def __init__(
        self,
        tuples: Iterable[StreamTuple],
        attrs: Sequence[str],
        tolerance: float,
        key_fields: Sequence[str] = (),
        constant_fields: Sequence[str] = (),
    ):
        self.segments = build_segments(
            list(tuples),
            attrs=attrs,
            tolerance=tolerance,
            key_fields=key_fields,
            constants=constant_fields,
        )

    @property
    def segment_count(self) -> int:
        return len(self.segments)

    def run(self, planned, stream: str | None = None) -> list[Segment]:
        """Execute one query over the stored model."""
        query = to_continuous_plan(planned)
        stream = stream or next(iter(planned.stream_sources))
        outputs: list[Segment] = []
        for segment in self.segments:
            outputs.extend(query.push(stream, segment))
        return outputs

    def run_many(
        self, planned_queries: Sequence, stream: str | None = None
    ) -> list[list[Segment]]:
        """The what-if sweep: every query reuses the same fitted model."""
        return [self.run(planned, stream) for planned in planned_queries]
