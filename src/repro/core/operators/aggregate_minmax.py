"""Continuous min/max aggregates via envelope state (Section III-B).

The operator maintains, as internal state, a piecewise model ``s(t)`` that
is the lower (min) or upper (max) envelope of all live input models —
Figure 2's "piecewise composition of individual models".  Each arriving
segment ``x`` is compared against the state through the difference
equation ``x(t) - s(t) R 0`` (``R`` is ``<`` for min, ``>`` for max); the
solution time ranges are exactly where the input *updates* the aggregate,
and are spliced into the envelope and emitted as output segments
``{(t, s_i) | D t R 0}`` (Fig. 3, row 3).

Windowed results (the discrete aggregate's per-window value) are obtained
from the envelope with :meth:`windowed_value`: the extremum of ``s`` over
``[c - w, c]`` for a window closing at ``c`` — computed from piece
endpoints and stationary points, never from tuples.
"""

from __future__ import annotations

import math

from ..batch_solver import incremental_enabled
from ..delta import SolutionStore
from ..errors import UnsupportedAggregateError
from ..intervals import EPS, TimeSet
from ..piecewise import PiecewiseFunction
from ..polynomial import Polynomial
from ..relation import Rel
from ..roots import real_roots
from ..segment import Segment, resolve_model
from .base import ContinuousOperator

_FUNCS = ("min", "max")


class ContinuousExtremumAggregate(ContinuousOperator):
    """Min/max aggregate over a (multi-model) segment stream.

    Parameters
    ----------
    attr:
        The modeled attribute being aggregated.
    func:
        ``"min"`` or ``"max"``.
    output_attr:
        Name of the output model attribute (defaults to ``min_<attr>``).
    window, slide:
        Window specification used by :meth:`windowed_value` /
        :meth:`window_closes` and for state eviction.  ``window=None``
        keeps the full envelope (landmark aggregate).
    """

    arity = 1

    def __init__(
        self,
        attr: str,
        func: str = "min",
        output_attr: str | None = None,
        window: float | None = None,
        slide: float | None = None,
        name: str | None = None,
    ):
        if func not in _FUNCS:
            raise UnsupportedAggregateError(
                f"extremum aggregate supports {_FUNCS}, got {func!r} "
                "(count-like aggregates have no continuous form)"
            )
        self.attr = attr
        self.func = func
        self.output_attr = output_attr or f"{func}_{attr}"
        self.window = window
        self.slide = slide
        self.name = name or f"{func}({attr})"
        self._envelope = PiecewiseFunction.empty()
        self._high_water = -math.inf
        #: Count of equation systems instantiated (benchmark hook).
        self.systems_solved = 0
        # Incremental (delta) state: per-piece relation solutions keyed
        # by the difference polynomial's coefficients and the relation.
        # A re-confirmed model compared against an unchanged envelope
        # piece is a covered probe served without re-solving.
        self._solution_store = SolutionStore()

    @property
    def envelope(self) -> PiecewiseFunction:
        """The current aggregated state model ``s(t)``."""
        return self._envelope

    def reset(self) -> None:
        self._envelope = PiecewiseFunction.empty()
        self._high_water = -math.inf
        self._solution_store.clear()

    # ------------------------------------------------------------------
    # segment processing
    # ------------------------------------------------------------------
    def process(self, segment: Segment, port: int = 0) -> list[Segment]:
        poly = resolve_model(segment, self.attr)
        lo, hi = segment.t_start, segment.t_end
        self._high_water = max(self._high_water, hi)

        updated = self._update_ranges(poly, lo, hi)
        outputs: list[Segment] = []
        for iv in updated.intervals:
            self._envelope = self._envelope.splice(iv.lo, iv.hi, poly)
            outputs.append(
                Segment(
                    key=segment.key,
                    t_start=iv.lo,
                    t_end=iv.hi,
                    models={self.output_attr: poly},
                    constants=dict(segment.constants),
                    lineage=(segment.seg_id,),
                )
            )
        self._evict()
        return outputs

    def _update_ranges(self, poly: Polynomial, lo: float, hi: float) -> TimeSet:
        """Where does the new model improve on the current state?

        Uncovered (gap) ranges are trivially updates; covered ranges are
        decided by solving ``x(t) - s(t) R 0`` piece by piece.
        """
        from ..roots import solve_relation

        rel = Rel.LT if self.func == "min" else Rel.GT
        incremental = incremental_enabled()
        covered_new = TimeSet.empty()
        covered_any = TimeSet.empty()
        for piece in self._envelope.pieces:
            a = max(lo, piece.interval.lo)
            b = min(hi, piece.interval.hi)
            if a >= b:
                continue
            covered_any = covered_any | TimeSet.interval(a, b)
            # One row of the system: x(t) - s(t) R 0 against this state
            # piece, solved over the common valid range.
            diff = poly - piece.poly
            solution = None
            sig = None
            if incremental:
                sig = (diff.coeffs, rel)
                solution = self._solution_store.lookup(sig, a, b)
            if solution is None:
                self.systems_solved += 1
                solution = solve_relation(diff, rel, a, b)
                if sig is not None:
                    self._solution_store.store(sig, a, b, solution)
            covered_new = covered_new | solution
        if lo >= hi:
            return TimeSet.empty()
        gaps = covered_any.complement(TimeSet.interval(lo, hi).intervals[0])
        return covered_new | gaps

    def _evict(self) -> None:
        if self.window is None:
            return
        horizon = self._high_water - self.window - (self.slide or 0.0)
        kept = [
            p for p in self._envelope.pieces if p.interval.hi > horizon
        ]
        if len(kept) != len(self._envelope.pieces):
            self._envelope = PiecewiseFunction(kept)

    # ------------------------------------------------------------------
    # windowed evaluation
    # ------------------------------------------------------------------
    def windowed_value(self, close: float) -> float:
        """The aggregate for the window ``[close - w, close]``.

        Requires a window specification; for landmark aggregates use
        :meth:`value_at` on the envelope instead.
        """
        if self.window is None:
            raise ValueError("windowed_value requires a window specification")
        return self.extremum_over(close - self.window, close)

    def extremum_over(self, lo: float, hi: float) -> float:
        """Extremum of the envelope over ``[lo, hi]`` via critical points."""
        best = math.inf if self.func == "min" else -math.inf
        pick = min if self.func == "min" else max
        found = False
        for piece in self._envelope.pieces:
            a = max(lo, piece.interval.lo)
            b = min(hi, piece.interval.hi)
            if a > b:
                continue
            found = True
            candidates = [a, b]
            deriv = piece.poly.derivative()
            if not deriv.is_zero and not piece.poly.is_constant:
                candidates.extend(real_roots(deriv, a, b))
            best = pick(best, pick(piece.poly(t) for t in candidates))
        if not found:
            raise ValueError(
                f"envelope undefined anywhere in [{lo}, {hi}]"
            )
        return best

    def value_at(self, t: float) -> float:
        """Instantaneous aggregate value: the envelope at ``t``."""
        return self._envelope(t)

    def window_closes(self, lo: float, hi: float) -> list[float]:
        """Window-close instants in ``[lo, hi)`` implied by the slide.

        The paper infers the aggregate's output rate from the window's
        slide parameter (Section III-C); closes sit on the slide grid.
        """
        if not self.slide:
            raise ValueError("window_closes requires a slide parameter")
        first = math.ceil(lo / self.slide) * self.slide
        closes = []
        c = first
        while c < hi - EPS:
            closes.append(c)
            c += self.slide
        return closes
