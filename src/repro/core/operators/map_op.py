"""Continuous map/projection: arithmetic and renaming over models.

Projections such as ``S.ap - L.ap as diff`` (the MACD query) compile each
output expression to a polynomial over the input segment's models.  The
rename metadata produced here — which output attribute is an alias (or
arithmetic function) of which inputs — is exactly the *bound translation*
information query inversion consumes (Section IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..errors import NonPolynomialExpressionError
from ..expr import Attr, Expr
from ..polynomial import Polynomial
from ..segment import Segment
from .base import AttributeBinding, ContinuousOperator


@dataclass(frozen=True)
class Projection:
    """One output column: ``expr AS name``."""

    name: str
    expr: Expr

    @property
    def is_alias(self) -> bool:
        """A pure rename (``b AS x``), the simplest bound translation."""
        return isinstance(self.expr, Attr)


class ContinuousMap(ContinuousOperator):
    """Projection over segments.

    Modeled output attributes are computed polynomials; discrete input
    attributes referenced by a bare :class:`Attr` pass through as
    constants.  Key attributes and unlisted constants are preserved.
    """

    arity = 1

    def __init__(
        self,
        projections: Sequence[Projection],
        alias: str | None = None,
        keep_constants: bool = True,
        approximate_degree: int | None = 2,
        name: str = "map",
    ):
        self.projections = tuple(projections)
        self.alias = alias
        self.keep_constants = keep_constants
        self.approximate_degree = approximate_degree
        self.name = name
        #: Projections that required least-squares re-approximation because
        #: the expression left the polynomial class (e.g. sqrt of a model).
        self.approximations = 0

    def translations(self) -> Mapping[str, frozenset[str]]:
        """Output attribute -> input attributes it depends on.

        This is the ``translations(o)`` set used by the split heuristics'
        dependency function ``D(o)`` (Section IV-C).
        """
        return {p.name: p.expr.attributes() for p in self.projections}

    def process(self, segment: Segment, port: int = 0) -> list[Segment]:
        binding = AttributeBinding({self.alias: segment})
        resolver = binding.resolver()
        models = {}
        constants = dict(segment.constants) if self.keep_constants else {}
        for proj in self.projections:
            if isinstance(proj.expr, Attr) and binding.is_discrete(proj.expr.name):
                constants[proj.name] = binding.discrete_value(proj.expr.name)
                continue
            try:
                models[proj.name] = proj.expr.to_polynomial(resolver)
            except NonPolynomialExpressionError:
                if self.approximate_degree is None:
                    raise
                models[proj.name] = self._approximate(
                    proj.expr, binding, segment
                )
                self.approximations += 1
        return [
            Segment(
                key=segment.key,
                t_start=segment.t_start,
                t_end=segment.t_end,
                models=models,
                constants=constants,
                lineage=(segment.seg_id,),
            )
        ]

    def _approximate(
        self, expr: Expr, binding: AttributeBinding, segment: Segment
    ) -> Polynomial:
        """Least-squares polynomial fit of a non-polynomial expression.

        Exactly in the spirit of Pulse's models-as-approximations: a
        ``sqrt`` (the AIS distance projection) is re-modeled as a low
        degree polynomial over the segment's valid range by sampling the
        expression against the input models; the approximation error is
        part of what the validation layer bounds.
        """
        degree = self.approximate_degree
        samples = max(2 * degree + 3, 7)
        ts = np.linspace(segment.t_start, segment.t_end, samples)
        env_base = dict(segment.constants)
        values = []
        for t in ts:
            env = dict(env_base)
            for attr, poly in segment.models.items():
                env[attr] = poly(t)
            values.append(expr.evaluate(env))
        coeffs = np.polynomial.polynomial.polyfit(ts, values, degree)
        return Polynomial(coeffs.tolist())
