"""Continuous sum/average aggregates via window functions (Section III-B).

The sum aggregate's continuous form is integration.  For a sliding window
of width ``w`` closing at time ``t`` the result is

    wf_sum(t) = integral_{t-w}^{t} x(tau) dtau = A(t) - A(t - w)

where ``A`` is the *cumulative* antiderivative of the (piecewise) input
signal — the integration constants of consecutive pieces are chained so
``A`` is continuous, which is exactly the paper's decomposition into a
head integral (the piece containing ``t``), fully-covered segment
constants ``C``, and a tail integral (the piece containing ``t - w``,
with ``(t - w)^i`` expanded by the binomial theorem; here the expansion
is :meth:`Polynomial.shift`).

Because ``A(t)`` and ``A(t - w)`` are polynomials wherever ``t`` and
``t - w`` stay within single pieces, the window function itself is a
*piecewise polynomial in the window-close timestamp* — so the operator
emits ordinary segments and the operator set stays closed.  The emitted
segment for close-range ``[a, b)`` carries the model
``wf(t) = A_head(t) - A_tail(t - w)`` (divided by ``w`` for averages).
"""

from __future__ import annotations

import math

from ..errors import UnsupportedAggregateError
from ..intervals import EPS, Interval
from ..piecewise import Piece, PiecewiseFunction
from ..polynomial import Polynomial
from ..segment import Segment, resolve_model
from .base import ContinuousOperator


class ContinuousSumAggregate(ContinuousOperator):
    """Sum or average over a sliding window, emitted as window functions.

    The operator expects one signal per instance: segments must arrive in
    time order for a single logical entity (use
    :class:`~repro.core.operators.groupby.ContinuousGroupBy` to fan out per
    key).  Overlapping arrivals are trimmed by the successor-overrides
    update semantics; fully out-of-order segments are dropped and counted.

    Parameters
    ----------
    attr:
        The modeled attribute being aggregated.
    window:
        Window width ``w`` (required).
    slide:
        Window slide; used by :meth:`window_closes` to infer the output
        sampling grid (Section III-C) and for state-eviction slack.
    average:
        Emit ``wf_sum / w`` instead of the plain integral.
    retention:
        Extra history (seconds) kept beyond what emission needs, so
        :meth:`window_value` can answer queries about past closes.
        ``math.inf`` disables eviction entirely (historical mode).
    """

    arity = 1

    def __init__(
        self,
        attr: str,
        window: float,
        slide: float | None = None,
        average: bool = False,
        output_attr: str | None = None,
        retention: float = 0.0,
        name: str | None = None,
    ):
        if window <= 0:
            raise ValueError("window width must be positive")
        self.attr = attr
        self.window = float(window)
        self.slide = slide
        self.average = average
        self.retention = retention
        default = f"{'avg' if average else 'sum'}_{attr}"
        self.output_attr = output_attr or default
        self.name = name or f"{'avg' if average else 'sum'}({attr})"
        # Cumulative antiderivative pieces of the input signal; continuous
        # by construction (each piece's constant chains the previous
        # piece's closing value — the paper's cached segment integrals C).
        self._cum: list[Piece] = []
        self._signal_start = math.nan
        self._signal_end = math.nan
        self._emitted_to = math.nan
        #: Count of revisions: arrivals overriding previously seen signal
        #: (predictive re-modeling revises the future, Section II-B's
        #: successor-overrides-overlap update semantics).
        self.revisions = 0
        #: Count of gap-filled (zero-signal) spans between segments.
        self.gaps_filled = 0

    # ------------------------------------------------------------------
    # state inspection
    # ------------------------------------------------------------------
    @property
    def signal_range(self) -> tuple[float, float] | None:
        if math.isnan(self._signal_start):
            return None
        return (self._signal_start, self._signal_end)

    def cumulative(self, t: float) -> float:
        """``A(t)``: the integral of the signal from its start to ``t``."""
        piece = self._piece_containing(t)
        if piece is None:
            raise ValueError(f"t={t} outside the aggregated signal range")
        return piece.poly(t)

    def _piece_containing(self, t: float) -> Piece | None:
        for piece in self._cum:
            if piece.interval.contains(t):
                return piece
        if self._cum and abs(t - self._cum[-1].interval.hi) <= EPS:
            return self._cum[-1]
        return None

    def reset(self) -> None:
        self._cum.clear()
        self._signal_start = math.nan
        self._signal_end = math.nan
        self._emitted_to = math.nan

    # ------------------------------------------------------------------
    # segment processing
    # ------------------------------------------------------------------
    def apply_delta(self, segment: Segment, change=None, port: int = 0) -> list[Segment]:
        """Sum state is delta-maintained by construction.

        The cumulative antiderivative is built by appending (or, on a
        revision, truncating) exactly the changed span — no solver runs
        and no whole-state recomputation exists to avoid, so the delta
        path is :meth:`process` itself.
        """
        return self.process(segment, port)

    def process(self, segment: Segment, port: int = 0) -> list[Segment]:
        poly = resolve_model(segment, self.attr)
        lo, hi = segment.t_start, segment.t_end

        if math.isnan(self._signal_start):
            self._signal_start = lo
            self._signal_end = lo
            self._emitted_to = lo + self.window

        if lo < self._signal_end - EPS:
            # Successor-overrides-overlap (Section II-B): the newer model
            # replaces the signal from its own start onward — this is how
            # predictive re-modeling revises the precomputed future.
            self.revisions += 1
            self._truncate_to(lo)
        elif lo > self._signal_end + EPS and self._cum:
            # Gap: the signal is unknown; integrate it as zero so window
            # functions remain defined (counted for diagnostics).
            self.gaps_filled += 1
            self._append_piece(self._signal_end, lo, Polynomial.zero())

        self._append_piece(max(lo, self._signal_end if self._cum else lo), hi, poly)
        outputs = self._emit_window_functions(segment)
        self._evict()
        return outputs

    def _truncate_to(self, t: float) -> None:
        """Discard the signal (and emission progress) from ``t`` onward."""
        kept: list[Piece] = []
        for piece in self._cum:
            if piece.interval.hi <= t + EPS:
                kept.append(piece)
            elif piece.interval.lo < t - EPS:
                kept.append(Piece(Interval(piece.interval.lo, t), piece.poly))
        self._cum = kept
        if kept:
            self._signal_end = kept[-1].interval.hi
        else:
            # The revision starts before any retained history.
            self._signal_start = t
            self._signal_end = t
        self._emitted_to = min(self._emitted_to, max(t, self._signal_start + self.window))

    def _append_piece(self, lo: float, hi: float, poly: Polynomial) -> None:
        if hi - lo <= EPS:
            return
        anti = poly.antiderivative()
        if self._cum:
            prev = self._cum[-1]
            offset = prev.poly(prev.interval.hi) - anti(lo)
        else:
            offset = -anti(lo)
        self._cum.append(Piece(Interval(lo, hi), anti + offset))
        self._signal_end = hi

    def _emit_window_functions(self, cause: Segment) -> list[Segment]:
        """Emit wf segments for the close-times newly covered by the signal.

        A close ``c`` is computable once the signal covers ``[c - w, c]``;
        the newly covered closes form ``[emitted_to, signal_end)``.
        Within that range, wf is a single polynomial wherever ``c`` stays
        in one cumulative piece and ``c - w`` in another — breakpoints are
        the piece boundaries and the piece boundaries shifted by ``+w``.
        """
        start = self._emitted_to
        end = self._signal_end
        if end <= start + EPS:
            return []
        breakpoints = {start, end}
        for piece in self._cum:
            for b in (piece.interval.lo, piece.interval.lo + self.window):
                if start < b < end:
                    breakpoints.add(b)
        ordered = sorted(breakpoints)
        outputs: list[Segment] = []
        for a, b in zip(ordered[:-1], ordered[1:]):
            if b - a <= EPS:
                continue
            mid = 0.5 * (a + b)
            head = self._piece_containing(mid)
            tail = self._piece_containing(mid - self.window)
            if head is None or tail is None:
                continue
            wf = head.poly - tail.poly.shift(-self.window)
            if self.average:
                wf = wf / self.window
            outputs.append(
                Segment(
                    key=cause.key,
                    t_start=a,
                    t_end=b,
                    models={self.output_attr: wf},
                    constants=dict(cause.constants),
                    lineage=(cause.seg_id,),
                )
            )
        self._emitted_to = end
        return outputs

    def _evict(self) -> None:
        if math.isinf(self.retention):
            return
        horizon = (
            self._signal_end - self.window - (self.slide or 0.0)
            - self.retention - EPS
        )
        kept = [p for p in self._cum if p.interval.hi > horizon]
        if len(kept) != len(self._cum):
            self._cum = kept

    # ------------------------------------------------------------------
    # direct evaluation
    # ------------------------------------------------------------------
    def window_value(self, close: float) -> float:
        """Evaluate the window function directly: ``A(c) - A(c - w)``."""
        value = self.cumulative(close) - self.cumulative(close - self.window)
        if self.average:
            value /= self.window
        return value

    def window_closes(self, lo: float, hi: float) -> list[float]:
        """Close instants on the slide grid within ``[lo, hi)``."""
        if not self.slide:
            raise ValueError("window_closes requires a slide parameter")
        first = math.ceil(lo / self.slide) * self.slide
        closes = []
        c = first
        while c < hi - EPS:
            closes.append(c)
            c += self.slide
        return closes


def make_aggregate(
    func: str,
    attr: str,
    window: float | None = None,
    slide: float | None = None,
    output_attr: str | None = None,
) -> ContinuousOperator:
    """Factory dispatching on the aggregate function name.

    Frequency-based aggregates (``count`` and friends) raise
    :class:`UnsupportedAggregateError`, mirroring the paper's
    transformation limitations.
    """
    from .aggregate_minmax import ContinuousExtremumAggregate

    func = func.lower()
    if func in ("min", "max"):
        return ContinuousExtremumAggregate(
            attr, func=func, window=window, slide=slide, output_attr=output_attr
        )
    if func in ("sum", "avg"):
        if window is None:
            raise ValueError(f"{func} aggregate requires a window")
        return ContinuousSumAggregate(
            attr,
            window=window,
            slide=slide,
            average=(func == "avg"),
            output_attr=output_attr,
        )
    raise UnsupportedAggregateError(
        f"aggregate {func!r} is frequency-based or unknown; the continuous "
        "transform supports min, max, sum, avg"
    )
