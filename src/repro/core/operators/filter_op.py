"""Continuous filter: the simplest selective-operator transform.

Fig. 3, row 1: per input segment, instantiate the equation system
``D = [x_i - c_i]`` from the segment's own models, solve ``D t R 0`` over
the segment's valid range, and emit ``{(t, x_i) | D t R 0}`` — the input
models restricted to the solution time ranges (point segments for
equality comparisons).
"""

from __future__ import annotations

from ..equation_system import EquationSystem
from ..predicate import BoolExpr, Literal
from ..segment import Segment
from .base import AttributeBinding, ContinuousOperator, partial_evaluate


class ContinuousFilter(ContinuousOperator):
    """Stateless selective operator over single segments.

    Parameters
    ----------
    predicate:
        The filter predicate; may mix modeled-attribute comparisons
        (compiled into the equation system) and discrete-attribute
        comparisons (folded to literals per segment).
    alias:
        Optional stream alias so qualified references (``S.price``)
        resolve against this input.
    """

    arity = 1

    def __init__(self, predicate: BoolExpr, alias: str | None = None, name: str = "filter"):
        self.predicate = predicate
        self.alias = alias
        self.name = name
        #: Count of equation systems instantiated (benchmark hook).
        self.systems_solved = 0

    def process(self, segment: Segment, port: int = 0) -> list[Segment]:
        binding = AttributeBinding({self.alias: segment})
        residual = partial_evaluate(self.predicate, binding)
        if isinstance(residual, Literal):
            if residual.value:
                return [segment]
            return []
        system = EquationSystem.from_predicate(residual, binding.resolver())
        self.systems_solved += 1
        solution = system.solve(segment.t_start, segment.t_end)
        outputs: list[Segment] = []
        for iv in solution.intervals:
            outputs.append(segment.restrict(iv.lo, iv.hi))
        for p in solution.points:
            outputs.append(segment.at_instant(p))
        return outputs

    def slack_system(self, segment: Segment) -> EquationSystem | None:
        """The equation system for slack computation on a null result."""
        binding = AttributeBinding({self.alias: segment})
        residual = partial_evaluate(self.predicate, binding)
        if isinstance(residual, Literal):
            return None
        return EquationSystem.from_predicate(residual, binding.resolver())
