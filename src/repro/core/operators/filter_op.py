"""Continuous filter: the simplest selective-operator transform.

Fig. 3, row 1: per input segment, instantiate the equation system
``D = [x_i - c_i]`` from the segment's own models, solve ``D t R 0`` over
the segment's valid range, and emit ``{(t, x_i) | D t R 0}`` — the input
models restricted to the solution time ranges (point segments for
equality comparisons).
"""

from __future__ import annotations

from ..batch_solver import incremental_enabled
from ..delta import LruMemo, SolutionStore
from ..equation_system import EquationSystem
from ..predicate import BoolExpr, Literal
from ..segment import Segment
from .base import (
    AttributeBinding,
    ContinuousOperator,
    SystemMemo,
    partial_evaluate,
)


class ContinuousFilter(ContinuousOperator):
    """Stateless selective operator over single segments.

    Parameters
    ----------
    predicate:
        The filter predicate; may mix modeled-attribute comparisons
        (compiled into the equation system) and discrete-attribute
        comparisons (folded to literals per segment).
    alias:
        Optional stream alias so qualified references (``S.price``)
        resolve against this input.
    """

    arity = 1

    def __init__(self, predicate: BoolExpr, alias: str | None = None, name: str = "filter"):
        self.predicate = predicate
        self.alias = alias
        self.name = name
        #: Count of equation systems instantiated (benchmark hook).
        self.systems_solved = 0
        # Two-level compile memo shared by process / priming / slack:
        # folds key on the segment's discrete signature, systems on full
        # content (see SystemMemo).
        self._fold_memo = SystemMemo()
        self._system_memo = SystemMemo()
        # Identity shortcut over the value memos: a segment is immutable,
        # so its compile result never changes.  The sharded runtime
        # probes each segment twice (prime, then process); the second
        # probe becomes a single memo hit.
        self._segment_results: LruMemo = LruMemo(
            65536, "memo.filter_segment"
        )
        # Incremental (delta) state: solved TimeSets keyed by segment
        # content signature, consulted when the ``incremental`` solver
        # knob is on.  A re-emitted / covered probe is served here with
        # zero row solves; a refit's new content misses by construction.
        self._solution_store = SolutionStore()

    def reset(self) -> None:
        self._fold_memo.clear()
        self._system_memo.clear()
        self._segment_results.clear()
        self._solution_store.clear()

    def _segment_system(
        self, segment: Segment
    ) -> tuple[BoolExpr, EquationSystem | None]:
        """Fold + compile ``predicate`` for one segment, memoized.

        Returns ``(residual, system)``; ``system`` is ``None`` iff the
        residual folded to a literal.
        """
        cached = self._segment_results.get(segment.seg_id)
        if cached is not None:
            return cached
        binding = None
        fold_sig = SystemMemo.fold_signature(segment)
        residual = self._fold_memo.get(fold_sig)
        if residual is None:
            binding = AttributeBinding({self.alias: segment})
            residual = partial_evaluate(self.predicate, binding)
            self._fold_memo.put(fold_sig, residual)
        if isinstance(residual, Literal):
            system = None
        else:
            sys_sig = SystemMemo.signature(segment)
            system = self._system_memo.get(sys_sig)
            if system is None:
                if binding is None:
                    binding = AttributeBinding({self.alias: segment})
                system = EquationSystem.from_predicate(
                    residual, binding.resolver()
                )
                self._system_memo.put(sys_sig, system)
        self._segment_results.put(segment.seg_id, (residual, system))
        return residual, system

    def process(self, segment: Segment, port: int = 0) -> list[Segment]:
        residual, system = self._segment_system(segment)
        if system is None:
            if residual.value:
                return [segment]
            return []
        solution = None
        sig = None
        if incremental_enabled():
            sig = SystemMemo.signature(segment)
            solution = self._solution_store.lookup(
                sig, segment.t_start, segment.t_end
            )
        if solution is None:
            self.systems_solved += 1
            solution = system.solve(segment.t_start, segment.t_end)
            if sig is not None:
                # Successful solves only: a raising system never lands
                # here, so faulted content re-fails on every probe
                # exactly as the full path does.
                self._solution_store.store(
                    sig, segment.t_start, segment.t_end, solution
                )
        outputs: list[Segment] = []
        for iv in solution.intervals:
            outputs.append(segment.restrict(iv.lo, iv.hi))
        for p in solution.points:
            outputs.append(segment.at_instant(p))
        return outputs

    def prime_tasks(self, segment: Segment, port: int = 0):
        """Exact prediction: the filter is stateless, so the system built
        here is the one ``process`` will use (shared via the memo).
        Under the incremental knob, probes the solution store would
        serve are not predicted at all — only delta rows ship."""
        residual, system = self._segment_system(segment)
        if system is None:
            return []
        if incremental_enabled() and self._solution_store.covers(
            SystemMemo.signature(segment), segment.t_start, segment.t_end
        ):
            return []
        return system.row_tasks(segment.t_start, segment.t_end)

    def slack_system(self, segment: Segment) -> EquationSystem | None:
        """The equation system for slack computation on a null result."""
        return self._segment_system(segment)[1]
