"""Continuous join with order-based segment buffers.

Fig. 3, row 2: segments arriving on either input are aligned with respect
to ``t`` against the opposite buffer's temporally overlapping segments;
for each aligned pair the difference system ``D = [x_i - y_i]`` is
instantiated from the join predicate and solved over the overlap of the
two validity ranges (the paper's "equi-join semantics along the time
dimension").  Solutions become output segments carrying both inputs'
models qualified by their stream aliases.

A join *window* bounds state exactly as in the paper's state table
(``S_x = {([tl, tu), s_x) | tl > t_y}`` generalized by a window width):
segments wholly before the opposite side's high-water mark minus the
window are evicted.
"""

from __future__ import annotations

from ..batch_solver import incremental_enabled
from ..delta import LruMemo, SolutionStore
from ..equation_system import EquationSystem, solve_systems_batch
from ..predicate import BoolExpr, Literal
from ..segment import Segment, SegmentBuffer, apply_update_semantics
from .base import (
    AttributeBinding,
    ContinuousOperator,
    SystemMemo,
    merged_constants,
    merged_models,
    partial_evaluate,
)


class ContinuousJoin(ContinuousOperator):
    """Two-input selective operator over aligned segment pairs.

    Parameters
    ----------
    predicate:
        Join predicate; key comparisons (e.g. ``R.id <> S.id`` or the
        equi-key ``S.symbol = L.symbol``) are folded discretely per pair,
        modeled comparisons become equation-system rows.
    left_alias, right_alias:
        Aliases qualifying each side's attributes in the predicate and in
        output segments.
    window:
        State-retention bound (seconds).  ``None`` keeps unbounded state.
    index_cell_width:
        When set, state is held in interval-indexed buffers
        (:class:`~repro.core.segment_index.IndexedSegmentBuffer`) so the
        per-arrival partner lookup no longer scans all live segments —
        the paper's future-work segment indexing for highly segmented
        datasets.
    """

    arity = 2

    def __init__(
        self,
        predicate: BoolExpr,
        left_alias: str = "L",
        right_alias: str = "R",
        window: float | None = None,
        index_cell_width: float | None = None,
        name: str = "join",
    ):
        self.predicate = predicate
        self.left_alias = left_alias
        self.right_alias = right_alias
        self.window = window
        self.index_cell_width = index_cell_width
        self.name = name
        if index_cell_width is not None:
            from ..segment_index import IndexedSegmentBuffer

            self._buffers = (
                IndexedSegmentBuffer(index_cell_width),
                IndexedSegmentBuffer(index_cell_width),
            )
        else:
            self._buffers = (SegmentBuffer(), SegmentBuffer())
        self._high_water = [float("-inf"), float("-inf")]
        # Max t_start seen per side: inputs arrive with monotonically
        # increasing reference timestamps (Section II-B), so a side's
        # start watermark bounds where future arrivals can begin.
        self._start_water = [float("-inf"), float("-inf")]
        #: Count of equation systems instantiated (benchmark hook).
        self.systems_solved = 0
        #: Count of aligned pairs whose predicate was discretely false.
        self.pairs_rejected_discrete = 0
        # Two-level compile memo (see SystemMemo): the folded residual
        # keys on the pair's discrete signature alone — one entry serves
        # every cross-key pair the equi-key predicate rejects — while
        # compiled systems key on full content, deduplicating the
        # prime-then-process double build of the sharded runtime.
        self._fold_memo = SystemMemo()
        self._system_memo = SystemMemo()
        # Identity shortcut over the value memos: segments are immutable
        # and seg_ids unique, so a (left, right) pair resolves to the
        # same result forever.  The sharded runtime probes every pair
        # twice (prime, then process); this makes the second probe a
        # single memo hit instead of a value-signature hash.
        self._pair_results: LruMemo = LruMemo(65536, "memo.join_pair")
        # Incremental (delta) state: solved pair TimeSets keyed by the
        # pair's content signature.  A re-emitted model probing an
        # unchanged partner over a covered overlap is served here with
        # zero row solves; refit content misses by construction.
        self._solution_store = SolutionStore()

    def reset(self) -> None:
        for buf in self._buffers:
            buf.clear()
        self._high_water = [float("-inf"), float("-inf")]
        self._start_water = [float("-inf"), float("-inf")]
        self._fold_memo.clear()
        self._system_memo.clear()
        self._pair_results.clear()
        self._solution_store.clear()

    def process(self, segment: Segment, port: int = 0) -> list[Segment]:
        if port not in (0, 1):
            raise ValueError(f"join has ports 0 and 1, got {port}")
        own, other = port, 1 - port
        self._buffers[own].insert(segment)
        self._high_water[own] = max(self._high_water[own], segment.t_end)
        self._start_water[own] = max(self._start_water[own], segment.t_start)
        self._evict()

        # Batch across every candidate pair this probe produced: the
        # pairs' difference rows share one kernel sweep and one cache
        # pass instead of a solver round-trip per partner.
        pairs: list[tuple[Segment, Segment]] = []
        for partner in list(
            self._buffers[other].overlapping(segment.t_start, segment.t_end)
        ):
            pairs.append(
                (segment, partner) if port == 0 else (partner, segment)
            )
        return self._join_pairs(pairs)

    def _pair_system(
        self, left: Segment, right: Segment
    ) -> tuple[BoolExpr, EquationSystem | None]:
        """Fold + compile ``predicate`` for a pair, memoized by content.

        Returns ``(residual, system)`` where ``system`` is ``None`` iff
        the residual folded to a literal.  See :class:`SystemMemo` for
        why the two keying granularities are exact.
        """
        ids = (left.seg_id, right.seg_id)
        cached = self._pair_results.get(ids)
        if cached is not None:
            return cached
        binding = None
        fold_sig = SystemMemo.fold_signature(left, right)
        residual = self._fold_memo.get(fold_sig)
        if residual is None:
            binding = AttributeBinding(
                {self.left_alias: left, self.right_alias: right}
            )
            residual = partial_evaluate(self.predicate, binding)
            self._fold_memo.put(fold_sig, residual)
        if isinstance(residual, Literal):
            self._pair_results.put(ids, (residual, None))
            return residual, None
        sys_sig = SystemMemo.signature(left, right)
        system = self._system_memo.get(sys_sig)
        if system is None:
            if binding is None:
                binding = AttributeBinding(
                    {self.left_alias: left, self.right_alias: right}
                )
            system = EquationSystem.from_predicate(
                residual, binding.resolver()
            )
            self._system_memo.put(sys_sig, system)
        self._pair_results.put(ids, (residual, system))
        return residual, system

    def _join_pairs(
        self, pairs: list[tuple[Segment, Segment]]
    ) -> list[Segment]:
        """Join many aligned pairs, solving their systems in one batch.

        Under the incremental knob, each pair first consults the
        solution store by content signature: a covered probe emits from
        the stored ``TimeSet`` (the ``"cached"`` plan entry) without
        entering the solve batch at all, and every freshly solved pair
        is recorded for the next probe of the same content.
        """
        jobs: list[tuple[EquationSystem, float, float]] = []
        outputs: list[Segment] = []
        emit_plan: list[tuple[str, object]] = []
        # (sig, lo, hi, job index) of fresh solves to record afterwards.
        store_jobs: list[tuple[object, float, float, int]] = []
        incremental = incremental_enabled()
        for left, right in pairs:
            overlap = left.overlap_range(right)
            if overlap is None:
                continue
            lo, hi = overlap
            residual, system = self._pair_system(left, right)
            if system is None:
                if not residual.value:
                    self.pairs_rejected_discrete += 1
                    continue
                emit_plan.append(("whole", (left, right, lo, hi)))
                continue
            if incremental:
                sig = SystemMemo.signature(left, right)
                solution = self._solution_store.lookup(sig, lo, hi)
                if solution is not None:
                    emit_plan.append(("cached", (left, right, solution)))
                    continue
                if sig is not None:
                    store_jobs.append((sig, lo, hi, len(jobs)))
            self.systems_solved += 1
            jobs.append((system, lo, hi))
            emit_plan.append(("solved", (left, right, len(jobs) - 1)))
        solutions = solve_systems_batch(jobs) if jobs else []
        # A raising batch never reaches here, so only successful solves
        # are recorded (fault/breaker behaviour stays mode-independent).
        for sig, lo, hi, job in store_jobs:
            self._solution_store.store(sig, lo, hi, solutions[job])
        for kind, payload in emit_plan:
            if kind == "whole":
                left, right, lo, hi = payload  # type: ignore[misc]
                outputs.append(self._emit(left, right, lo, hi))
                continue
            if kind == "cached":
                left, right, solution = payload  # type: ignore[misc]
            else:
                left, right, job = payload  # type: ignore[misc]
                solution = solutions[job]
            for iv in solution.intervals:
                outputs.append(self._emit(left, right, iv.lo, iv.hi))
            for p in solution.points:
                outputs.append(self._emit_point(left, right, p))
        return outputs

    def prime_tasks(self, segment: Segment, port: int = 0) -> list:
        """Peek the partner pairs this arrival would align with.

        Read-only: the segment is *not* inserted, the eviction horizon
        is untouched.  The prediction can under-count (``process``
        inserts before probing, so a self-join pairs the arrival with
        itself; partners inserted earlier in the same drain round are
        invisible here — :meth:`prime_round` covers those) — missed
        pairs simply solve inline, which is the safe direction.
        """
        if port not in (0, 1):
            return []
        return self._pair_queries(
            segment,
            port,
            list(
                self._buffers[1 - port].overlapping(
                    segment.t_start, segment.t_end
                )
            ),
        )

    def prime_round(self, arrivals) -> list:
        """Predict the whole round's pairings, including round-internal ones.

        ``process`` inserts each arrival before probing, so an arrival
        pairs with buffered partners *and* with every earlier arrival of
        the round on the opposite port (including itself, for a
        self-join where one segment feeds both ports).  A virtual
        per-port buffer — keys are copied out of the real buffer on
        first touch, then maintained with the same
        :func:`apply_update_semantics` the real insert uses — replays
        that sequence without mutating real state.  Replaying update
        semantics matters: a successor arrival trims its same-key
        predecessors, so probes later in the round see the *trimmed*
        partner segments, and predicting against the raw ones would
        fabricate root queries no solve ever issues.  Eviction is still
        ignored — evicted partners make this an over-prediction, which
        only warms the cache.
        """
        # port -> {key: segment list}, shadowing the real buffer for
        # every key an arrival has touched this round.
        virtual: tuple[dict, dict] = ({}, {})
        out: list[tuple[object, object]] = []
        for port, segment in arrivals:
            if port not in (0, 1):
                continue
            other = 1 - port
            vown = virtual[port]
            current = vown.get(segment.key)
            if current is None:
                current = list(self._buffers[port].segments(segment.key))
            vown[segment.key] = apply_update_semantics(current, segment)
            vother = virtual[other]
            partners = [
                v
                for v in self._buffers[other].overlapping(
                    segment.t_start, segment.t_end
                )
                if v.key not in vother
            ]
            for shadowed in vother.values():
                partners.extend(
                    v
                    for v in shadowed
                    if v.t_start < segment.t_end and segment.t_start < v.t_end
                )
            for query in self._pair_queries(segment, port, partners):
                out.append((segment.key, query))
        return out

    def _pair_queries(
        self, segment: Segment, port: int, partners: list[Segment]
    ) -> list:
        """Solve tasks for aligning ``segment`` with ``partners``.

        Under the incremental knob, pairs the solution store already
        covers are not predicted — only genuine delta pairs ship to the
        prime round.
        """
        queries: list = []
        incremental = incremental_enabled()
        for partner in partners:
            left, right = (
                (segment, partner) if port == 0 else (partner, segment)
            )
            overlap = left.overlap_range(right)
            if overlap is None:
                continue
            lo, hi = overlap
            residual, system = self._pair_system(left, right)
            if system is None:
                continue
            if incremental and self._solution_store.covers(
                SystemMemo.signature(left, right), lo, hi
            ):
                continue
            queries.extend(system.row_tasks(lo, hi))
        return queries

    def _evict(self) -> None:
        """Drop state no future arrival can pair with.

        Future arrivals on either side start at or after that side's
        start watermark (monotone reference timestamps), so a stored
        segment ending before ``min(start watermarks) - window`` can
        never overlap one and is safe to evict.
        """
        if self.window is None:
            return
        horizon = min(self._start_water) - self.window
        if horizon > float("-inf"):
            for buf in self._buffers:
                buf.evict_before(horizon)

    def _join_pair(self, left: Segment, right: Segment) -> list[Segment]:
        overlap = left.overlap_range(right)
        if overlap is None:
            return []
        lo, hi = overlap
        residual, system = self._pair_system(left, right)
        if system is None:
            if not residual.value:
                self.pairs_rejected_discrete += 1
                return []
            return [self._emit(left, right, lo, hi)]
        solution = None
        sig = None
        if incremental_enabled():
            sig = SystemMemo.signature(left, right)
            solution = self._solution_store.lookup(sig, lo, hi)
        if solution is None:
            self.systems_solved += 1
            solution = system.solve(lo, hi)
            if sig is not None:
                # Successful solves only — a raising system never lands
                # here, so faulted pairs re-fail identically in both modes.
                self._solution_store.store(sig, lo, hi, solution)
        outputs: list[Segment] = []
        for iv in solution.intervals:
            outputs.append(self._emit(left, right, iv.lo, iv.hi))
        for p in solution.points:
            outputs.append(self._emit_point(left, right, p))
        return outputs

    # ------------------------------------------------------------------
    # output construction
    # ------------------------------------------------------------------
    def _merged(self, left: Segment, right: Segment):
        pairs = [(self.left_alias, left), (self.right_alias, right)]
        return merged_models(pairs), merged_constants(pairs)

    def _emit(self, left: Segment, right: Segment, lo: float, hi: float) -> Segment:
        models, constants = self._merged(left, right)
        return Segment(
            key=left.key + right.key,
            t_start=lo,
            t_end=hi,
            models=models,
            constants=constants,
            lineage=(left.seg_id, right.seg_id),
        )

    def _emit_point(self, left: Segment, right: Segment, p: float) -> Segment:
        from ..intervals import EPS

        models, constants = self._merged(left, right)
        return Segment(
            key=left.key + right.key,
            t_start=p,
            t_end=p + EPS,
            models=models,
            constants=constants,
            lineage=(left.seg_id, right.seg_id),
        )

    def slack_system(
        self, segment: Segment, port: int = 0
    ) -> EquationSystem | None:
        """System over the most recent aligned pair, for slack validation."""
        other = 1 - port
        partners = list(
            self._buffers[other].overlapping(segment.t_start, segment.t_end)
        )
        if not partners:
            return None
        partner = partners[-1]
        left_seg, right_seg = (
            (segment, partner) if port == 0 else (partner, segment)
        )
        binding = AttributeBinding(
            {self.left_alias: left_seg, self.right_alias: right_seg}
        )
        residual = partial_evaluate(self.predicate, binding)
        if isinstance(residual, Literal):
            return None
        return EquationSystem.from_predicate(residual, binding.resolver())

    @property
    def state_size(self) -> int:
        return len(self._buffers[0]) + len(self._buffers[1])
