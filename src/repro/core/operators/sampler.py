"""Output sampling: segments back to tuples (Section III-C).

Once a processed segment reaches an output stream, tuples are produced by
sampling the segment's models.  Selective operators need a user-defined
sampling rate; aggregates infer their output rate from the window's slide
parameter, so callers pass the slide as the rate's period there.
"""

from __future__ import annotations

import math
from typing import Iterator, Mapping

from ..intervals import EPS
from ..segment import Segment
from .base import ContinuousOperator

OutputTuple = dict


class OutputSampler(ContinuousOperator):
    """Materialize output tuples from segments at a fixed period.

    Parameters
    ----------
    period:
        Time between consecutive samples (``1 / rate``).  Samples sit on
        the global grid ``t = k * period`` so runs are reproducible and
        adjacent segments never double-sample an instant.
    include_time:
        Name of the tuple field carrying the sample timestamp.
    """

    arity = 1

    def __init__(
        self,
        period: float,
        include_time: str = "time",
        name: str = "sampler",
    ):
        if period <= 0:
            raise ValueError("sampling period must be positive")
        self.period = float(period)
        self.include_time = include_time
        self.name = name
        self.tuples_emitted = 0

    def sample_times(self, segment: Segment) -> Iterator[float]:
        """Grid instants within the segment's valid range.

        Point segments (equality results) always yield their instant.
        """
        if segment.is_point:
            yield segment.t_start
            return
        first = math.ceil((segment.t_start - EPS) / self.period) * self.period
        t = first
        while t < segment.t_end - EPS:
            yield t
            t += self.period

    def tuples(self, segment: Segment) -> list[OutputTuple]:
        out = []
        for t in self.sample_times(segment):
            row: OutputTuple = {self.include_time: t}
            for attr, poly in segment.models.items():
                row[attr] = poly(t)
            row.update(segment.constants)
            if segment.key:
                row["__key"] = segment.key
            out.append(row)
        self.tuples_emitted += len(out)
        return out

    def process(self, segment: Segment, port: int = 0) -> list[Segment]:
        # Samplers sit at plan outputs; they pass segments through so the
        # plan can expose both representations, and accumulate tuples via
        # `tuples` when the executor materializes results.
        return [segment]
