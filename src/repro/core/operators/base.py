"""Base machinery shared by the continuous (segment) operators.

Every continuous operator is *closed*: it consumes segments and produces
segments (Section III-C), so operators expose a uniform
``process(segment, port) -> list[Segment]`` interface that the plan
executor routes between.

Two helpers live here because every selective operator needs them:

* :func:`make_resolver` maps predicate attribute names (possibly
  alias-qualified) onto the polynomial models of one or more aligned
  segments, turning numeric unmodeled constants into constant polynomials;
* :func:`partial_evaluate` first evaluates the predicate atoms that touch
  only *discrete* attributes (keys, non-numeric constants) against the
  segments' constant values — the paper processes keys and unmodeled
  attributes "using standard techniques alongside the modeled attributes"
  (Section II-B), which here means folding them to literals before the
  equation system is built.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from ..delta import LruMemo
from ..errors import PredicateError
from ..expr import ModelResolver
from ..polynomial import Polynomial
from ..predicate import (
    And,
    BoolExpr,
    Comparison,
    Literal,
    Not,
    Or,
    normalize,
)
from ..segment import Segment


class ContinuousOperator:
    """Base class for segment-in / segment-out operators."""

    #: Human-readable operator name (used in plans, lineage and metrics).
    name: str = "operator"

    #: Number of input ports (1 for filter/aggregate/map, 2 for join).
    arity: int = 1

    def process(self, segment: Segment, port: int = 0) -> list[Segment]:
        """Consume one input segment; return the output segments."""
        raise NotImplementedError

    def flush(self) -> list[Segment]:
        """Emit any outputs still buffered at end of stream."""
        return []

    def prime_tasks(self, segment: Segment, port: int = 0) -> list:
        """Predict the solve tasks ``process(segment, port)`` would issue.

        Each entry is a full cache-funnel task ``(poly, rel, lo, hi)``
        (see :func:`~repro.core.batch_solver.solve_tasks`).  The sharded
        runtime calls this *read-only* pass to batch a whole drain
        round's solve work — root rows through shard workers, then a
        single parent-side solve sweep that fills the solve cache —
        before processing; implementations must not mutate operator
        state.

        The prediction is best-effort and correctness-neutral: a missed
        task simply computes inline during ``process`` (e.g. a join
        partner inserted earlier in the same round), and an extra task
        only warms the caches.  The default predicts nothing — safe
        for every operator.
        """
        return []

    def apply_delta(
        self, segment: Segment, change=None, port: int = 0
    ) -> list[Segment]:
        """Process one arrival along the incremental (delta) path.

        ``change`` is the arrival's :class:`~repro.core.delta.
        SegmentChange` (may be ``None`` when the caller did not
        classify).  Selective operators do not need per-change
        invalidation: their incremental state (the per-operator
        :class:`~repro.core.delta.SolutionStore`) is keyed by *content
        signature*, so a refit's stale entries are unreachable by
        construction and ``process`` itself consults the store when
        the ``incremental`` solver knob is on.  The default therefore
        defers to :meth:`process`; stateful wrappers (the group-by)
        override this to route the change to per-group state.
        """
        return self.process(segment, port)

    def prime_round(
        self, arrivals: Sequence[tuple[int, Segment]]
    ) -> list[tuple[object, object]]:
        """Predict solve tasks for a whole drain round of arrivals.

        ``arrivals`` holds ``(port, segment)`` in processing order.
        Returns ``(key, task)`` pairs where ``key`` is the stream key
        of the arrival that will trigger the solve — the sharded
        runtime partitions the work by that key.  The default asks
        :meth:`prime_tasks` per arrival; stateful operators (the join)
        override this to also predict interactions *between* the
        round's own arrivals, which per-item prediction cannot see.
        Must not mutate operator state.
        """
        out: list[tuple[object, object]] = []
        for port, segment in arrivals:
            for task in self.prime_tasks(segment, port):
                out.append((segment.key, task))
        return out

    def reset(self) -> None:
        """Discard all operator state."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class SystemMemo:
    """Capped value-keyed memo used to deduplicate predicate compiles.

    Selective operators compile the same predicate against the same
    segment content more than once — the sharded runtime's read-only
    priming pass predicts the systems ``process`` then rebuilds, and a
    join probes each stored partner against many arrivals.  Two
    signature granularities cover the two compile stages:

    * :meth:`fold_signature` — discrete constant values plus model
      *names*.  The partial-evaluation fold reads only discrete values
      and name-resolution structure, so this cheap key is exact for the
      folded residual; crucially it is shared by every pair an equi-key
      predicate rejects discretely, which is where most probes of a
      multi-key stream end.
    * :meth:`signature` — constants plus model ``(name, polynomial)``
      items.  The compiled equation system additionally depends on the
      model coefficients; polynomials hash by coefficient value, so
      segment copies produced by update-semantics trimming (which keep
      their originals' models) hit the same entry, and there is no
      object-identity reuse hazard.

    Entries are bounded by LRU eviction (one entry at a time, metered
    under ``memo.system.*`` — not a wholesale flush) so streams with
    unbounded constant cardinality stay bounded without periodic
    recompile stampedes.

    Per-segment signature components are cached by ``seg_id`` (segments
    are immutable and ids are never reused in-process): a stored join
    partner is probed against many arrivals, and rebuilding its sorted
    item tuples on every probe dominates memo-hit cost.
    """

    __slots__ = ("_map", "maxsize")

    def __init__(self, maxsize: int = 4096):
        self._map = LruMemo(maxsize, "memo.system")
        self.maxsize = maxsize

    @staticmethod
    def signature(*segments: Segment):
        """Full content key (constants + model polynomials), or ``None``
        when some constant value is unhashable."""
        try:
            sig = tuple(_content_sig(s) for s in segments)
            hash(sig)
        except TypeError:
            return None
        return sig

    @staticmethod
    def fold_signature(*segments: Segment):
        """Discrete-only key (constants + model names), or ``None`` when
        some constant value is unhashable."""
        try:
            sig = tuple(_fold_sig(s) for s in segments)
            hash(sig)
        except TypeError:
            return None
        return sig

    def get(self, sig):
        if sig is None:
            return None
        return self._map.get(sig)

    def put(self, sig, value) -> None:
        if sig is None:
            return
        self._map.put(sig, value)

    def __len__(self) -> int:
        return len(self._map)

    def clear(self) -> None:
        self._map.clear()


_SIG_CACHE_MAX = 8192
_content_sigs = LruMemo(_SIG_CACHE_MAX, "memo.content_sig")
_fold_sigs = LruMemo(_SIG_CACHE_MAX, "memo.fold_sig")


def _content_sig(segment: Segment) -> tuple:
    sig = _content_sigs.get(segment.seg_id)
    if sig is None:
        sig = (
            tuple(sorted(segment.constants.items())),
            tuple(sorted(segment.models.items())),
        )
        _content_sigs.put(segment.seg_id, sig)
    return sig


def _fold_sig(segment: Segment) -> tuple:
    sig = _fold_sigs.get(segment.seg_id)
    if sig is None:
        sig = (
            tuple(sorted(segment.constants.items())),
            tuple(sorted(segment.models)),
        )
        _fold_sigs.put(segment.seg_id, sig)
    return sig


class AttributeBinding:
    """Resolves qualified/unqualified attribute names over aligned segments.

    ``segments`` maps an alias (or ``None``) to a segment.  Resolution
    order for a reference ``name``:

    1. exact match against a (possibly alias-qualified) attribute;
    2. unique suffix match — ``ap`` resolves ``s.ap`` when only one
       attribute has that final component;
    3. ambiguous suffix match where every candidate holds the *same*
       value (common after an equi-join: both ``s.symbol`` and
       ``l.symbol`` exist and are equal) resolves to that shared value.
    """

    def __init__(self, segments: Mapping[str | None, Segment]):
        self._models: dict[str, Polynomial] = {}
        self._discrete: dict[str, object] = {}
        self._suffixes: dict[str, list[str]] = {}
        for alias, segment in segments.items():
            for attr, poly in segment.models.items():
                self._models[self._register(alias, attr)] = poly
            for attr, value in segment.constants.items():
                self._discrete[self._register(alias, attr)] = value

    def _register(self, alias: str | None, attr: str) -> str:
        """Record the attribute under its full name and suffix; return it."""
        if alias and "." not in attr:
            full = f"{alias}.{attr}"
        else:
            full = attr
        suffix = full.split(".")[-1]
        self._suffixes.setdefault(suffix, []).append(full)
        return full

    def _resolve_name(self, name: str) -> str | None:
        """Map a reference to a registered full attribute name."""
        if name in self._models or name in self._discrete:
            return name
        candidates = self._suffixes.get(name, [])
        if len(candidates) == 1:
            return candidates[0]
        if len(candidates) > 1:
            values = [
                self._models.get(c, self._discrete.get(c)) for c in candidates
            ]
            first = values[0]
            if all(v == first for v in values[1:]):
                return candidates[0]
        return None

    @property
    def discrete_env(self) -> Mapping[str, object]:
        """Key/unmodeled attribute values, for discrete partial evaluation."""
        return self._discrete

    def has_model(self, name: str) -> bool:
        full = self._resolve_name(name)
        return full is not None and full in self._models

    def is_discrete(self, name: str) -> bool:
        full = self._resolve_name(name)
        return full is not None and full in self._discrete and full not in self._models

    def discrete_value(self, name: str) -> object:
        full = self._resolve_name(name)
        if full is None or full not in self._discrete:
            raise KeyError(f"no discrete attribute {name!r}")
        return self._discrete[full]

    def resolver(self) -> ModelResolver:
        """A resolver for :meth:`Expr.to_polynomial`.

        Numeric discrete attributes are promoted to constant polynomials so
        mixed predicates (model vs unmodeled number) still compile.
        """

        def resolve(name: str) -> Polynomial:
            full = self._resolve_name(name)
            if full is not None and full in self._models:
                return self._models[full]
            if full is not None:
                value = self._discrete.get(full)
                if isinstance(value, (int, float)):
                    return Polynomial.constant(float(value))
            raise PredicateError(
                f"attribute {name!r} has no polynomial model "
                f"(known models: {sorted(self._models)})"
            )

        return resolve


def partial_evaluate(pred: BoolExpr, binding: AttributeBinding) -> BoolExpr:
    """Fold atoms over purely discrete attributes into literals.

    An atom whose referenced attributes are all discrete (keys or
    unmodeled constants) has a truth value that is constant over the
    segment alignment — e.g. the join predicate ``R.id <> S.id``.  Those
    are evaluated immediately; the rest of the predicate is left for the
    equation system.
    """

    def fold(node: BoolExpr) -> BoolExpr:
        if isinstance(node, Literal):
            return node
        if isinstance(node, Comparison):
            attrs = node.attributes()
            if attrs and all(binding.is_discrete(a) for a in attrs):
                env = {a: binding.discrete_value(a) for a in attrs}
                return Literal(_discrete_compare(node, env))
            return node
        if isinstance(node, And):
            return And(*[fold(c) for c in node.children])
        if isinstance(node, Or):
            return Or(*[fold(c) for c in node.children])
        if isinstance(node, Not):
            return Not(fold(node.child))
        raise PredicateError(f"unknown predicate node {node!r}")

    return normalize(fold(pred))


def _discrete_compare(cmp: Comparison, env: Mapping[str, object]) -> bool:
    """Evaluate a comparison over discrete values, allowing non-numerics.

    Strings (and other orderable values) support the full relation set so
    key predicates like ``R.id <> S.id`` or ``symbol = 'IBM'`` work.
    """
    from ..relation import Rel

    left = _discrete_value(cmp.left, env)
    right = _discrete_value(cmp.right, env)
    rel = cmp.rel
    if rel is Rel.EQ:
        return left == right
    if rel is Rel.NE:
        return left != right
    if rel is Rel.LT:
        return left < right
    if rel is Rel.LE:
        return left <= right
    if rel is Rel.GE:
        return left >= right
    return left > right


def _discrete_value(expr, env: Mapping[str, object]):
    from ..expr import Attr, Const

    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Attr):
        return env[expr.name]
    # Arithmetic over discrete values falls back to numeric evaluation.
    return expr.evaluate({k: v for k, v in env.items() if isinstance(v, (int, float))})


def bind_segments(
    segments: Mapping[str | None, Segment]
) -> AttributeBinding:
    """Convenience constructor kept as a free function for call sites."""
    return AttributeBinding(segments)


def merged_constants(
    segments: Sequence[tuple[str | None, Segment]]
) -> dict[str, object]:
    """Union of the aligned segments' constants, qualified by alias."""
    out: dict[str, object] = {}
    for alias, segment in segments:
        for attr, value in segment.constants.items():
            name = f"{alias}.{attr}" if alias else attr
            out[name] = value
    return out


def merged_models(
    segments: Sequence[tuple[str | None, Segment]]
) -> dict[str, Polynomial]:
    """Union of the aligned segments' models, qualified by alias."""
    out: dict[str, Polynomial] = {}
    for alias, segment in segments:
        for attr, poly in segment.models.items():
            name = f"{alias}.{attr}" if alias else attr
            out[name] = poly
    return out
