"""Hash-based group-by for continuous aggregates (Fig. 3, last row).

``ContinuousGroupBy`` partitions the segment stream by a grouping key and
maintains one aggregate-operator instance per group ("per group state for
f, impl for f per group").  The grouping key defaults to the segments'
key attributes, which matches the paper's functional-dependency property:
modeled attributes are functional dependents of keys throughout the
dataflow (Property 2, Section IV-B).
"""

from __future__ import annotations

from typing import Callable, Iterator, Mapping

from ..segment import Key, Segment
from .base import ContinuousOperator


def segment_key(segment: Segment) -> Key:
    """Default grouping key: the segment's own key attributes.

    A module-level function (not a lambda) so plans holding a group-by
    stay picklable for durability snapshots.
    """
    return segment.key


class ContinuousGroupBy(ContinuousOperator):
    """Per-group fan-out of an aggregate operator.

    Parameters
    ----------
    factory:
        Zero-argument callable building a fresh aggregate operator for a
        new group (e.g. ``lambda: ContinuousSumAggregate("price", 60)``).
    group_key:
        Function extracting the grouping key from a segment; defaults to
        the segment's key attributes.
    having:
        Optional post-aggregation predicate applied to each output
        segment (a callable receiving the output segment and returning
        the filtered list; composed in plans from a ContinuousFilter).
    """

    arity = 1

    def __init__(
        self,
        factory: Callable[[], ContinuousOperator],
        group_key: Callable[[Segment], Key] | None = None,
        name: str = "group-by",
    ):
        self.factory = factory
        self.group_key = group_key or segment_key
        self.name = name
        self._groups: dict[Key, ContinuousOperator] = {}

    @property
    def group_count(self) -> int:
        return len(self._groups)

    def groups(self) -> Mapping[Key, ContinuousOperator]:
        return dict(self._groups)

    def group(self, key: Key) -> ContinuousOperator:
        """The aggregate instance for ``key``, creating it on first use."""
        if key not in self._groups:
            self._groups[key] = self.factory()
        return self._groups[key]

    def process(self, segment: Segment, port: int = 0) -> list[Segment]:
        key = self.group_key(segment)
        return self.group(key).process(segment, port)

    def apply_delta(self, segment: Segment, change=None, port: int = 0) -> list[Segment]:
        """Route a delta arrival to the owning group's aggregate.

        Change-sets are per key; the group instance carries the only
        state the change can touch, so delta application never visits
        (or invalidates) sibling groups.
        """
        key = self.group_key(segment)
        return self.group(key).apply_delta(segment, change, port)

    def flush(self) -> list[Segment]:
        out: list[Segment] = []
        for agg in self._groups.values():
            out.extend(agg.flush())
        return out

    def reset(self) -> None:
        self._groups.clear()

    def iter_group_items(self) -> Iterator[tuple[Key, ContinuousOperator]]:
        return iter(self._groups.items())
