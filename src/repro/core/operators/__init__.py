"""Continuous-time (segment) operator implementations — Fig. 3 of the paper."""

from .aggregate_minmax import ContinuousExtremumAggregate
from .aggregate_sum import ContinuousSumAggregate, make_aggregate
from .base import AttributeBinding, ContinuousOperator, partial_evaluate
from .filter_op import ContinuousFilter
from .groupby import ContinuousGroupBy
from .join_op import ContinuousJoin
from .map_op import ContinuousMap, Projection
from .sampler import OutputSampler

__all__ = [
    "AttributeBinding",
    "ContinuousExtremumAggregate",
    "ContinuousFilter",
    "ContinuousGroupBy",
    "ContinuousJoin",
    "ContinuousMap",
    "ContinuousOperator",
    "ContinuousSumAggregate",
    "OutputSampler",
    "Projection",
    "make_aggregate",
    "partial_evaluate",
]
