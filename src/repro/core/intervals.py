"""Time-interval algebra: the solution domain of every equation system.

Pulse's segments are valid over half-open time ranges ``[tl, tu)`` and the
solutions of a difference equation ``(x - y)(t) R 0`` are unions of such
ranges plus isolated points (the roots, for equality predicates).
:class:`TimeSet` represents exactly that: a normalized union of disjoint
half-open intervals and isolated points, with the set operations needed to
compose predicates (intersection for conjunction, union for disjunction,
complement for negation).

All endpoints are floats.  A small absolute tolerance ``EPS`` is used when
normalizing so that adjacent intervals produced by independent root-finding
runs merge instead of leaving sliver gaps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from .errors import InvalidIntervalError

#: Absolute tolerance used when merging endpoints and deduplicating points.
EPS = 1e-9


@dataclass(frozen=True, slots=True)
class Interval:
    """A half-open time range ``[lo, hi)`` with ``lo < hi``."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if not (self.lo < self.hi):
            raise InvalidIntervalError(
                f"interval requires lo < hi, got [{self.lo}, {self.hi})"
            )
        if math.isnan(self.lo) or math.isnan(self.hi):
            raise InvalidIntervalError("interval endpoints may not be NaN")

    @property
    def length(self) -> float:
        return self.hi - self.lo

    @property
    def midpoint(self) -> float:
        return 0.5 * (self.lo + self.hi)

    def contains(self, t: float, tol: float = 0.0) -> bool:
        """Whether ``t`` lies in ``[lo, hi)``, widened by ``tol``."""
        return self.lo - tol <= t < self.hi + tol

    def overlaps(self, other: "Interval") -> bool:
        return self.lo < other.hi and other.lo < self.hi

    def intersect(self, other: "Interval") -> "Interval | None":
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo < hi:
            return Interval(lo, hi)
        return None

    def shift(self, delta: float) -> "Interval":
        return Interval(self.lo + delta, self.hi + delta)

    def __str__(self) -> str:
        return f"[{self.lo:g}, {self.hi:g})"


def _merge_intervals(intervals: Iterable[Interval]) -> tuple[Interval, ...]:
    """Sort and coalesce intervals whose gap is below ``EPS``."""
    ordered = sorted(intervals, key=lambda iv: (iv.lo, iv.hi))
    merged: list[Interval] = []
    for iv in ordered:
        if merged and iv.lo <= merged[-1].hi + EPS:
            last = merged[-1]
            if iv.hi > last.hi:
                merged[-1] = Interval(last.lo, iv.hi)
        else:
            merged.append(iv)
    return tuple(merged)


def _dedupe_points(points: Iterable[float]) -> tuple[float, ...]:
    ordered = sorted(points)
    out: list[float] = []
    for p in ordered:
        if not out or p - out[-1] > EPS:
            out.append(p)
    return tuple(out)


class TimeSet:
    """A normalized union of disjoint half-open intervals and isolated points.

    Instances are immutable.  Points that fall inside (or within ``EPS`` of)
    an interval are absorbed into it during normalization, so the points
    tuple only holds genuinely isolated solutions — the output of equality
    predicates.
    """

    __slots__ = ("intervals", "points")

    def __init__(
        self,
        intervals: Iterable[Interval] = (),
        points: Iterable[float] = (),
    ):
        merged = _merge_intervals(intervals)
        isolated = tuple(
            p
            for p in _dedupe_points(points)
            if not any(iv.lo - EPS <= p <= iv.hi + EPS for iv in merged)
        )
        object.__setattr__(self, "intervals", merged)
        object.__setattr__(self, "points", isolated)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("TimeSet is immutable")

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "TimeSet":
        return _EMPTY

    @classmethod
    def interval(cls, lo: float, hi: float) -> "TimeSet":
        """The single interval ``[lo, hi)``; empty when ``lo >= hi``."""
        if lo >= hi:
            return _EMPTY
        return cls(intervals=[Interval(lo, hi)])

    @classmethod
    def point(cls, t: float) -> "TimeSet":
        return cls(points=[t])

    @classmethod
    def from_points(cls, points: Sequence[float]) -> "TimeSet":
        return cls(points=points)

    # ------------------------------------------------------------------
    # predicates
    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        return not self.intervals and not self.points

    @property
    def measure(self) -> float:
        """Total length of the interval parts (points have measure zero)."""
        return sum(iv.length for iv in self.intervals)

    @property
    def infimum(self) -> float:
        """Smallest element; raises ``ValueError`` on the empty set."""
        candidates = []
        if self.intervals:
            candidates.append(self.intervals[0].lo)
        if self.points:
            candidates.append(self.points[0])
        if not candidates:
            raise ValueError("empty TimeSet has no infimum")
        return min(candidates)

    @property
    def supremum(self) -> float:
        candidates = []
        if self.intervals:
            candidates.append(self.intervals[-1].hi)
        if self.points:
            candidates.append(self.points[-1])
        if not candidates:
            raise ValueError("empty TimeSet has no supremum")
        return max(candidates)

    def contains(self, t: float, tol: float = 0.0) -> bool:
        if any(iv.contains(t, tol) for iv in self.intervals):
            return True
        return any(abs(t - p) <= max(tol, EPS) for p in self.points)

    # ------------------------------------------------------------------
    # set algebra
    # ------------------------------------------------------------------
    def union(self, other: "TimeSet") -> "TimeSet":
        return TimeSet(
            intervals=list(self.intervals) + list(other.intervals),
            points=list(self.points) + list(other.points),
        )

    def intersect(self, other: "TimeSet") -> "TimeSet":
        intervals: list[Interval] = []
        for a in self.intervals:
            for b in other.intervals:
                hit = a.intersect(b)
                if hit is not None:
                    intervals.append(hit)
        points: list[float] = []
        for p in self.points:
            if other.contains(p, tol=EPS):
                points.append(p)
        for p in other.points:
            if self.contains(p, tol=EPS):
                points.append(p)
        return TimeSet(intervals=intervals, points=points)

    def complement(self, domain: Interval) -> "TimeSet":
        """The complement of this set within ``domain``.

        Isolated points of this set become interval boundaries (they are
        removed from the complement's interior only up to measure zero;
        since downstream consumers operate on interval measure, we treat
        points as not splitting the complement).
        """
        gaps: list[Interval] = []
        cursor = domain.lo
        for iv in self.intervals:
            clipped = iv.intersect(domain)
            if clipped is None:
                continue
            if clipped.lo > cursor + EPS:
                gaps.append(Interval(cursor, clipped.lo))
            cursor = max(cursor, clipped.hi)
        if cursor < domain.hi - EPS:
            gaps.append(Interval(cursor, domain.hi))
        return TimeSet(intervals=gaps)

    def clip(self, lo: float, hi: float) -> "TimeSet":
        """Restrict to the window ``[lo, hi)``."""
        if lo >= hi:
            return _EMPTY
        window = Interval(lo, hi)
        intervals = []
        for iv in self.intervals:
            hit = iv.intersect(window)
            if hit is not None:
                intervals.append(hit)
        points = [p for p in self.points if window.contains(p)]
        return TimeSet(intervals=intervals, points=points)

    def shift(self, delta: float) -> "TimeSet":
        return TimeSet(
            intervals=[iv.shift(delta) for iv in self.intervals],
            points=[p + delta for p in self.points],
        )

    # ------------------------------------------------------------------
    # iteration / comparison
    # ------------------------------------------------------------------
    def pieces(self) -> Iterator[tuple[float, float]]:
        """Yield ``(lo, hi)`` per interval then ``(p, p)`` per point."""
        for iv in self.intervals:
            yield (iv.lo, iv.hi)
        for p in self.points:
            yield (p, p)

    def approx_equal(self, other: "TimeSet", tol: float = 1e-7) -> bool:
        if len(self.intervals) != len(other.intervals):
            return False
        if len(self.points) != len(other.points):
            return False
        for a, b in zip(self.intervals, other.intervals):
            if abs(a.lo - b.lo) > tol or abs(a.hi - b.hi) > tol:
                return False
        return all(abs(p - q) <= tol for p, q in zip(self.points, other.points))

    def __or__(self, other: "TimeSet") -> "TimeSet":
        return self.union(other)

    def __and__(self, other: "TimeSet") -> "TimeSet":
        return self.intersect(other)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TimeSet):
            return NotImplemented
        return self.intervals == other.intervals and self.points == other.points

    def __hash__(self) -> int:
        return hash((self.intervals, self.points))

    def __bool__(self) -> bool:
        return not self.is_empty

    def __repr__(self) -> str:
        parts = [str(iv) for iv in self.intervals]
        parts += [f"{{{p:g}}}" for p in self.points]
        body = " ∪ ".join(parts) if parts else "∅"
        return f"TimeSet({body})"


_EMPTY = TimeSet()
