"""Comparison relations used in predicate difference forms.

The selective-operator transform of Section III-A rewrites a predicate
``x R y`` into ``(x - y)(t) R 0`` where ``R`` is one of the six standard
relational comparison operators.  :class:`Rel` is that ``R``.
"""

from __future__ import annotations

import enum


class Rel(enum.Enum):
    """One of the six relational comparison operators.

    The value of each member is its SQL surface syntax.
    """

    LT = "<"
    LE = "<="
    EQ = "="
    NE = "<>"
    GE = ">="
    GT = ">"

    def holds(self, value: float, tol: float = 0.0) -> bool:
        """Return whether ``value R 0`` holds.

        ``tol`` widens equality comparisons: ``EQ`` holds when
        ``|value| <= tol`` and ``NE`` when ``|value| > tol``.
        """
        if self is Rel.LT:
            return value < -tol
        if self is Rel.LE:
            return value <= tol
        if self is Rel.EQ:
            return abs(value) <= tol
        if self is Rel.NE:
            return abs(value) > tol
        if self is Rel.GE:
            return value >= -tol
        return value > tol  # GT

    def flip(self) -> "Rel":
        """The relation obtained by swapping the comparison's two sides.

        ``x R y`` is equivalent to ``y flip(R) x``.
        """
        return _FLIPPED[self]

    def negate(self) -> "Rel":
        """The relation holding exactly when this one does not."""
        return _NEGATED[self]

    @property
    def is_equality(self) -> bool:
        """Whether the relation is the equality comparison.

        Equality rows reduce solution sets to isolated points, which limits
        model flow downstream (Section III-C).
        """
        return self is Rel.EQ

    @property
    def includes_equality(self) -> bool:
        """Whether ``value == 0`` satisfies the relation."""
        return self in (Rel.LE, Rel.EQ, Rel.GE)

    @classmethod
    def from_symbol(cls, symbol: str) -> "Rel":
        """Parse a relation from its SQL symbol (``!=`` aliases ``<>``)."""
        if symbol == "!=":
            symbol = "<>"
        if symbol == "==":
            symbol = "="
        for member in cls:
            if member.value == symbol:
                return member
        raise ValueError(f"unknown relational operator {symbol!r}")

    def __str__(self) -> str:
        return self.value


_FLIPPED = {
    Rel.LT: Rel.GT,
    Rel.LE: Rel.GE,
    Rel.EQ: Rel.EQ,
    Rel.NE: Rel.NE,
    Rel.GE: Rel.LE,
    Rel.GT: Rel.LT,
}

_NEGATED = {
    Rel.LT: Rel.GE,
    Rel.LE: Rel.GT,
    Rel.EQ: Rel.NE,
    Rel.NE: Rel.EQ,
    Rel.GE: Rel.LT,
    Rel.GT: Rel.LE,
}
