"""Delta maintenance: change-sets and content-addressed solution reuse.

Today a segment update re-solves every equation system it touches; the
solve cache only helps on byte-identical ``(coeffs, rel, lo, hi)``
repeats.  This module supplies the three pieces of the incremental
(DBSP-style) re-solve path:

* :class:`SegmentChange` / :class:`DeltaTracker` — the per-arrival
  change-set.  Each arrival is classified against the key's previous
  segment (derived from ``seg_id`` plus the operators' content
  signatures, see ``core/operators/base.py``) as *added* (first segment
  for the key), a *refit* (model content changed) or a *re-emission*
  (content unchanged, validity range moved); an arrival whose range
  overlaps its predecessor also *retires* part of that predecessor
  under update semantics.  The scheduler threads this through the
  arrival path for ``delta.*`` counters and the ``delta_apply`` span.

* :class:`SolutionStore` — per-operator solved-``TimeSet`` state keyed
  by *content signature*.  Because the key is the full content of the
  segments a system was compiled from, a stale entry (pre-refit
  content) is simply unreachable: invalidation is by construction, not
  by scanning.  A probe whose content signature matches a stored entry
  and whose requested domain is covered by the stored domain is served
  without touching the equation-system layer at all — zero row solves.

* :class:`LruMemo` — a bounded LRU mapping with per-memo hit/miss/evict
  counters, replacing the operators' wholesale ``dict.clear()``
  evictions (which flushed 64Ki entries at once, causing periodic
  cold-start stampedes that would also poison incremental state).

Bit-exactness.  The incremental path must emit byte-identical outputs
to the full re-solve path.  An exact-domain store hit is trivially
exact (same deterministic solve, same arguments).  A *covered* hit is
served as ``stored.clip(lo, hi)``, which agrees with a direct solve on
``[lo, hi)`` except when a solution feature (interval endpoint, isolated
point) falls within the solver's ``EPS`` slop of a requested seam —
sliver spans are dropped, near-seam equality roots kept or dropped
depending on which side of the seam they landed.  The store therefore
refuses covered reuse whenever any stored feature lies within
:data:`SEAM_GUARD` of a requested boundary without being exactly on it,
falling back to a full solve.  ``SEAM_GUARD`` is three orders of
magnitude above ``EPS``, so the guard triggers only on genuinely
seam-adjacent geometry; the property suite
(``tests/property/test_incremental_parity.py``) and the in-run parity
asserts of ``benchmarks/bench_incremental_resolve.py`` enforce the
equivalence empirically.

Durability.  Solved ``TimeSet`` state is a derived cache: a
:class:`SolutionStore` pickles as an *empty* store (entries are
recomputed on demand after a restore, which only costs solves, never
correctness), while :class:`LruMemo` keeps its entries but drops its
metric handles (rebound lazily in the restored process).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from .intervals import TimeSet
from .segment import Segment

#: Covered-reuse refusal band around a requested seam.  Any stored
#: solution feature strictly inside ``(0, SEAM_GUARD]`` of a requested
#: boundary makes the clipped result potentially diverge from a direct
#: solve (EPS-sliver handling), so such probes fall back to a full
#: solve.  Well above ``intervals.EPS`` (1e-9) by design.
SEAM_GUARD = 1e-6


def _metric_counters(prefix: str, *names: str):
    """Registry counter handles for ``{prefix}.{name}``, bound lazily.

    Imported inside the function: ``repro.core`` must stay importable
    without the engine package being initialized first.
    """
    from ..engine.metrics import get_counter

    return tuple(get_counter(f"{prefix}.{name}") for name in names)


# ----------------------------------------------------------------------
# bounded LRU memo with metered eviction
# ----------------------------------------------------------------------
class LruMemo:
    """A bounded mapping with LRU eviction and hit/miss/evict counters.

    Drop-in replacement for the operators' unbounded-until-flushed memo
    dicts: ``get`` refreshes recency, ``put`` evicts the single
    least-recently-used entry once ``maxsize`` is reached (instead of
    flushing everything), and traffic is metered through the
    :mod:`repro.engine.metrics` registry under
    ``{metric_prefix}.hits`` / ``.misses`` / ``.evictions``.
    """

    __slots__ = ("_map", "maxsize", "_metric_prefix", "_handles")

    def __init__(self, maxsize: int, metric_prefix: str | None = None):
        if maxsize < 1:
            raise ValueError("LruMemo maxsize must be at least 1")
        self._map: OrderedDict = OrderedDict()
        self.maxsize = maxsize
        self._metric_prefix = metric_prefix
        self._handles = None

    def _counters(self):
        if self._handles is None and self._metric_prefix is not None:
            self._handles = _metric_counters(
                self._metric_prefix, "hits", "misses", "evictions"
            )
        return self._handles

    def get(self, key, default=None):
        entry = self._map.get(key, _MISSING)
        handles = self._counters()
        if entry is _MISSING:
            if handles is not None:
                handles[1].bump()
            return default
        self._map.move_to_end(key)
        if handles is not None:
            handles[0].bump()
        return entry

    def put(self, key, value) -> None:
        if key in self._map:
            self._map.move_to_end(key)
        self._map[key] = value
        if len(self._map) > self.maxsize:
            self._map.popitem(last=False)
            handles = self._counters()
            if handles is not None:
                handles[2].bump()

    def __contains__(self, key) -> bool:
        return key in self._map

    def __len__(self) -> int:
        return len(self._map)

    def clear(self) -> None:
        self._map.clear()

    # -- pickling: entries survive, metric handles (locks) do not ------
    def __getstate__(self):
        return {
            "entries": list(self._map.items()),
            "maxsize": self.maxsize,
            "metric_prefix": self._metric_prefix,
        }

    def __setstate__(self, state) -> None:
        object.__setattr__(self, "_map", OrderedDict(state["entries"]))
        object.__setattr__(self, "maxsize", state["maxsize"])
        object.__setattr__(
            self, "_metric_prefix", state["metric_prefix"]
        )
        object.__setattr__(self, "_handles", None)


_MISSING = object()


# ----------------------------------------------------------------------
# per-arrival change-set
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SegmentChange:
    """Classification of one arrival against its key's previous segment.

    ``kind`` is ``"added"`` (first segment for the key on this stream),
    ``"refit"`` (content signature changed) or ``"reemitted"`` (content
    unchanged — the model was re-confirmed over a moved validity
    range).  ``retired_seg_id`` names the predecessor partially retired
    by update semantics when the arrival's range overlaps it.
    """

    kind: str
    key: tuple
    seg_id: int
    t_start: float
    t_end: float
    content_changed: bool
    retired_seg_id: int | None = None


class DeltaTracker:
    """Derives :class:`SegmentChange` objects along the arrival path.

    One tracker per registered query; keyed by ``(stream, key)`` so a
    self-join feeding two ports off one stream still classifies each
    arrival once.  The tracker is *derived* state: it only drives
    ``delta.*`` counters and the ``delta_apply`` span, so it is rebuilt
    empty after a durability restore (the first post-restore arrival
    per key re-classifies as ``"added"``, which is accounting noise,
    not a correctness input).
    """

    def __init__(self):
        # (stream, key) -> (seg_id, content_sig, t_start, t_end)
        self._last: dict = {}
        self._handles = None

    def _counters(self):
        if self._handles is None:
            self._handles = _metric_counters(
                "delta.changes", "added", "refit", "reemitted", "retired"
            )
        return self._handles

    @staticmethod
    def _sig(segment: Segment):
        from .operators.base import SystemMemo

        return SystemMemo.signature(segment)

    def classify(self, stream: str, segment: Segment) -> SegmentChange:
        """Pure classification — no tracker state is touched."""
        prev = self._last.get((stream, segment.key))
        if prev is None:
            return SegmentChange(
                "added", segment.key, segment.seg_id,
                segment.t_start, segment.t_end, True,
            )
        prev_id, prev_sig, _prev_start, prev_end = prev
        sig = self._sig(segment)
        changed = sig is None or sig != prev_sig
        retired = prev_id if segment.t_start < prev_end else None
        return SegmentChange(
            "refit" if changed else "reemitted",
            segment.key, segment.seg_id,
            segment.t_start, segment.t_end, changed,
            retired_seg_id=retired,
        )

    def observe(self, stream: str, segment: Segment) -> SegmentChange:
        """Classify one arrival, record it, bump ``delta.changes.*``."""
        change = self.classify(stream, segment)
        self._last[(stream, segment.key)] = (
            segment.seg_id,
            self._sig(segment),
            segment.t_start,
            segment.t_end,
        )
        added, refit, reemitted, retired = self._counters()
        if change.kind == "added":
            added.bump()
        elif change.kind == "refit":
            refit.bump()
        else:
            reemitted.bump()
        if change.retired_seg_id is not None:
            retired.bump()
        return change

    def reset(self) -> None:
        self._last.clear()

    def __getstate__(self):
        return {"last": dict(self._last)}

    def __setstate__(self, state) -> None:
        self._last = dict(state["last"])
        self._handles = None


# ----------------------------------------------------------------------
# content-addressed solution store
# ----------------------------------------------------------------------
class SolutionStore:
    """Solved ``TimeSet`` state keyed by system content signature.

    One entry per signature: the solution over the widest domain seen,
    ``(lo, hi, TimeSet)``.  :meth:`lookup` serves a probe without any
    equation-system work when the stored entry's signature matches and
    its domain covers the request — exactly (returned verbatim) or
    strictly (returned clipped, subject to the seam guard, see the
    module docstring).  Only *successful* solves are stored, so a
    poisoned system fails inside every probe exactly as the full
    re-solve path would, and fault-injection/breaker behaviour is
    mode-independent.

    Bounded LRU; traffic is metered under ``delta.store.*``
    (``hits`` / ``misses`` / ``evictions`` / ``seam_rejects`` /
    ``prime_skips``).
    """

    __slots__ = ("_map", "maxsize", "_handles")

    def __init__(self, maxsize: int = 4096):
        self._map: OrderedDict = OrderedDict()
        self.maxsize = maxsize
        self._handles = None

    def _counters(self):
        if self._handles is None:
            self._handles = _metric_counters(
                "delta.store",
                "hits", "misses", "evictions", "seam_rejects",
                "prime_skips",
            )
        return self._handles

    @staticmethod
    def _seam_clear(solution: TimeSet, lo: float, hi: float) -> bool:
        """No stored feature is *near* (but not on) a requested seam."""
        for seam in (lo, hi):
            for iv in solution.intervals:
                for f in (iv.lo, iv.hi):
                    d = abs(f - seam)
                    if 0.0 < d <= SEAM_GUARD:
                        return False
            for p in solution.points:
                d = abs(p - seam)
                if 0.0 < d <= SEAM_GUARD:
                    return False
        return True

    def lookup(self, sig, lo: float, hi: float) -> TimeSet | None:
        """The stored solution over ``[lo, hi)``, or ``None``."""
        hits, misses, _, seam_rejects, _ = self._counters()
        if sig is None:
            misses.bump()
            return None
        entry = self._map.get(sig)
        if entry is None:
            misses.bump()
            return None
        elo, ehi, solution = entry
        if elo == lo and ehi == hi:
            self._map.move_to_end(sig)
            hits.bump()
            return solution
        if elo <= lo and hi <= ehi:
            if self._seam_clear(solution, lo, hi):
                self._map.move_to_end(sig)
                hits.bump()
                return solution.clip(lo, hi)
            seam_rejects.bump()
            return None
        misses.bump()
        return None

    def covers(self, sig, lo: float, hi: float) -> bool:
        """Read-only: would :meth:`lookup` hit?  Used by the priming
        pass to ship only genuine delta rows to the shard workers; does
        not reorder the LRU or bump hit/miss counters (a covered probe
        bumps ``delta.store.prime_skips`` instead)."""
        if sig is None:
            return False
        entry = self._map.get(sig)
        if entry is None:
            return False
        elo, ehi, solution = entry
        covered = (elo == lo and ehi == hi) or (
            elo <= lo and hi <= ehi and self._seam_clear(solution, lo, hi)
        )
        if covered:
            self._counters()[4].bump()
        return covered

    def store(self, sig, lo: float, hi: float, solution: TimeSet) -> None:
        """Record a successful solve; widest domain per signature wins.

        A narrower-than-stored domain is ignored (the stored entry
        already serves it); anything else — wider, or shifted — replaces
        the entry, keeping the store aligned with the stream's moving
        validity ranges.
        """
        if sig is None:
            return
        entry = self._map.get(sig)
        if entry is not None:
            elo, ehi, _ = entry
            if elo <= lo and hi <= ehi:
                self._map.move_to_end(sig)
                return
        self._map[sig] = (lo, hi, solution)
        self._map.move_to_end(sig)
        if len(self._map) > self.maxsize:
            self._map.popitem(last=False)
            self._counters()[2].bump()

    def __len__(self) -> int:
        return len(self._map)

    def clear(self) -> None:
        self._map.clear()

    # -- pickling: derived cache — entries are recomputed on demand ----
    def __getstate__(self):
        return {"maxsize": self.maxsize}

    def __setstate__(self, state) -> None:
        object.__setattr__(self, "_map", OrderedDict())
        object.__setattr__(self, "maxsize", state["maxsize"])
        object.__setattr__(self, "_handles", None)
