"""Bounded LRU memoization of difference-row solves.

Joins re-solve byte-identical systems whenever only one side of an
alignment changes — the same repeated-subcomputation waste DBSP-style
incremental view maintenance eliminates by memoizing operator deltas.
:class:`SolveCache` memoizes ``solve_relation`` results keyed on the
(quantized) coefficient tuple, the relation, and the solving domain;
values are immutable :class:`~repro.core.intervals.TimeSet` objects, so
sharing them between callers is safe.

Hit/miss/eviction counts are exported through the
:mod:`repro.engine.metrics` counter registry under ``solve_cache.hits``,
``solve_cache.misses`` and ``solve_cache.evictions`` so benchmarks read
one stats surface for all solver instrumentation.
"""

from __future__ import annotations

import math
import struct
from collections import OrderedDict
from typing import Hashable

from .intervals import TimeSet
from .polynomial import Polynomial
from .relation import Rel

CacheKey = Hashable


def quantize(value: float, mantissa_bits: int = 0) -> float:
    """Zero the low ``mantissa_bits`` of a float's mantissa.

    With ``mantissa_bits == 0`` this only canonicalizes ``-0.0`` to
    ``0.0`` (so byte-identical systems that differ in signed zeros still
    collide).  Higher values bucket floats within ``2**bits`` ulps so
    near-identical systems share a cache entry.
    """
    if value == 0.0:
        return 0.0
    if not math.isfinite(value) or mantissa_bits <= 0:
        return value
    (bits,) = struct.unpack("<q", struct.pack("<d", value))
    bits &= ~((1 << mantissa_bits) - 1)
    (out,) = struct.unpack("<d", struct.pack("<q", bits))
    return out


class SolveCache:
    """Bounded LRU cache of row-solve results.

    Parameters
    ----------
    maxsize:
        Entry bound; the least recently used entry is evicted beyond it.
    mantissa_bits:
        Key quantization granularity (see :func:`quantize`).
    """

    def __init__(self, maxsize: int = 4096, mantissa_bits: int = 0):
        if maxsize < 1:
            raise ValueError("cache maxsize must be at least 1")
        self.maxsize = maxsize
        self.mantissa_bits = mantissa_bits
        self._entries: OrderedDict[CacheKey, TimeSet] = OrderedDict()
        self._counters = None

    # ------------------------------------------------------------------
    def _counter(self, which: str):
        if self._counters is None:
            # Deferred so importing repro.core alone never drags the
            # engine package in at module-import time.
            from ..engine.metrics import get_counter

            self._counters = {
                "hits": get_counter("solve_cache.hits"),
                "misses": get_counter("solve_cache.misses"),
                "evictions": get_counter("solve_cache.evictions"),
            }
        return self._counters[which]

    # ------------------------------------------------------------------
    def key(self, poly: Polynomial, rel: Rel, lo: float, hi: float) -> CacheKey:
        """Cache key for one row solve over ``[lo, hi)``."""
        bits = self.mantissa_bits
        return (
            tuple(quantize(c, bits) for c in poly.coeffs),
            rel,
            quantize(lo, bits),
            quantize(hi, bits),
        )

    def get(self, key: CacheKey) -> TimeSet | None:
        entry = self._entries.get(key)
        if entry is None:
            self._counter("misses").bump()
            return None
        self._entries.move_to_end(key)
        self._counter("hits").bump()
        return entry

    def put(self, key: CacheKey, value: TimeSet) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self._counter("evictions").bump()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._entries

    def clear(self) -> None:
        self._entries.clear()

    @property
    def hits(self) -> int:
        return self._counter("hits").value

    @property
    def misses(self) -> int:
        return self._counter("misses").value

    @property
    def evictions(self) -> int:
        return self._counter("evictions").value

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, int]:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


_GLOBAL_CACHE: SolveCache | None = None


def global_solve_cache() -> SolveCache:
    """The process-wide solve cache, sized from :data:`SOLVER_CONFIG`."""
    global _GLOBAL_CACHE
    from .batch_solver import SOLVER_CONFIG

    if (
        _GLOBAL_CACHE is None
        or _GLOBAL_CACHE.maxsize != SOLVER_CONFIG.cache_size
        or _GLOBAL_CACHE.mantissa_bits != SOLVER_CONFIG.cache_mantissa_bits
    ):
        _GLOBAL_CACHE = SolveCache(
            maxsize=SOLVER_CONFIG.cache_size,
            mantissa_bits=SOLVER_CONFIG.cache_mantissa_bits,
        )
    return _GLOBAL_CACHE


def reset_global_solve_cache() -> None:
    """Drop the global cache (entries and identity; counters persist)."""
    global _GLOBAL_CACHE
    _GLOBAL_CACHE = None
