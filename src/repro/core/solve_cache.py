"""Bounded LRU memoization of difference-row solves.

Joins re-solve byte-identical systems whenever only one side of an
alignment changes — the same repeated-subcomputation waste DBSP-style
incremental view maintenance eliminates by memoizing operator deltas.
:class:`SolveCache` memoizes ``solve_relation`` results keyed on the
(quantized) coefficient tuple, the relation, and the solving domain;
values are immutable :class:`~repro.core.intervals.TimeSet` objects, so
sharing them between callers is safe.

Two cache layers exist since the sharded parallel runtime:

* :class:`SolveCache` — the *parent-process* TimeSet cache consulted by
  the :func:`~repro.core.batch_solver.solve_tasks` funnel.  Its hit/miss
  /eviction counts are exported through the :mod:`repro.engine.metrics`
  registry under ``solve_cache.hits`` / ``.misses`` / ``.evictions``.
* :class:`RootCache` — a *per-worker* cache of raw root arrays used by
  :func:`~repro.core.batch_solver.solve_rows_worker`.  Workers may live
  in forked shard processes with no access to the parent's registry, so
  the root cache counts locally and exports a mergeable
  :class:`CacheStats` snapshot that the dispatcher ships back with each
  result payload; :func:`repro.engine.metrics.absorb_cache_stats`
  aggregates the per-shard snapshots into the shared registry.

All cache keys canonicalize ``-0.0`` to ``0.0``: the two hash and
compare equal, so without normalization a ``-0.0`` coefficient would
silently share an entry whose *stored key* reprs differently in
diagnostics (``(-0.0,)`` vs ``(0.0,)``) depending on which row arrived
first.  :func:`normalize_zero` is the single place that rule lives.
"""

from __future__ import annotations

import math
import struct
from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

from .intervals import TimeSet
from .polynomial import Polynomial
from .relation import Rel

CacheKey = Hashable

#: Observer called with ``(event, entries)`` after every parent-cache
#: ``put`` (``event`` is ``"put"`` or ``"evict"``), installed by
#: :func:`repro.engine.tracing.enable_observability` to keep the
#: ``solve_cache.entries`` gauge live and surface eviction events in
#: traces.  ``None`` (the default) keeps ``put`` at one global load +
#: ``is None`` test.
_CACHE_OBSERVER = None


def set_cache_observer(observer) -> None:
    """Install (or clear) the parent-cache event observer."""
    global _CACHE_OBSERVER
    _CACHE_OBSERVER = observer


def normalize_zero(value: float) -> float:
    """Canonicalize ``-0.0`` to ``0.0`` (all other values pass through).

    ``-0.0 == 0.0`` and both hash equal, so either works as a dict key —
    but the *stored* key keeps the sign bit it arrived with, which leaks
    into diagnostics (``repr``) and makes cache dumps depend on arrival
    order.  Every cache-key builder routes floats through here.
    """
    if value == 0.0:
        return 0.0
    return value


def quantize(value: float, mantissa_bits: int = 0) -> float:
    """Zero the low ``mantissa_bits`` of a float's mantissa.

    With ``mantissa_bits == 0`` this only canonicalizes ``-0.0`` to
    ``0.0`` (so byte-identical systems that differ in signed zeros still
    collide).  Higher values bucket floats within ``2**bits`` ulps so
    near-identical systems share a cache entry.
    """
    if value == 0.0:
        return 0.0
    if not math.isfinite(value) or mantissa_bits <= 0:
        return value
    (bits,) = struct.unpack("<q", struct.pack("<d", value))
    bits &= ~((1 << mantissa_bits) - 1)
    (out,) = struct.unpack("<d", struct.pack("<q", bits))
    return out


@dataclass(frozen=True)
class CacheStats:
    """A mergeable point-in-time snapshot of one cache's counters.

    Shard workers return one of these with every result payload;
    snapshots add component-wise so the dispatcher can fold any number
    of per-worker snapshots into a single aggregate for the metrics
    registry (``entries`` sums too: it reads as the fleet-wide cached
    population across workers).
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    entries: int = 0

    def __add__(self, other: "CacheStats") -> "CacheStats":
        if not isinstance(other, CacheStats):
            return NotImplemented
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
            entries=self.entries + other.entries,
        )

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": self.entries,
        }

    @classmethod
    def merge(cls, snapshots: Iterable["CacheStats"]) -> "CacheStats":
        total = cls()
        for snap in snapshots:
            total = total + snap
        return total


class _LocalCounter:
    """Registry-free counter with the :class:`~..engine.metrics.Counter`
    interface, for caches living in worker processes."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def bump(self, by: int = 1) -> None:
        self.value += by

    def reset(self) -> None:
        self.value = 0


class SolveCache:
    """Bounded LRU cache of row-solve results.

    Parameters
    ----------
    maxsize:
        Entry bound; the least recently used entry is evicted beyond it.
    mantissa_bits:
        Key quantization granularity (see :func:`quantize`).
    use_registry:
        When ``True`` (the default) hit/miss/eviction counters live in
        the process-wide :mod:`repro.engine.metrics` registry.  Worker
        processes pass ``False`` to count locally — the engine package
        is never imported, and the counts travel back to the parent as
        a :class:`CacheStats` snapshot instead.
    """

    def __init__(
        self,
        maxsize: int = 4096,
        mantissa_bits: int = 0,
        use_registry: bool = True,
    ):
        if maxsize < 1:
            raise ValueError("cache maxsize must be at least 1")
        self.maxsize = maxsize
        self.mantissa_bits = mantissa_bits
        self.use_registry = use_registry
        self._entries: OrderedDict[CacheKey, TimeSet] = OrderedDict()
        # Counter handles are bound once (here or on first use), never
        # looked up by name on the get/put hot path.
        if use_registry:
            self._hits_counter = None
            self._misses_counter = None
            self._evictions_counter = None
        else:
            self._hits_counter = _LocalCounter()
            self._misses_counter = _LocalCounter()
            self._evictions_counter = _LocalCounter()

    # ------------------------------------------------------------------
    def _bind_counters(self) -> None:
        # Deferred so importing repro.core alone never drags the
        # engine package in at module-import time.
        from ..engine.metrics import get_counter

        self._hits_counter = get_counter("solve_cache.hits")
        self._misses_counter = get_counter("solve_cache.misses")
        self._evictions_counter = get_counter("solve_cache.evictions")

    def _counter(self, which: str):
        """The bound counter handle for ``which`` (hits/misses/evictions).

        Callers on a hot path should fetch the handle once before their
        loop instead of re-resolving it per event.
        """
        if self._hits_counter is None:
            self._bind_counters()
        return {
            "hits": self._hits_counter,
            "misses": self._misses_counter,
            "evictions": self._evictions_counter,
        }[which]

    # ------------------------------------------------------------------
    def key(self, poly: Polynomial, rel: Rel, lo: float, hi: float) -> CacheKey:
        """Cache key for one row solve over ``[lo, hi)``.

        Coefficients and domain bounds are quantized, which also
        canonicalizes ``-0.0`` to ``0.0`` (see :func:`normalize_zero`).
        """
        bits = self.mantissa_bits
        return (
            tuple(quantize(c, bits) for c in poly.coeffs),
            rel,
            quantize(lo, bits),
            quantize(hi, bits),
        )

    def get(self, key: CacheKey) -> TimeSet | None:
        entry = self._entries.get(key)
        if entry is None:
            self._counter("misses").bump()
            return None
        self._entries.move_to_end(key)
        self._counter("hits").bump()
        return entry

    def put(self, key: CacheKey, value: TimeSet) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        evicted = False
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self._counter("evictions").bump()
            evicted = True
        observer = _CACHE_OBSERVER
        if observer is not None:
            observer("evict" if evicted else "put", len(self._entries))

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._entries

    def clear(self) -> None:
        self._entries.clear()

    @property
    def hits(self) -> int:
        return self._counter("hits").value

    @property
    def misses(self) -> int:
        return self._counter("misses").value

    @property
    def evictions(self) -> int:
        return self._counter("evictions").value

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def snapshot(self) -> CacheStats:
        """Mergeable counter snapshot (see :class:`CacheStats`)."""
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            entries=len(self._entries),
        )

    def stats(self) -> dict[str, int]:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


class RootCache:
    """Bounded LRU cache of per-row *root arrays* (worker-side layer).

    Where :class:`SolveCache` memoizes finished :class:`TimeSet`
    solutions in the parent process, this caches the expensive middle of
    the pipeline — the sorted, deduplicated, domain-filtered real roots
    of one difference row over one domain — which is exactly what shard
    workers compute and ship back as float arrays.  Values are tuples of
    floats; failures are never cached, so a poisoned row re-raises
    identically on every encounter.

    The cache never touches the metrics registry (workers may be forked
    shard processes); counts are local and exported via
    :meth:`snapshot`.
    """

    __slots__ = ("maxsize", "_entries", "hits", "misses", "evictions")

    def __init__(self, maxsize: int = 16384):
        if maxsize < 1:
            raise ValueError("cache maxsize must be at least 1")
        self.maxsize = maxsize
        self._entries: OrderedDict[CacheKey, tuple[float, ...]] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def key(coeffs: Sequence[float], lo: float, hi: float) -> CacheKey:
        """Key for one row's root query; ``-0.0`` canonicalizes to ``0.0``.

        ``coeffs`` may be a slice of a float64 payload matrix — entries
        are passed through :func:`normalize_zero` so a ``-0.0``
        coefficient cannot create a shadow entry with a differing repr.
        """
        row = tuple(map(float, coeffs))
        # containment compares with ==, so -0.0 is found; rows with no
        # zero at all (the common case) skip the per-element rewrite
        if 0.0 in row:
            row = tuple(normalize_zero(c) for c in row)
        return (
            row,
            normalize_zero(float(lo)),
            normalize_zero(float(hi)),
        )

    def get(self, key: CacheKey) -> tuple[float, ...] | None:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: CacheKey, roots: Sequence[float]) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = tuple(roots)
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._entries

    def clear(self) -> None:
        self._entries.clear()

    def snapshot(self) -> CacheStats:
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            entries=len(self._entries),
        )

    def reset_stats(self) -> None:
        self.hits = self.misses = self.evictions = 0


_GLOBAL_CACHE: SolveCache | None = None

#: The per-process root cache used by ``solve_rows_worker``.  In a shard
#: worker process this is that worker's private cache; in the parent it
#: doubles as the dispatcher-side root store that primed sweeps fill.
_WORKER_ROOT_CACHE: RootCache | None = None

#: Default bound for per-worker root caches.
WORKER_ROOT_CACHE_SIZE = 16384


def global_solve_cache() -> SolveCache:
    """The process-wide solve cache, sized from :data:`SOLVER_CONFIG`."""
    global _GLOBAL_CACHE
    from .batch_solver import SOLVER_CONFIG

    if (
        _GLOBAL_CACHE is None
        or _GLOBAL_CACHE.maxsize != SOLVER_CONFIG.cache_size
        or _GLOBAL_CACHE.mantissa_bits != SOLVER_CONFIG.cache_mantissa_bits
    ):
        _GLOBAL_CACHE = SolveCache(
            maxsize=SOLVER_CONFIG.cache_size,
            mantissa_bits=SOLVER_CONFIG.cache_mantissa_bits,
        )
    return _GLOBAL_CACHE


def reset_global_solve_cache() -> None:
    """Drop the global cache (entries and identity; counters persist)."""
    global _GLOBAL_CACHE
    _GLOBAL_CACHE = None


def worker_root_cache() -> RootCache:
    """This process's root cache (created on first use)."""
    global _WORKER_ROOT_CACHE
    if _WORKER_ROOT_CACHE is None:
        _WORKER_ROOT_CACHE = RootCache(maxsize=WORKER_ROOT_CACHE_SIZE)
    return _WORKER_ROOT_CACHE


def reset_worker_root_cache() -> None:
    """Drop this process's root cache entirely (entries and counts)."""
    global _WORKER_ROOT_CACHE
    _WORKER_ROOT_CACHE = None
