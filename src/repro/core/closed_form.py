"""Vectorized closed-form root kernels for cubics and quartics.

The overwhelmingly common case on the solver hot path is a difference
row of degree <= 4 (two low-degree models subtracted), and degrees 3
and 4 have closed-form solutions that never need the companion-matrix
eigensolve ``np.linalg.eigvals`` pays per bucket.  This module supplies
the numerically-safe vectorized branches:

* **Cubic (Cardano, trig form).**  After monic normalization the
  Numerical-Recipes formulation is used: ``Q = (a^2 - 3b) / 9``,
  ``R = (2a^3 - 9ab + 27c) / 54``.  Rows with ``R^2 <= Q^3`` take the
  trigonometric branch (the *casus irreducibilis* — three real roots,
  where naive Cardano would need complex cube roots), evaluated with a
  clipped ``arccos`` so boundary rounding cannot produce NaN; the rest
  take the copysign-guarded radical branch ``A = -sign(R) * cbrt(|R| +
  sqrt(R^2 - Q^3))`` which adds two same-signed magnitudes and so never
  cancels catastrophically.  A small relative slack widens the trig
  branch across the discriminant boundary: a double root sitting
  rounding-noise outside it still yields its candidate pair, and the
  Newton polish plus residual filter downstream decide its fate — the
  same accept/reject economy the eigval path runs via ``IMAG_TOL``.

* **Quartic (Ferrari via resolvent cubic).**  Depressed form ``y^4 +
  p y^2 + q y + r`` (shift ``x = y - a/4``), resolvent ``m^3 + p m^2 +
  (p^2/4 - r) m - q^2/8 = 0`` solved with the cubic kernel above, the
  largest real root ``m`` selected (it is the best-conditioned perfect
  -square completion), then two quadratics ``y^2 -/+ s y + (p/2 + m
  +/- q/(2s)) = 0`` with ``s = sqrt(2m)``, each solved with the
  copysign-guarded stable quadratic.  Rows with ``q == 0`` short-cut to
  the biquadratic branch (quadratic in ``y^2``).  Sub-quadratic
  discriminants within a relative clamp below zero are treated as
  tangential double roots — again, polish + residual filtering
  downstream make the final call.

Both kernels return *candidates plus a per-row ``ok`` mask*, not final
roots: candidates flow into the exact same vectorized Newton polish,
residual filter, sort/dedupe/domain-pad pipeline the companion-matrix
candidates use (:func:`repro.core.batch_solver.real_roots_rows`), so a
closed-form result is accepted under precisely the same rules as an
eigval result.  ``ok`` is ``False`` whenever a non-finite intermediate
invalidated the row (e.g. monic normalization overflowing near the
``COEFF_MAX`` guardrail) — the dispatcher falls back to the companion
eigensolve for exactly those rows.

Every operation is an elementwise ufunc (no reductions), so a row's
candidates are independent of which batch it rides in — the same
partition-invariance argument the stacked eigensolver makes.  The
scalar path funnels degree-3/4 rows through this very kernel with a
one-row batch, which is what makes scalar and batched solves bit
-identical by construction (``tests/property/test_closed_form.py``
additionally pins the lane-consistency of the ufuncs involved).
"""

from __future__ import annotations

import numpy as np

#: Relative slack widening the cubic trig branch across the
#: ``R^2 == Q^3`` discriminant boundary, so near-double roots that
#: rounding pushed marginally outside still produce their candidate
#: pair (the residual filter rejects them if they are not real roots).
TRIG_BRANCH_SLACK = 1e-10

#: Relative clamp for marginally negative sub-quadratic discriminants
#: inside the quartic: within it, the pair is treated as a tangential
#: double root at the vertex.  Mirrors the eigval path's ``IMAG_TOL``
#: acceptance of almost-real conjugate pairs.
DISC_CLAMP = 1e-12

#: Relative threshold (against the depressed-coordinate root scale
#: ``y0``) below which a quartic's linear term is treated as zero and
#: the row takes the biquadratic branch instead of Ferrari.  The value
#: balances the two error sources at the crossover: Ferrari's seed
#: error grows as ``~8 eps y0^6 / q^2`` (the resolvent root ``m ~
#: q^2/y0^4`` is computed by cancellation of O(y0^2) terms and the
#: ``q/(2s)`` shift inherits half its relative error) while the
#: biquadratic branch's error from dropping the q-term is ``~|q| /
#: (4 y0^3)``; equating the two gives ``|q| ~ (8 eps)^(1/3) y0^3 ~
#: 2e-5 y0^3``, i.e. ~5e-6 relative seed error on either side of the
#: switch — deep inside the Newton polish basin.
Q_NEGLIGIBLE = 2e-5

#: Wider relative clamp for the two Ferrari split quadratics.  Their
#: discriminants inherit the resolvent root's rounding error amplified
#: through ``s = sqrt(2m)`` and ``q/(2s)``, and their constant terms
#: ``base +/- shift`` are computed by cancellation of O(|p|) magnitudes
#: — so a quartic double root's knife-edge zero discriminant lands up
#: to a few 1e-12 *absolute* below zero even when the disc's own scale
#: ``2m`` is tiny.  The clamp is therefore taken relative to the
#: cancellation magnitude (the ``err_scale`` floor), not just the
#: cancelled result.  A clamp miss here is not a spurious root but a
#: *lost seed* (the polish cannot recover a candidate that was never
#: emitted), while a clamp hit merely emits the vertex as a seed for
#: the downstream Newton polish + residual filter to vet — so the
#: window errs wide.
FERRARI_DISC_CLAMP = 1e-9


def _stable_quadratic_batch(
    b: np.ndarray,
    c: np.ndarray,
    clamp: float = DISC_CLAMP,
    err_scale: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Real roots of monic ``y^2 + b y + c = 0``, vectorized and guarded.

    Returns ``(r1, r2, has_real)``.  Discriminants within ``clamp``
    (relative, default :data:`DISC_CLAMP`) below zero are clamped to
    the double root at ``-b/2``; genuinely negative discriminants report
    ``has_real = False`` with NaN root slots.  ``err_scale``, when
    given, floors the clamp's reference scale — for callers whose
    ``b``/``c`` were produced by cancellation of larger magnitudes, the
    discriminant's absolute error tracks those magnitudes rather than
    the cancelled results.  The larger-magnitude
    root is computed first via the copysign trick and the other from
    the product of roots, exactly like the scalar
    :func:`repro.core.roots._quadratic_roots`.
    """
    disc = b * b - 4.0 * c
    scale = np.maximum(b * b, np.abs(4.0 * c))
    if err_scale is not None:
        scale = np.maximum(scale, err_scale)
    near = (disc < 0.0) & (disc >= -clamp * scale)
    disc = np.where(near, 0.0, disc)
    has_real = disc >= 0.0
    sq = np.sqrt(np.where(has_real, disc, 0.0))
    q = -0.5 * (b + np.copysign(sq, b))
    r1 = np.where(has_real, q, np.nan)
    with np.errstate(all="ignore"):
        r2 = np.where(has_real & (q != 0.0), c / np.where(q != 0.0, q, 1.0), 0.0)
    r2 = np.where(has_real, r2, np.nan)
    return r1, r2, has_real


def cubic_candidates(desc: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Closed-form candidate roots of cubic rows (descending coeffs).

    ``desc`` has shape ``(n, 4)`` with a non-zero leading column.
    Returns ``(candidates, ok)``: ``candidates`` is ``(n, 3)`` float64
    with NaN in slots the taken branch does not produce, and ``ok[i]``
    is ``False`` when row ``i`` hit a non-finite intermediate and must
    fall back to the companion eigensolve.
    """
    desc = np.asarray(desc, dtype=float)
    n = desc.shape[0]
    out = np.full((n, 3), np.nan)
    with np.errstate(all="ignore"):
        a = desc[:, 1] / desc[:, 0]
        b = desc[:, 2] / desc[:, 0]
        c = desc[:, 3] / desc[:, 0]
        q_term = (a * a - 3.0 * b) / 9.0
        r_term = (2.0 * a * a * a - 9.0 * a * b + 27.0 * c) / 54.0
        r2 = r_term * r_term
        q3 = q_term * q_term * q_term
        trig = (q_term > 0.0) & (r2 <= q3 * (1.0 + TRIG_BRANCH_SLACK))
        n_trig = int(np.count_nonzero(trig))

        # Branch bodies are gated on batch composition purely to skip
        # dead ufunc sweeps (each elementwise call costs ~1us of
        # dispatch); a row's own values are identical either way, so
        # partition invariance is untouched.
        if n_trig:
            # --- three-real-root (trig) branch ---------------------------
            sqrt_q = np.sqrt(np.where(q_term > 0.0, q_term, 1.0))
            ratio = np.clip(
                r_term / np.where(q3 > 0.0, sqrt_q * sqrt_q * sqrt_q, 1.0),
                -1.0,
                1.0,
            )
            theta = np.arccos(ratio)
            two_pi_3 = 2.0943951023931953  # 2*pi/3, fixed so lanes agree
            t0 = -2.0 * sqrt_q * np.cos(theta / 3.0) - a / 3.0
            t1 = -2.0 * sqrt_q * np.cos(theta / 3.0 + two_pi_3) - a / 3.0
            t2 = -2.0 * sqrt_q * np.cos(theta / 3.0 - two_pi_3) - a / 3.0

        if n_trig < n:
            # --- one-real-root (guarded radical) branch ------------------
            rad = np.sqrt(np.where(trig, 0.0, np.maximum(r2 - q3, 0.0)))
            big = -np.copysign(1.0, r_term) * np.cbrt(np.abs(r_term) + rad)
            small = np.where(
                big != 0.0, q_term / np.where(big != 0.0, big, 1.0), 0.0
            )
            single = big + small - a / 3.0

    if n_trig == n:
        out[:, 0] = t0
        out[:, 1] = t1
        out[:, 2] = t2
    elif n_trig == 0:
        out[:, 0] = single
    else:
        out[:, 0] = np.where(trig, t0, single)
        out[:, 1] = np.where(trig, t1, np.nan)
        out[:, 2] = np.where(trig, t2, np.nan)

    # A row is sound iff every slot its branch was supposed to fill is
    # finite; branch-unfilled slots are NaN by construction and benign.
    filled = np.zeros((n, 3), dtype=bool)
    filled[:, 0] = True
    filled[:, 1] = trig
    filled[:, 2] = trig
    ok = np.all(np.isfinite(out) | ~filled, axis=1)
    return out, ok


def quartic_candidates(desc: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Closed-form candidate roots of quartic rows (descending coeffs).

    ``desc`` has shape ``(n, 5)`` with a non-zero leading column.
    Returns ``(candidates, ok)`` with ``candidates`` of shape
    ``(n, 4)``; NaN marks slots whose sub-quadratic had no real pair
    (a legitimate outcome — a quartic may have 0 real roots), ``ok``
    is ``False`` only for rows needing the eigval fallback.
    """
    desc = np.asarray(desc, dtype=float)
    n = desc.shape[0]
    with np.errstate(all="ignore"):
        a = desc[:, 1] / desc[:, 0]
        b = desc[:, 2] / desc[:, 0]
        c = desc[:, 3] / desc[:, 0]
        d = desc[:, 4] / desc[:, 0]
        a2 = a * a
        # Depressed quartic y^4 + p y^2 + q y + r, x = y - a/4.
        p = b - 0.375 * a2
        q = c - 0.5 * a * b + 0.125 * a2 * a
        r = d - 0.25 * a * c + 0.0625 * a2 * b - (3.0 / 256.0) * a2 * a2

        # Resolvent cubic m^3 + p m^2 + (p^2/4 - r) m - q^2/8 = 0; its
        # largest real root m > 0 (for q != 0) completes the square.
        ones = np.ones(n)
        resolvent = np.stack(
            [ones, p, 0.25 * p * p - r, -0.125 * q * q], axis=1
        )
        m_cand, m_ok = cubic_candidates(resolvent)
        # Row-wise max over the finite slots (NaN-padded slots map to
        # -inf so an all-NaN row yields -inf, failing the ferrari gate).
        m = np.max(np.where(np.isfinite(m_cand), m_cand, -np.inf), axis=1)

        # Depressed-coordinate root scale: |p| ~ y0^2, |q| ~ y0^3,
        # |r| ~ y0^4.  A q-term whose contribution sits below ~1e-7 of
        # that scale steers Ferrari's q/(2s) shift through a tiny
        # resolvent root computed by catastrophic cancellation (seed
        # error up to ~1e-2); dropping it and taking the biquadratic
        # branch perturbs the roots by only ~|q|/y0^2 — far inside the
        # Newton polish basin — so near-biquadratic rows go that way.
        y0 = np.maximum(
            np.maximum(np.sqrt(np.abs(p)), np.cbrt(np.abs(q))),
            np.abs(r) ** 0.25,
        )
        q_negligible = np.abs(q) <= Q_NEGLIGIBLE * y0 * y0 * y0

        ferrari = ~q_negligible & (m > 0.0) & np.isfinite(m)
        n_ferrari = int(np.count_nonzero(ferrari))

        # Same batch-composition gating as the cubic: skip dead branch
        # sweeps, never change a row's own arithmetic.
        if n_ferrari:
            s = np.sqrt(np.where(ferrari, 2.0 * m, 1.0))
            shift = q / (2.0 * s)
            base = 0.5 * p + m
            # (y^2 + p/2 + m)^2 = 2m (y - q/(4m))^2 splits into two
            # monic quadratics; each contributes up to one real pair.
            # The constant terms cancel O(|base|)+O(|shift|) down to
            # O(m); clamp the split discs against that magnitude.
            split_err = 4.0 * (np.abs(base) + np.abs(shift))
            f1a, f1b, _ = _stable_quadratic_batch(
                -s,
                base + shift,
                clamp=FERRARI_DISC_CLAMP,
                err_scale=split_err,
            )
            f2a, f2b, _ = _stable_quadratic_batch(
                s,
                base - shift,
                clamp=FERRARI_DISC_CLAMP,
                err_scale=split_err,
            )

        if n_ferrari < n:
            # Biquadratic branch (negligible q): z^2 + p z + r = 0,
            # y = +/-sqrt(z).  Dropping the q-term displaces a z-root
            # by up to ~|q| sqrt(z)/y0^2; for a near-zero double root
            # (z ~ 0) that solves to |dz| <= (Q_NEGLIGIBLE y0)^2, so a
            # z marginally below zero within that window is the double
            # root's seed, not a complex pair — clamp it to 0 and let
            # the polish + residual filter vet the y = 0 seeds.
            z1, z2, _ = _stable_quadratic_batch(p, r)
            z_window = (
                DISC_CLAMP * (np.maximum(np.abs(p), np.abs(r)) + 1.0)
                + 4.0 * Q_NEGLIGIBLE * Q_NEGLIGIBLE * y0 * y0
            )
            z1 = np.where((z1 < 0.0) & (z1 >= -z_window), 0.0, z1)
            z2 = np.where((z2 < 0.0) & (z2 >= -z_window), 0.0, z2)
            sz1 = np.sqrt(np.where(z1 >= 0.0, z1, np.nan))
            sz2 = np.sqrt(np.where(z2 >= 0.0, z2, np.nan))

        out = np.empty((n, 4))
        if n_ferrari == n:
            out[:, 0] = f1a
            out[:, 1] = f1b
            out[:, 2] = f2a
            out[:, 3] = f2b
        elif n_ferrari == 0:
            out[:, 0] = sz1
            out[:, 1] = -sz1
            out[:, 2] = sz2
            out[:, 3] = -sz2
        else:
            out[:, 0] = np.where(ferrari, f1a, sz1)
            out[:, 1] = np.where(ferrari, f1b, -sz1)
            out[:, 2] = np.where(ferrari, f2a, sz2)
            out[:, 3] = np.where(ferrari, f2b, -sz2)
        out -= a[:, None] / 4.0

    # Soundness: the depression and resolvent must be finite, and for
    # Ferrari rows the split must have been available (m real-positive
    # whenever q is meaningfully non-zero — algebraically guaranteed,
    # so a miss means the resolvent solve degraded numerically).  NaN
    # candidate slots are legitimate (no real pair from that
    # quadratic) and stay NaN.
    depress_ok = (
        np.isfinite(p) & np.isfinite(q) & np.isfinite(r) & m_ok
    )
    split_ok = ferrari | q_negligible
    ok = depress_ok & split_ok
    return out, ok
