"""Query inversion: output bounds → input bounds (Section IV-B).

Given a range of values at the query output, what ranges at the query
inputs produce it?  The inverse of a join or aggregate is not unique
from outputs alone, so the inverter restricts it using lineage: every
output segment's *actual* causing input segments are known, and the
bound only needs to be apportioned among them (the bound inversion
problem), which the split heuristics solve.

Two kinds of attribute dependencies widen the allocation set
(Section IV-B):

* **bound translations** — output attributes that are aliases or
  arithmetic functions of input attributes (tracked by projections);
* **inferences** — attributes that are not in the result schema but
  constrain it through predicates (``S.d`` in the paper's example).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..errors import BoundInversionError
from ..segment import Segment
from .bounds import AllocatedBound, BoundAllocation, ErrorBound
from .lineage import LineageStore
from .splitters import SplitHeuristic, SplitInput, equi_split


@dataclass
class DependencyInfo:
    """Attribute-dependency metadata collected from the query plan."""

    #: output attribute -> input attributes it is computed from.
    translations: dict[str, frozenset[str]] = field(default_factory=dict)
    #: attributes constrained only through predicates.
    inferences: frozenset[str] = frozenset()

    def dependency_count(self, output_attr: str) -> int:
        """Extra dependencies ``|D(o)| - 1`` for one output attribute."""
        translated = self.translations.get(output_attr, frozenset())
        extra = len(translated) - 1 if translated else 0
        return max(extra, 0) + len(self.inferences)


def collect_dependencies(plan_root) -> DependencyInfo:
    """Walk a logical plan collecting translations and inferences."""
    from ...query.logical import (
        LogicalFilter,
        LogicalJoin,
        LogicalProject,
    )

    translations: dict[str, frozenset[str]] = {}
    predicate_attrs: set[str] = set()
    projected_attrs: set[str] = set()
    for node in plan_root.walk():
        if isinstance(node, LogicalProject):
            for proj in node.projections:
                translations.setdefault(proj.name, proj.expr.attributes())
                projected_attrs.update(
                    a.split(".")[-1] for a in proj.expr.attributes()
                )
                projected_attrs.add(proj.name)
        elif isinstance(node, LogicalFilter):
            predicate_attrs.update(
                a.split(".")[-1] for a in node.predicate.attributes()
            )
        elif isinstance(node, LogicalJoin):
            predicate_attrs.update(
                a.split(".")[-1] for a in node.predicate.attributes()
            )
    inferences = frozenset(predicate_attrs - projected_attrs)
    return DependencyInfo(translations=translations, inferences=inferences)


class QueryInverter:
    """Inverts output bounds onto source input segments via lineage."""

    def __init__(
        self,
        lineage: LineageStore,
        splitter: SplitHeuristic = equi_split,
        dependencies: DependencyInfo | None = None,
    ):
        self.lineage = lineage
        self.splitter = splitter
        self.dependencies = dependencies or DependencyInfo()
        #: Outputs inverted (benchmark hook).
        self.inversions = 0

    def invert_segment(
        self,
        output: Segment,
        bound: ErrorBound,
        allocation: BoundAllocation,
    ) -> list[AllocatedBound]:
        """Invert ``bound`` on one output segment into input allocations.

        The bound is anchored at the output models' midpoint values (for
        relative bounds); each source segment's modeled attributes
        become split targets.  Results are recorded into ``allocation``
        and returned.
        """
        sources = self.lineage.source_segments(output.seg_id)
        if not sources:
            raise BoundInversionError(
                f"no lineage recorded for output segment {output.seg_id}"
            )
        self.inversions += 1

        inputs = [
            SplitInput(
                key=src.key,
                attr=attr,
                poly=poly,
                t_start=src.t_start,
                t_end=src.t_end,
            )
            for src in sources
            for attr, poly in src.models.items()
        ]
        extra = 0
        for attr in output.models:
            extra = max(extra, self.dependencies.dependency_count(attr))
        # Run the splitter on the unit interval to obtain pure weights;
        # each target's absolute budget is then anchored per input.  For
        # relative bounds this anchors at the *input model's* value
        # (the paper sets thresholds to "1% of the trade's value"); for
        # absolute bounds the anchor is irrelevant.
        unit_shares = self.splitter(output.key, (-1.0, 1.0), inputs, extra)

        allocated: list[AllocatedBound] = []
        anchors = {
            (i.key, i.attr): abs(i.poly(0.5 * (i.t_start + i.t_end)))
            for i in inputs
        }
        source_ranges = {
            (src.key, attr): (src.t_start, src.t_end)
            for src in sources
            for attr in src.models
        }
        import math

        for share in unit_shares:
            target = (share.key, share.attr)
            half = bound.absolute_for(anchors[target])
            t_start, t_end = source_ranges[target]
            # Infinite share limits (one-sided splits) stay infinite
            # regardless of the anchor scale.
            lo = share.lo if math.isinf(share.lo) else share.lo * half
            hi = share.hi if math.isinf(share.hi) else share.hi * half
            ab = AllocatedBound(
                key=share.key,
                attr=share.attr,
                lo=lo,
                hi=hi,
                t_start=t_start,
                t_end=t_end,
                output_seg_id=output.seg_id,
            )
            allocation.add(ab)
            allocated.append(ab)
        return allocated

    def invert_all(
        self,
        outputs: Sequence[Segment],
        bound: ErrorBound,
        allocation: BoundAllocation,
    ) -> int:
        """Invert a batch of outputs; returns total allocations made."""
        count = 0
        for output in outputs:
            count += len(self.invert_segment(output, bound, allocation))
        return count
