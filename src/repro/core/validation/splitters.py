"""Accuracy and slack bound splitting heuristics (Section IV-C).

A bound inverted through a multi-input operator must be *apportioned*
among the input models that caused the output.  The paper defines the
split interface

    {(ik_p, [il_a, iu_a]), ...} =
        split(ok, oc, [ol, ou], {(ik_p, ic_a), ..., (ik_q, ic_a)})

and two built-in heuristics, both conservative (the allocated input
ranges never exceed the output range):

* **equi-split** — uniform allocation over every contributing key and
  every dependent attribute;
* **gradient split** — allocation proportional to each input model's
  contribution, measured by the magnitude of its time derivative (a
  fast-moving input gets a larger share of the budget because it is the
  one likely to violate first).

User-defined heuristics implement the same callable signature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from ..batch_solver import (
    batch_kernel_enabled,
    derivative_matrix,
    horner_rows,
    pad_coefficient_matrix,
)
from ..polynomial import Polynomial
from ..segment import Key


@dataclass(frozen=True)
class SplitInput:
    """One contributing input model: key, attribute, coefficients."""

    key: Key
    attr: str
    poly: Polynomial
    t_start: float
    t_end: float

    def mean_abs_gradient(self) -> float:
        """Average magnitude of the model's time derivative.

        Cheap surrogate: ``|d poly/dt|`` at the segment midpoint, plus a
        floor so constant models still receive a share.
        """
        deriv = self.poly.derivative()
        mid = 0.5 * (self.t_start + self.t_end)
        return abs(deriv(mid))


@dataclass(frozen=True)
class SplitShare:
    """The bound share allocated to one (key, attribute)."""

    key: Key
    attr: str
    lo: float
    hi: float


#: Split heuristic signature: (output key, output bound interval,
#: contributing inputs) -> shares.  ``dependencies`` counts attribute
#: dependencies D(o) = translations ∪ inferences beyond the inputs
#: themselves (each extra dependency dilutes the allocation).
SplitHeuristic = Callable[
    [Key, tuple[float, float], Sequence[SplitInput], int], list[SplitShare]
]


def equi_split(
    output_key: Key,
    bound: tuple[float, float],
    inputs: Sequence[SplitInput],
    dependencies: int = 0,
) -> list[SplitShare]:
    """Uniform allocation: each target gets ``bound / n``.

    ``n = |{ik_p ... ik_q}| * |D(o)|`` in the paper's notation — the
    number of contributing (key, attribute) targets, inflated by extra
    attribute dependencies.
    """
    if not inputs:
        return []
    n = len(inputs) + max(dependencies, 0)
    lo, hi = bound
    return [
        SplitShare(i.key, i.attr, lo / n, hi / n) for i in inputs
    ]


def mean_abs_gradients(inputs: Sequence[SplitInput]) -> list[float]:
    """Per-input derivative magnitudes, batched through one matrix sweep.

    The batched form stacks every input model's derivative coefficients
    into one padded matrix and evaluates all segment midpoints in a
    single column sweep — the same kernel the solver's sign tests use —
    instead of a Python Horner loop per input.  Falls back to the
    per-input path when the batch kernel is disabled or there is only
    one input.
    """
    if len(inputs) < 2 or not batch_kernel_enabled():
        return [i.mean_abs_gradient() for i in inputs]
    matrix = derivative_matrix(
        pad_coefficient_matrix([i.poly.coeffs for i in inputs])
    )
    mids = np.array([0.5 * (i.t_start + i.t_end) for i in inputs])
    return [float(g) for g in np.abs(horner_rows(matrix, mids))]


def gradient_split(
    output_key: Key,
    bound: tuple[float, float],
    inputs: Sequence[SplitInput],
    dependencies: int = 0,
) -> list[SplitShare]:
    """Contribution-proportional allocation.

    Each input's share is weighted by the magnitude of its model's time
    derivative relative to the sum over all contributing inputs — the
    product of the single-segment gradient with the global segment of
    all input keys, in the paper's phrasing.  Falls back to equi-split
    when every gradient is (numerically) zero.
    """
    if not inputs:
        return []
    gradients = mean_abs_gradients(inputs)
    total = sum(gradients)
    if total <= 1e-15:
        return equi_split(output_key, bound, inputs, dependencies)
    # Dependencies dilute the budget exactly as in equi-split.
    scale = len(inputs) / (len(inputs) + max(dependencies, 0))
    lo, hi = bound
    return [
        SplitShare(
            i.key,
            i.attr,
            lo * (g / total) * scale,
            hi * (g / total) * scale,
        )
        for i, g in zip(inputs, gradients)
    ]


def one_sided_split(
    direction: str,
    base: SplitHeuristic | None = None,
) -> SplitHeuristic:
    """Aggressive one-sided allocation (Section IV-C's suggestion).

    For inequality predicates only one error direction can flip the
    result: with ``x > c`` producing outputs, a tuple *above* its model
    keeps the predicate satisfied no matter how far it strays.  Opening
    the non-binding side to infinity "improves the longevity of the
    bounds" — tuples deviating the harmless way are never violations.

    Parameters
    ----------
    direction:
        ``"upper"`` keeps the upper limit and opens the lower one
        (deviations downward are harmless), ``"lower"`` the reverse.
    base:
        The two-sided heuristic supplying the kept side's width
        (default: equi-split).
    """
    if direction not in ("upper", "lower"):
        raise ValueError("direction must be 'upper' or 'lower'")
    base = base or equi_split

    def split(
        output_key: Key,
        bound: tuple[float, float],
        inputs: Sequence[SplitInput],
        dependencies: int = 0,
    ) -> list[SplitShare]:
        shares = base(output_key, bound, inputs, dependencies)
        if direction == "upper":
            return [
                SplitShare(s.key, s.attr, float("-inf"), s.hi) for s in shares
            ]
        return [
            SplitShare(s.key, s.attr, s.lo, float("inf")) for s in shares
        ]

    return split


_BUILTINS: Mapping[str, SplitHeuristic] = {
    "equi": equi_split,
    "gradient": gradient_split,
    "one-sided-upper": one_sided_split("upper"),
    "one-sided-lower": one_sided_split("lower"),
}


def get_splitter(name_or_fn: str | SplitHeuristic) -> SplitHeuristic:
    """Resolve a heuristic by name or accept a user-defined callable."""
    if callable(name_or_fn):
        return name_or_fn
    try:
        return _BUILTINS[name_or_fn]
    except KeyError:
        raise ValueError(
            f"unknown split heuristic {name_or_fn!r}; "
            f"built-ins: {sorted(_BUILTINS)}"
        ) from None
