"""The validation driver: accuracy and slack checking at query inputs.

Pulse's predictive mode precomputes query results from models and then
watches the real tuples arrive.  Validation "completely eliminates the
need for executing the discrete-time query" (Section IV): each tuple is
checked against its model *at the query input*,

* against the **accuracy** bounds inverted from the output bound when
  the input's segment produced query results, or
* against the **slack** — ``min_t ||D t||_inf``, how far the input was
  from producing any result — when it did not (a null result leaves the
  accuracy bound undefined, Section IV's slack validation).

A tuple within its bound is dropped without any query work; a violation
tells the caller to re-model and re-solve.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..operators.filter_op import ContinuousFilter
from ..operators.join_op import ContinuousJoin
from ..segment import Key, Segment
from ..transform import TransformedQuery
from .bounds import BoundAllocation, ErrorBound
from .inversion import DependencyInfo, QueryInverter
from .lineage import LineageStore
from .splitters import SplitHeuristic, get_splitter


class Outcome(enum.Enum):
    """Result of validating one tuple against its model."""

    #: Within the inverted accuracy bound: drop, results stand.
    ACCURATE = "accurate"
    #: Within the slack range: drop, still no results.
    WITHIN_SLACK = "within_slack"
    #: Bound or slack exceeded: the model is wrong, re-solve.
    VIOLATION = "violation"
    #: No active model/bound for this key: must process.
    UNKNOWN = "unknown"

    @property
    def can_drop(self) -> bool:
        return self in (Outcome.ACCURATE, Outcome.WITHIN_SLACK)


@dataclass
class ValidatorStats:
    tuples_checked: int = 0
    accuracy_checks: int = 0
    slack_checks: int = 0
    violations: int = 0
    dropped: int = 0
    #: Tuples with no usable model/bound — routed to processing, never
    #: dropped (the paper's "must process" residue).
    unknown: int = 0
    solver_runs: int = 0
    #: Segment ingests whose solve failed; the key's model is
    #: deactivated so its tuples validate UNKNOWN (process raw).
    solver_failures: int = 0
    inversions: int = 0

    @property
    def drop_rate(self) -> float:
        if self.tuples_checked == 0:
            return 0.0
        return self.dropped / self.tuples_checked


@dataclass
class _SlackRecord:
    slack: float
    t_start: float
    t_end: float


class QueryValidator:
    """Drives validated execution of a transformed query.

    Parameters
    ----------
    query:
        The transformed (continuous) query.
    bound:
        The user's output accuracy bound.
    splitter:
        Split heuristic name or callable ("equi", "gradient").
    dependencies:
        Bound translation / inference metadata from the planner.
    """

    def __init__(
        self,
        query: TransformedQuery,
        bound: ErrorBound,
        splitter: str | SplitHeuristic = "equi",
        dependencies: DependencyInfo | None = None,
    ):
        self.query = query
        self.bound = bound
        self.lineage = LineageStore()
        self.lineage.attach(query.plan)
        self.allocation = BoundAllocation()
        self.inverter = QueryInverter(
            self.lineage, get_splitter(splitter), dependencies
        )
        self.stats = ValidatorStats()
        self._slack: dict[Key, _SlackRecord] = {}
        #: Active predictive model per key (stream source segments).
        self._active: dict[Key, Segment] = {}
        #: Optional observer called as ``listener(key, outcome)`` after
        #: every validation — how the resilience layer's circuit
        #: breaker watches the violation rate without the validator
        #: knowing about breakers.
        self.outcome_listener = None

    # ------------------------------------------------------------------
    # segment ingestion (solver path)
    # ------------------------------------------------------------------
    def ingest(self, stream: str, segment: Segment) -> list[Segment]:
        """Run the solver on a new input segment and set up validation.

        Produces query outputs; on results, inverts the output bound to
        input allocations; on a null, computes and records slack.
        """
        from ..errors import PulseError

        self.lineage.record_source(segment)
        self._active[segment.key] = segment
        self.stats.solver_runs += 1
        try:
            outputs = self.query.push(stream, segment)
        except PulseError:
            # The solve failed: this key has no trustworthy model, so
            # deactivate it — its tuples must validate UNKNOWN and be
            # processed raw until a re-model succeeds.
            self.stats.solver_failures += 1
            self._active.pop(segment.key, None)
            self._slack.pop(segment.key, None)
            raise
        if outputs:
            made = self.inverter.invert_all(outputs, self.bound, self.allocation)
            self.stats.inversions += made
        else:
            self._record_slack(segment)
        return outputs

    def activate(self, segment: Segment) -> None:
        """Mark ``segment`` as the active model for its key.

        :meth:`ingest` activates automatically; replay-style callers that
        ingest a whole history first use this to rewind the active model
        when validating older tuples.
        """
        self._active[segment.key] = segment

    def _record_slack(self, segment: Segment) -> None:
        slack = self._compute_slack(segment)
        if slack is not None:
            self._slack[segment.key] = _SlackRecord(
                slack, segment.t_start, segment.t_end
            )

    def _compute_slack(self, segment: Segment) -> float | None:
        """Slack of the first selective operator fed by this segment.

        Walks the plan from the sources; the first filter or join with a
        compilable system against this segment supplies
        ``min_t ||D t||_inf`` over the segment's valid range.
        """
        from ..errors import PulseError

        for op in self.query.plan.operators():
            if not isinstance(op, (ContinuousFilter, ContinuousJoin)):
                continue
            try:
                system = op.slack_system(segment)
            except (PulseError, KeyError):
                # This operator's predicate references attributes the
                # input segment does not carry (it sits deeper in the
                # plan, fed by derived segments); it cannot supply an
                # input-level slack.
                continue
            if system is not None and system.rows:
                return system.slack(segment.t_start, segment.t_end)
        return None

    # ------------------------------------------------------------------
    # tuple validation (fast path)
    # ------------------------------------------------------------------
    def validate(self, key: Key, attr: str, t: float, value: float) -> Outcome:
        """Validate one observed attribute value against its model.

        ``UNKNOWN`` outcomes (no active model or bound for the key —
        including right after a solver failure deactivated it) must be
        routed to processing by the caller; they are never droppable.
        """
        outcome = self._validate(key, attr, t, value)
        if outcome is Outcome.UNKNOWN:
            self.stats.unknown += 1
        if self.outcome_listener is not None:
            self.outcome_listener(key, outcome)
        return outcome

    def _validate(self, key: Key, attr: str, t: float, value: float) -> Outcome:
        self.stats.tuples_checked += 1
        model_segment = self._active.get(key)
        if model_segment is None or not model_segment.contains_time(t):
            return Outcome.UNKNOWN
        if attr not in model_segment.models:
            return Outcome.UNKNOWN
        deviation = value - model_segment.models[attr](t)

        allocated = self.allocation.lookup(key, attr, t)
        if allocated is not None:
            self.stats.accuracy_checks += 1
            if allocated.allows(deviation):
                self.stats.dropped += 1
                return Outcome.ACCURATE
            self.stats.violations += 1
            return Outcome.VIOLATION

        slack = self._slack.get(key)
        if slack is not None and slack.t_start <= t < slack.t_end:
            self.stats.slack_checks += 1
            if abs(deviation) < slack.slack:
                self.stats.dropped += 1
                return Outcome.WITHIN_SLACK
            self.stats.violations += 1
            return Outcome.VIOLATION
        return Outcome.UNKNOWN

    # ------------------------------------------------------------------
    # housekeeping
    # ------------------------------------------------------------------
    def evict_before(self, watermark: float) -> None:
        self.allocation.evict_before(watermark)
        self.lineage.evict_before(watermark)
        for key in list(self._slack):
            if self._slack[key].t_end <= watermark:
                del self._slack[key]
        for key in list(self._active):
            if self._active[key].t_end <= watermark:
                del self._active[key]

    @property
    def active_keys(self) -> list[Key]:
        return list(self._active)
