"""Validation: error bounds, lineage, query inversion, split heuristics."""

from .bounds import AllocatedBound, BoundAllocation, ErrorBound
from .inversion import DependencyInfo, QueryInverter, collect_dependencies
from .lineage import LineageRecord, LineageStore
from .splitters import (
    SplitInput,
    SplitShare,
    equi_split,
    get_splitter,
    gradient_split,
    one_sided_split,
)
from .validator import Outcome, QueryValidator, ValidatorStats

__all__ = [
    "AllocatedBound",
    "BoundAllocation",
    "DependencyInfo",
    "ErrorBound",
    "LineageRecord",
    "LineageStore",
    "Outcome",
    "QueryInverter",
    "QueryValidator",
    "SplitInput",
    "SplitShare",
    "ValidatorStats",
    "collect_dependencies",
    "equi_split",
    "get_splitter",
    "gradient_split",
    "one_sided_split",
]
