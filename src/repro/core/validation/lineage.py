"""Query lineage: which input segments caused which outputs.

Joins and aggregates are many-to-one and have no unique inverse from
outputs alone; Pulse inverts them "given both the outputs and the inputs
that caused them" by maintaining the lineage of query execution
(Section IV).  Two properties make this well-defined:

* continuous-time operators produce temporal sub-ranges as results, so
  every output segment is caused by a unique set of input segments
  (Property 1);
* modeled attributes are functional dependents of keys throughout the
  dataflow (Property 2).

:class:`LineageStore` plugs into a :class:`ContinuousPlan` as a step
observer and records, per emitted segment, its parents; transitive
closure back to source segments answers the inverter's queries.  The
paper notes lineage is cheap for segments (compactness); eviction by
watermark keeps the store bounded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..plan import ContinuousPlan, PlanNode
from ..segment import Segment


@dataclass
class LineageRecord:
    """One recorded segment: where it came from and who made it."""

    segment: Segment
    operator_label: str
    parent_ids: tuple[int, ...]


class LineageStore:
    """Records segment derivations during plan execution."""

    def __init__(self):
        self._records: dict[int, LineageRecord] = {}

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def attach(self, plan: ContinuousPlan) -> None:
        """Register as a step observer on ``plan``."""
        plan.add_observer(self.observe)

    def observe(
        self, node: PlanNode, input_segment: Segment, outputs: list[Segment]
    ) -> None:
        # Record the input if unseen (it may be a plan source segment).
        if input_segment.seg_id not in self._records:
            self._records[input_segment.seg_id] = LineageRecord(
                input_segment, "source", input_segment.lineage
            )
        for out in outputs:
            self._records[out.seg_id] = LineageRecord(
                out, node.label, out.lineage or (input_segment.seg_id,)
            )

    def record_source(self, segment: Segment) -> None:
        """Explicitly record a source segment (before pushing it)."""
        self._records[segment.seg_id] = LineageRecord(segment, "source", ())

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, seg_id: int) -> bool:
        return seg_id in self._records

    def record(self, seg_id: int) -> LineageRecord:
        return self._records[seg_id]

    def parents(self, seg_id: int) -> list[LineageRecord]:
        rec = self._records.get(seg_id)
        if rec is None:
            return []
        return [
            self._records[p] for p in rec.parent_ids if p in self._records
        ]

    def source_segments(self, seg_id: int) -> list[Segment]:
        """Transitive closure to the plan's source segments.

        A segment with no recorded parents is a source.  Deduplicated by
        segment id; order follows discovery (breadth-first).
        """
        seen: set[int] = set()
        sources: list[Segment] = []
        frontier = [seg_id]
        while frontier:
            current = frontier.pop(0)
            if current in seen:
                continue
            seen.add(current)
            rec = self._records.get(current)
            if rec is None:
                continue
            parent_ids = [p for p in rec.parent_ids if p in self._records]
            if not parent_ids:
                sources.append(rec.segment)
            else:
                frontier.extend(parent_ids)
        return sources

    def evict_before(self, watermark: float) -> int:
        """Drop records for segments entirely before ``watermark``."""
        stale = [
            sid
            for sid, rec in self._records.items()
            if rec.segment.t_end <= watermark
        ]
        for sid in stale:
            del self._records[sid]
        return len(stale)

    def clear(self) -> None:
        self._records.clear()
