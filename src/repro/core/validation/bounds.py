"""Error bounds and their allocations (Section IV).

Users attach an accuracy bound to a query's outputs (``ERROR WITHIN 1%``)
and Pulse *inverts* it to bounds on the query's inputs, so raw tuples can
be validated — and usually dropped — without executing the query.

:class:`ErrorBound` is the user-facing specification (absolute or
relative).  :class:`BoundAllocation` is the result of inversion: per
(input key, attribute), an interval of allowed deviation from the model,
valid over a time range.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..segment import Key


@dataclass(frozen=True)
class ErrorBound:
    """An accuracy bound: ``value`` absolute, or relative to the data."""

    value: float
    relative: bool = False

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ValueError("error bound must be non-negative")

    def absolute_for(self, reference: float) -> float:
        """The absolute half-width of the bound around ``reference``."""
        if self.relative:
            return self.value * abs(reference)
        return self.value

    def interval_around(self, reference: float) -> tuple[float, float]:
        half = self.absolute_for(reference)
        return (reference - half, reference + half)

    @classmethod
    def from_spec(cls, spec) -> "ErrorBound":
        """Build from a parsed ``ErrorSpec`` (query layer)."""
        return cls(value=spec.bound, relative=spec.relative)


@dataclass
class AllocatedBound:
    """One inverted bound: attribute deviation allowed for a key.

    ``lo``/``hi`` bound the *deviation* (tuple value minus model value);
    the allocation is valid for sample timestamps in
    ``[t_start, t_end)``.
    """

    key: Key
    attr: str
    lo: float
    hi: float
    t_start: float
    t_end: float
    #: Which output segment this allocation was inverted from.
    output_seg_id: int = 0

    def allows(self, deviation: float) -> bool:
        return self.lo <= deviation <= self.hi

    @property
    def width(self) -> float:
        return self.hi - self.lo


class BoundAllocation:
    """The active set of inverted input bounds, indexed by (key, attr).

    Later allocations for the same (key, attr) override earlier ones on
    their overlap, mirroring segment update semantics.
    """

    def __init__(self):
        self._by_target: dict[tuple[Key, str], list[AllocatedBound]] = {}

    def add(self, bound: AllocatedBound) -> None:
        bounds = self._by_target.setdefault((bound.key, bound.attr), [])
        bounds.append(bound)

    def lookup(self, key: Key, attr: str, t: float) -> AllocatedBound | None:
        """The most recent allocation covering time ``t``."""
        bounds = self._by_target.get((key, attr))
        if not bounds:
            return None
        for bound in reversed(bounds):
            if bound.t_start <= t < bound.t_end:
                return bound
        return None

    def evict_before(self, watermark: float) -> int:
        dropped = 0
        for target in list(self._by_target):
            kept = [b for b in self._by_target[target] if b.t_end > watermark]
            dropped += len(self._by_target[target]) - len(kept)
            if kept:
                self._by_target[target] = kept
            else:
                del self._by_target[target]
        return dropped

    def __len__(self) -> int:
        return sum(len(v) for v in self._by_target.values())

    def __iter__(self) -> Iterator[AllocatedBound]:
        for bounds in self._by_target.values():
            yield from bounds

    def targets(self) -> list[tuple[Key, str]]:
        return list(self._by_target)
