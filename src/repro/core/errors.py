"""Exception hierarchy for the Pulse reproduction.

Every error raised by the library derives from :class:`PulseError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class PulseError(Exception):
    """Base class for all errors raised by this library."""


class InvalidIntervalError(PulseError):
    """An interval was constructed with a non-positive extent."""


class InvalidSegmentError(PulseError):
    """A segment violates the data-stream model of Section II-B."""


class PredicateError(PulseError):
    """A predicate cannot be compiled to a polynomial difference form."""


class NonPolynomialExpressionError(PredicateError):
    """An expression falls outside the supported closed polynomial class.

    The paper restricts models to polynomials with non-negative exponents so
    that the operator set stays closed (Section II-B); expressions such as an
    un-eliminable ``sqrt`` land here.
    """


class SolverError(PulseError):
    """The equation-system solver failed to produce a solution set."""


class SolverFailure(SolverError):
    """A guarded solver failure with a machine-readable reason.

    The solver guardrails promise that no bare numerical exception
    (``LinAlgError``, ``ZeroDivisionError``, ...) ever escapes a solve:
    anything the root finders cannot answer for surfaces as one of these,
    carrying a ``reason`` the resilience layer can route on:

    * ``"invalid-coefficients"`` — NaN/inf or absurd-magnitude
      coefficients (a bad model fit);
    * ``"zero-polynomial"`` — a root query on the zero polynomial;
    * ``"eigvals"`` — the companion-matrix eigensolve did not converge;
    * ``"row-budget"`` / ``"root-budget"`` — the per-system size budget
      of :class:`~repro.core.batch_solver.SolverConfig` was exceeded;
    * ``"injected"`` / ``"timeout"`` — faults from the test harness
      (:mod:`repro.testing.faults`);
    * ``"internal"`` — any other numerical error, wrapped.
    """

    def __init__(self, reason: str, detail: str = ""):
        self.reason = reason
        self.detail = detail
        message = f"solver failure [{reason}]"
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)


class UnsupportedAggregateError(PulseError):
    """A frequency-based aggregate was requested on the continuous path.

    Mirrors the paper's "Transformation Limitations": ``count``, frequency
    moments and histograms depend on tuple counts and have no continuous
    form.
    """


class PlanError(PulseError):
    """A logical plan cannot be transformed or executed."""


class QuerySyntaxError(PulseError):
    """The query text failed to lex or parse."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class TraceError(PulseError):
    """A trace row is malformed (strict replay, or a write-side gap).

    Carries the 1-based data-row number so operators can locate the bad
    row in the CSV trace, and — for write-side failures — the name of
    the declared field the tuple was missing.
    """

    def __init__(self, message: str, row: int = 0, field: str = ""):
        self.row = row
        self.field = field
        if row:
            message = f"{message} (trace row {row})"
        super().__init__(message)


class ValidationError(PulseError):
    """Accuracy or slack validation could not be performed."""


class BoundInversionError(ValidationError):
    """An output bound could not be inverted onto the operator inputs."""
