"""Query transform: logical plan → plan of simultaneous equation systems.

This is the paper's Section III-C query transform: each logical operator
is replaced, operator by operator, with its continuous (segment)
implementation, producing a :class:`ContinuousPlan` whose every node
consumes and produces segments.

The inverse-direction lowering to the discrete baseline engine lives in
:mod:`repro.engine.lowering`; the two share logical plans so every
benchmark compares the same query shape on both paths.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .errors import PlanError
from .operators import (
    ContinuousFilter,
    ContinuousGroupBy,
    ContinuousJoin,
    ContinuousMap,
    ContinuousOperator,
    make_aggregate,
)
from .plan import ContinuousPlan, NodeRef
from .segment import Segment, resolve_constant

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from ..query.planner import PlannedQuery


class TransformedQuery:
    """A continuous plan plus input-wiring metadata.

    ``push(stream, segment)`` fans the segment out to every scan of the
    stream (self-joins scan the same stream twice) and returns the output
    segments of the whole query.
    """

    def __init__(
        self,
        plan: ContinuousPlan,
        stream_sources: dict[str, list[str]],
        sample_period: float | None = None,
        inferred_period: float | None = None,
        error_bound: object = None,
    ):
        self.plan = plan
        self.stream_sources = stream_sources
        self.sample_period = sample_period
        #: Output rate inferred from the aggregates' slide parameters
        #: (Section III-C); used when no explicit SAMPLE PERIOD is given.
        self.inferred_period = inferred_period
        self.error_bound = error_bound

    @property
    def effective_sample_period(self) -> float | None:
        """Explicit ``SAMPLE PERIOD`` if given, else the slide-derived rate."""
        if self.sample_period is not None:
            return self.sample_period
        return self.inferred_period

    def push(self, stream: str, segment: Segment) -> list[Segment]:
        sources = self.stream_sources.get(stream)
        if not sources:
            raise PlanError(
                f"query has no scan of stream {stream!r}; "
                f"streams: {list(self.stream_sources)}"
            )
        outputs: list[Segment] = []
        for source in sources:
            outputs.extend(self.plan.push(source, segment))
        return outputs

    def prime_tasks(
        self, stream: str, segment: Segment
    ) -> list[tuple[tuple[float, ...], float, float]]:
        """Predicted root queries for pushing ``segment`` to ``stream``.

        Fans to every scan of the stream like :meth:`push`, but asks the
        plan's read-only :meth:`~repro.core.plan.ContinuousPlan.prime_tasks`
        instead of processing.  Unknown streams predict nothing (the
        push itself will raise).
        """
        sources = self.stream_sources.get(stream)
        if not sources:
            return []
        queries: list[tuple[tuple[float, ...], float, float]] = []
        for source in sources:
            queries.extend(self.plan.prime_tasks(source, segment))
        return queries

    def prime_round(
        self, items: list[tuple[str, Segment]]
    ) -> list[tuple[object, tuple[tuple[float, ...], float, float]]]:
        """Round-level prediction over ``(stream, segment)`` items.

        Expands the stream fan-out exactly like a sequence of
        :meth:`push` calls would (item by item, each to every scan of
        its stream, in order) and hands the flattened arrival list to
        the plan's read-only
        :meth:`~repro.core.plan.ContinuousPlan.prime_round`.
        """
        arrivals: list[tuple[str, Segment]] = []
        for stream, segment in items:
            for source in self.stream_sources.get(stream, ()):
                arrivals.append((source, segment))
        if not arrivals:
            return []
        return self.plan.prime_round(arrivals)

    def materialize(self, outputs: list[Segment]) -> list[dict]:
        """Sample output segments into tuples (Section III-C).

        Uses the explicit ``SAMPLE PERIOD`` or the aggregate-slide
        inference; selective-only queries must specify a rate.
        """
        period = self.effective_sample_period
        if period is None:
            raise PlanError(
                "output sampling needs a rate: add SAMPLE PERIOD to the "
                "query (selective operators have no inferable output rate)"
            )
        from .operators.sampler import OutputSampler

        sampler = OutputSampler(period)
        rows: list[dict] = []
        for segment in outputs:
            rows.extend(sampler.tuples(segment))
        return rows

    def reset(self) -> None:
        self.plan.reset()


def to_continuous_plan(
    planned: "PlannedQuery", approximate_degree: int | None = 2
) -> TransformedQuery:
    """Lower a planned query to a continuous (equation-system) plan."""
    from ..query.logical import (
        LogicalAggregate,
        LogicalFilter,
        LogicalJoin,
        LogicalNode,
        LogicalProject,
        LogicalScan,
    )

    plan = ContinuousPlan("continuous")

    def lower(node: LogicalNode) -> tuple[NodeRef, str | None]:
        """Returns ``(plan node, binding alias of its output)``."""
        if isinstance(node, LogicalScan):
            ref = plan.add_source(node.source_name)
            return ref, node.binding_name
        if isinstance(node, LogicalFilter):
            child, alias = lower(node.child)
            op = ContinuousFilter(node.predicate, alias=alias)
            return plan.add_operator(op, [child]), alias
        if isinstance(node, LogicalProject):
            child, alias = lower(node.child)
            op = ContinuousMap(
                node.projections,
                alias=alias,
                approximate_degree=approximate_degree,
            )
            return plan.add_operator(op, [child]), None
        if isinstance(node, LogicalJoin):
            left, _ = lower(node.left)
            right, _ = lower(node.right)
            op = ContinuousJoin(
                node.predicate,
                left_alias=node.left_alias,
                right_alias=node.right_alias,
                window=node.window,
            )
            return plan.add_operator(op, [(left, 0), (right, 1)]), None
        if isinstance(node, LogicalAggregate):
            child, _ = lower(node.child)
            op = _build_groupby(node)
            return plan.add_operator(op, [child]), None
        raise PlanError(f"cannot lower logical node {node!r}")

    root, _ = lower(planned.root)
    plan.set_output(root)
    # Section III-C: an aggregate's output rate is implied by its window
    # slide; the smallest slide in the plan bounds the output rate.
    slides = [
        node.slide
        for node in planned.root.walk()
        if isinstance(node, LogicalAggregate) and node.slide
    ]
    return TransformedQuery(
        plan,
        stream_sources=dict(planned.stream_sources),
        sample_period=(
            planned.sample_spec.period if planned.sample_spec else None
        ),
        inferred_period=min(slides) if slides else None,
        error_bound=planned.error_spec,
    )


class AggregateFactory:
    """Picklable zero-arg factory building one aggregate instance.

    Plans are pickled wholesale by the durability snapshot, so the
    group-by's per-group factory cannot be a closure — this class
    carries the aggregate parameters as plain attributes instead.
    """

    def __init__(self, func, attr, window, slide, output_attr):
        self.func = func
        self.attr = attr
        self.window = window
        self.slide = slide
        self.output_attr = output_attr

    def __call__(self) -> ContinuousOperator:
        return make_aggregate(
            self.func,
            self.attr,
            window=self.window,
            slide=self.slide,
            output_attr=self.output_attr,
        )


class ConstantFieldsKey:
    """Picklable grouping key over a segment's unmodeled constants."""

    def __init__(self, group_fields: tuple[str, ...]):
        self.group_fields = tuple(group_fields)

    def __call__(self, segment: Segment):
        return tuple(
            resolve_constant(segment, f) for f in self.group_fields
        )


def _build_groupby(node) -> ContinuousOperator:
    """Per-group continuous aggregate for a LogicalAggregate node."""
    factory = AggregateFactory(
        node.func, node.attr, node.window, node.slide, node.output_attr
    )
    group_key = (
        ConstantFieldsKey(tuple(node.group_fields))
        if node.group_fields
        else None
    )
    return ContinuousGroupBy(
        factory,
        group_key=group_key,
        name=f"group-by({node.func}({node.attr}))",
    )
