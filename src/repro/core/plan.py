"""Continuous query plans: DAGs of equation-system operators.

Pulse performs operator-by-operator transformation of a regular stream
query, instantiating "an internal query plan comprised of simultaneous
equation systems" (Section III-C).  :class:`ContinuousPlan` is that plan:
a DAG whose nodes wrap :class:`ContinuousOperator` instances and whose
edges route segments — segments are the plan's first-class datatype.

The executor is push-based: :meth:`push` delivers one input segment to a
source and drains the resulting cascade, returning the segments that
reached the plan's output.  Per-node counters feed the benchmarks.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from .errors import PlanError
from .operators.base import ContinuousOperator
from .segment import Segment


@dataclass
class PlanNode:
    """One node of the plan DAG."""

    node_id: int
    operator: ContinuousOperator | None  # None for sources
    label: str
    #: Downstream edges as ``(successor_id, successor_port)``.
    successors: list[tuple[int, int]] = field(default_factory=list)
    #: Execution counters.
    segments_in: int = 0
    segments_out: int = 0

    @property
    def is_source(self) -> bool:
        return self.operator is None


class NodeRef:
    """Opaque handle to a plan node (returned by the builder methods)."""

    __slots__ = ("node_id", "_plan")

    def __init__(self, node_id: int, plan: "ContinuousPlan"):
        self.node_id = node_id
        self._plan = plan

    def __repr__(self) -> str:
        return f"NodeRef({self.node_id})"


#: Observer invoked for every (operator, input segment, outputs) step, used
#: by the lineage store during validated execution.
StepObserver = Callable[[PlanNode, Segment, list[Segment]], None]

#: Context-manager factory wrapping each operator ``process`` call,
#: installed by :func:`repro.engine.tracing.enable_observability`; called
#: with ``(label, node_id)``.  Unlike :data:`StepObserver` (which fires
#: *after* a step), this wraps the step, so solve spans opened inside
#: ``process`` nest under the operator span.  ``None`` (the default)
#: keeps the cascade at one global load + ``is None`` test per step.
_OPERATOR_TRACE: Callable | None = None


def set_operator_trace(hook: Callable | None) -> None:
    """Install (or clear) the operator span hook."""
    global _OPERATOR_TRACE
    _OPERATOR_TRACE = hook


def operator_trace() -> Callable | None:
    return _OPERATOR_TRACE


class ContinuousPlan:
    """Builder and push-based executor for a DAG of continuous operators."""

    def __init__(self, name: str = "plan"):
        self.name = name
        self._nodes: dict[int, PlanNode] = {}
        self._sources: dict[str, int] = {}
        self._output_id: int | None = None
        self._next_id = 0
        self._observers: list[StepObserver] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_source(self, name: str) -> NodeRef:
        """Declare a named input stream."""
        if name in self._sources:
            raise PlanError(f"duplicate source {name!r}")
        node = self._new_node(None, f"source:{name}")
        self._sources[name] = node.node_id
        return NodeRef(node.node_id, self)

    def add_operator(
        self,
        operator: ContinuousOperator,
        inputs: Iterable[NodeRef | tuple[NodeRef, int]],
    ) -> NodeRef:
        """Add an operator fed by ``inputs``.

        Each input is a :class:`NodeRef` (port 0) or ``(ref, port)``.
        """
        node = self._new_node(operator, operator.name)
        wired = 0
        for item in inputs:
            ref, port = item if isinstance(item, tuple) else (item, 0)
            if ref._plan is not self:
                raise PlanError("input node belongs to a different plan")
            self._nodes[ref.node_id].successors.append((node.node_id, port))
            wired += 1
        if wired != operator.arity:
            raise PlanError(
                f"operator {operator.name!r} has arity {operator.arity}, "
                f"got {wired} inputs"
            )
        return NodeRef(node.node_id, self)

    def set_output(self, ref: NodeRef) -> None:
        self._output_id = ref.node_id

    def _new_node(self, operator: ContinuousOperator | None, label: str) -> PlanNode:
        node = PlanNode(self._next_id, operator, label)
        self._nodes[self._next_id] = node
        self._next_id += 1
        return node

    def add_observer(self, observer: StepObserver) -> None:
        """Register a per-step observer (e.g. the lineage recorder)."""
        self._observers.append(observer)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def sources(self) -> tuple[str, ...]:
        return tuple(self._sources)

    def node(self, ref: NodeRef) -> PlanNode:
        return self._nodes[ref.node_id]

    def nodes(self) -> Mapping[int, PlanNode]:
        return dict(self._nodes)

    def operators(self) -> list[ContinuousOperator]:
        return [n.operator for n in self._nodes.values() if n.operator]

    def prime_tasks(
        self, source: str, segment: Segment
    ) -> list[tuple[tuple[float, ...], float, float]]:
        """Root queries the first operator hop would issue for ``segment``.

        Only the source's *immediate* successors are asked — deeper
        operators consume upstream outputs that priming cannot know
        without actually processing, and a partial prediction is safe
        (see :meth:`ContinuousOperator.prime_tasks`).  Read-only.
        """
        src_id = self._sources.get(source)
        if src_id is None:
            return []
        queries: list[tuple[tuple[float, ...], float, float]] = []
        for succ_id, port in self._nodes[src_id].successors:
            operator = self._nodes[succ_id].operator
            if operator is not None:
                queries.extend(operator.prime_tasks(segment, port))
        return queries

    def prime_round(
        self, arrivals: list[tuple[str, Segment]]
    ) -> list[tuple[object, tuple[tuple[float, ...], float, float]]]:
        """Round-level :meth:`prime_tasks`: ``(source, segment)`` arrivals
        in processing order, answered as ``(key, query)`` pairs.

        Arrivals are grouped per first-hop operator (preserving order)
        so stateful operators can predict round-internal interactions —
        see :meth:`ContinuousOperator.prime_round`.  Read-only.
        """
        per_node: dict[int, list[tuple[int, Segment]]] = {}
        for source, segment in arrivals:
            src_id = self._sources.get(source)
            if src_id is None:
                continue
            for succ_id, port in self._nodes[src_id].successors:
                if self._nodes[succ_id].operator is not None:
                    per_node.setdefault(succ_id, []).append((port, segment))
        queries: list[
            tuple[object, tuple[tuple[float, ...], float, float]]
        ] = []
        for succ_id, node_arrivals in per_node.items():
            queries.extend(
                self._nodes[succ_id].operator.prime_round(node_arrivals)
            )
        return queries

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def push(self, source: str, segment: Segment) -> list[Segment]:
        """Deliver one segment to ``source`` and drain the cascade.

        Returns the segments that reached the output node (which are also
        produced if the output node has no successors and emits them).
        """
        if source not in self._sources:
            raise PlanError(
                f"unknown source {source!r}; declared: {list(self._sources)}"
            )
        if self._output_id is None:
            raise PlanError("plan has no output node; call set_output()")
        results: list[Segment] = []
        src = self._nodes[self._sources[source]]
        src.segments_in += 1
        src.segments_out += 1
        if self._sources[source] == self._output_id:
            results.append(segment)
        initial = [(succ_id, port, segment) for succ_id, port in src.successors]
        self._cascade(initial, results)
        return results

    def _cascade(
        self,
        initial: list[tuple[int, int, Segment]],
        results: list[Segment],
    ) -> None:
        queue: deque[tuple[int, int, Segment]] = deque(initial)
        while queue:
            node_id, port, seg = queue.popleft()
            node = self._nodes[node_id]
            node.segments_in += 1
            hook = _OPERATOR_TRACE
            if hook is None:
                outputs = node.operator.process(seg, port)
            else:
                with hook(node.label, node_id):
                    outputs = node.operator.process(seg, port)
            node.segments_out += len(outputs)
            for observer in self._observers:
                observer(node, seg, outputs)
            for out in outputs:
                if node_id == self._output_id:
                    results.append(out)
                for succ_id, succ_port in node.successors:
                    queue.append((succ_id, succ_port, out))

    def flush(self) -> list[Segment]:
        """Flush buffered operator state at end of stream.

        Nodes flush in construction order (topological, since inputs are
        built before their consumers); flushed segments cascade through
        downstream operators like regular arrivals.
        """
        results: list[Segment] = []
        for node_id in sorted(self._nodes):
            node = self._nodes[node_id]
            if node.operator is None:
                continue
            flushed = node.operator.flush()
            node.segments_out += len(flushed)
            for out in flushed:
                if node_id == self._output_id:
                    results.append(out)
                self._cascade(
                    [(succ_id, port, out) for succ_id, port in node.successors],
                    results,
                )
        return results

    def reset(self) -> None:
        for node in self._nodes.values():
            if node.operator is not None:
                node.operator.reset()
            node.segments_in = 0
            node.segments_out = 0

    def stats(self) -> dict[str, tuple[int, int]]:
        """Per-node ``(segments_in, segments_out)`` counters."""
        return {
            f"{n.node_id}:{n.label}": (n.segments_in, n.segments_out)
            for n in self._nodes.values()
        }

    def __repr__(self) -> str:
        return f"ContinuousPlan({self.name!r}, {len(self._nodes)} nodes)"
