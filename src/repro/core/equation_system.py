"""Simultaneous equation systems — the paper's core computational element.

A selective operator's predicate compiles, per (pair of) aligned segment(s),
into a system of *difference rows* ``d_i(t) R_i 0`` that must hold
simultaneously (Equation (1): ``D t R 0`` where ``D`` is the difference
coefficient matrix and ``t`` the vector of time powers).  Solving the
system yields the time ranges within the segment's validity during which
the discrete query would produce results.

Three solution strategies are provided, mirroring Section III-A:

* the **general algorithm**: solve each row independently by root finding
  and sign tests, then combine solution :class:`TimeSet`\\ s through the
  predicate's boolean structure (intersection for conjunction, union for
  disjunction);
* the **equality fast path**: when every row uses ``=`` (natural/equi
  joins), row-reduce the coefficient matrix ``D`` first (Gaussian
  elimination) to detect inconsistency cheaply and to solve only one
  minimal-degree row, verifying candidates against the rest;
* **slack** evaluation (Section IV): ``min_t ||D t||_inf`` over the valid
  range — how close the system came to producing a result, used to
  suppress validation work after nulls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from .batch_solver import (
    SOLVER_CONFIG,
    SolveTask,
    batch_kernel_enabled,
    fault_hook,
    solve_one,
    solve_tasks,
    vandermonde_values,
)
from .errors import SolverError, SolverFailure
from .expr import ModelResolver
from .intervals import Interval, TimeSet
from .polynomial import Polynomial
from .predicate import And, BoolExpr, Comparison, Literal, Not, Or, normalize
from .relation import Rel
from .roots import check_coefficients, real_roots


# ----------------------------------------------------------------------
# instrumentation hooks (observability integration points)
# ----------------------------------------------------------------------
#: Context-manager factories installed by
#: :func:`repro.engine.tracing.enable_observability`; called with the
#: row/system count of the solve they wrap.  ``None`` (the default)
#: keeps the hot path at one global load + ``is None`` test per solve.
_SPAN_SYSTEM: Callable | None = None
_SPAN_BATCH: Callable | None = None


def set_system_instrumentation(
    system_span: Callable | None = None,
    batch_span: Callable | None = None,
) -> None:
    """Install (or clear, the default) the system-solve span hooks."""
    global _SPAN_SYSTEM, _SPAN_BATCH
    _SPAN_SYSTEM = system_span
    _SPAN_BATCH = batch_span


def system_instrumentation() -> tuple:
    return (_SPAN_SYSTEM, _SPAN_BATCH)


_row_solve_counter = None


def row_solve_counter():
    """The global row-solve counter (``equation_system.row_solves``).

    Lives in the :mod:`repro.engine.metrics` registry so benchmarks and
    the solve cache share one resettable stats surface; fetched lazily
    to keep ``repro.core`` importable on its own.  The handle is bound
    on first use and reused: ``reset_counters`` zeroes counters in
    place without replacing them, so per-solve registry lookups would
    be pure hot-path overhead.
    """
    global _row_solve_counter
    if _row_solve_counter is None:
        from ..engine.metrics import get_counter

        _row_solve_counter = get_counter("equation_system.row_solves")
    return _row_solve_counter


@dataclass(frozen=True)
class DifferenceRow:
    """One row of the system: ``poly(t) R 0``."""

    poly: Polynomial
    rel: Rel

    def solve(self, lo: float, hi: float) -> TimeSet:
        row_solve_counter().bump()
        return solve_one(self.poly, self.rel, lo, hi)

    def holds_at(self, t: float, tol: float = 0.0) -> bool:
        return self.rel.holds(self.poly(t), tol)

    def __repr__(self) -> str:
        return f"{self.poly!r} {self.rel} 0"


class _Node:
    """Boolean-structure node referencing row indices."""

    __slots__ = ()


@dataclass(frozen=True)
class _AtomNode(_Node):
    row: int


@dataclass(frozen=True)
class _AndNode(_Node):
    children: tuple[_Node, ...]


@dataclass(frozen=True)
class _OrNode(_Node):
    children: tuple[_Node, ...]


@dataclass(frozen=True)
class _NotNode(_Node):
    child: _Node


@dataclass(frozen=True)
class _LiteralNode(_Node):
    value: bool


class EquationSystem:
    """A compiled predicate: difference rows plus boolean structure.

    Build one per (pair of) aligned segment(s) with
    :meth:`from_predicate`; the rows' polynomials already have the models
    substituted (steps 2–3 of the transform).

    Row solves are counted in the ``equation_system.row_solves`` counter
    of :mod:`repro.engine.metrics` (the old mutable ``solve_counter``
    class attribute, made resettable and shared with the cache stats).
    """

    def __init__(
        self,
        rows: Sequence[DifferenceRow],
        structure: _Node,
        equality_strategy: str = "gaussian",
    ):
        if equality_strategy not in ("gaussian", "svd"):
            raise SolverError(
                f"unknown equality strategy {equality_strategy!r}"
            )
        self.rows = tuple(rows)
        self._structure = structure
        #: How all-equality systems are pre-processed: "gaussian"
        #: row-reduces D; "svd" uses the singular value decomposition for
        #: rank/consistency analysis (both named in Section III-A).
        self.equality_strategy = equality_strategy

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_predicate(
        cls,
        predicate: BoolExpr,
        resolve: ModelResolver,
        equality_strategy: str = "gaussian",
    ) -> "EquationSystem":
        """Compile a (normalized or raw) predicate against segment models.

        ``resolve`` maps attribute names to their polynomial models within
        the current segment alignment.
        """
        predicate = normalize(predicate)
        rows: list[DifferenceRow] = []

        def build(node: BoolExpr) -> _Node:
            if isinstance(node, Literal):
                return _LiteralNode(node.value)
            if isinstance(node, Comparison):
                poly = node.difference_expr().to_polynomial(resolve)
                rows.append(DifferenceRow(poly, node.rel))
                return _AtomNode(len(rows) - 1)
            if isinstance(node, And):
                return _AndNode(tuple(build(c) for c in node.children))
            if isinstance(node, Or):
                return _OrNode(tuple(build(c) for c in node.children))
            if isinstance(node, Not):
                return _NotNode(build(node.child))
            raise SolverError(f"unsupported predicate node {node!r}")

        structure = build(predicate)
        return cls(rows, structure, equality_strategy=equality_strategy)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def is_conjunctive(self) -> bool:
        if isinstance(self._structure, _AtomNode):
            return True
        return isinstance(self._structure, _AndNode) and all(
            isinstance(c, _AtomNode) for c in self._structure.children
        )

    @property
    def all_equalities(self) -> bool:
        return bool(self.rows) and all(r.rel is Rel.EQ for r in self.rows)

    def coefficient_matrix(self) -> np.ndarray:
        """The difference coefficient matrix ``D`` of Equation (1).

        Row ``i`` holds the coefficients of ``d_i`` padded to the maximum
        degree, constant term first, so ``D @ [1, t, t^2, ...]`` evaluates
        every row at once.
        """
        width = max((len(r.poly.coeffs) for r in self.rows), default=1)
        matrix = np.zeros((len(self.rows), width))
        for i, row in enumerate(self.rows):
            matrix[i, : len(row.poly.coeffs)] = row.poly.coeffs
        return matrix

    def holds_at(self, t: float, tol: float = 0.0) -> bool:
        """Evaluate the whole predicate at instant ``t``."""

        def walk(node: _Node) -> bool:
            if isinstance(node, _LiteralNode):
                return node.value
            if isinstance(node, _AtomNode):
                return self.rows[node.row].holds_at(t, tol)
            if isinstance(node, _AndNode):
                return all(walk(c) for c in node.children)
            if isinstance(node, _OrNode):
                return any(walk(c) for c in node.children)
            if isinstance(node, _NotNode):
                return not walk(node.child)
            raise SolverError(f"unknown node {node!r}")

        return walk(self._structure)

    # ------------------------------------------------------------------
    # solving
    # ------------------------------------------------------------------
    def solve(self, lo: float, hi: float) -> TimeSet:
        """Solve the system over the half-open domain ``[lo, hi)``.

        Uses the equality fast path for all-equality conjunctions; all
        other multi-row systems go through the batched kernel (every row
        solved in one companion-matrix sweep) unless the scalar path is
        forced via :func:`repro.core.batch_solver.set_solver_mode`.

        Guardrail contract: every failure escapes as a typed
        :class:`SolverError` (usually a :class:`SolverFailure` with a
        machine-readable reason) — never a bare numerical exception —
        so the resilience layer can quarantine the offending key and
        degrade to the discrete path.
        """
        hook = _SPAN_SYSTEM
        if hook is None:
            return self._solve_impl(lo, hi)
        with hook(len(self.rows)):
            return self._solve_impl(lo, hi)

    def _solve_impl(self, lo: float, hi: float) -> TimeSet:
        if lo >= hi:
            return TimeSet.empty()
        self.check_budget()
        try:
            if (
                self.all_equalities
                and self.is_conjunctive
                and len(self.rows) > 1
            ):
                return self._solve_equality_system(lo, hi)
            if batch_kernel_enabled() and len(self.rows) > 1:
                return self.evaluate_structure(
                    self.solve_rows(lo, hi), lo, hi
                )
            return self._solve_node(self._structure, lo, hi)
        except SolverError:
            raise
        except (ValueError, ArithmeticError, np.linalg.LinAlgError) as exc:
            raise SolverFailure(
                "internal", f"{type(exc).__name__}: {exc}"
            ) from exc

    def check_budget(self) -> None:
        """Enforce the configured per-system row budget."""
        budget = SOLVER_CONFIG.max_rows_per_system
        if len(self.rows) > budget:
            raise SolverFailure(
                "row-budget",
                f"{len(self.rows)} rows exceed the system budget {budget}",
            )

    def row_tasks(self, lo: float, hi: float) -> "list[SolveTask]":
        """The cache-funnel tasks solving this system would issue.

        Every row solve — batched multi-row, or per-atom in the boolean
        walk — funnels through :func:`~repro.core.batch_solver.solve_tasks`
        with ``(poly, rel, lo, hi)`` tasks; this returns that task list
        without solving.  The equality fast path solves a *derived*
        candidate row, so it predicts nothing.  An ``And`` short-circuit
        may skip some rows at solve time, so this can over-predict —
        the priming pass that consumes it only warms caches.  Never
        mutates the system.
        """
        if lo >= hi or not self.rows:
            return []
        if self.all_equalities and self.is_conjunctive and len(self.rows) > 1:
            return []
        return [(row.poly, row.rel, lo, hi) for row in self.rows]

    def root_queries(
        self, lo: float, hi: float
    ) -> list[tuple[tuple[float, ...], float, float]]:
        """The root-finding queries solving this system would issue.

        Mirrors the classification in
        :func:`~repro.core.batch_solver.solve_relation_batch`: only
        non-zero, non-constant rows with in-guardrail coefficients reach
        the root finder, and only over a non-empty domain.  The equality
        fast path solves a *derived* candidate row instead of the
        originals, so it predicts nothing.  Used by the sharded
        runtime's priming pass; never mutates the system.
        """
        if lo >= hi or not self.rows:
            return []
        if self.all_equalities and self.is_conjunctive and len(self.rows) > 1:
            return []
        budget = SOLVER_CONFIG.max_roots_per_row
        queries: list[tuple[tuple[float, ...], float, float]] = []
        for row in self.rows:
            poly = row.poly
            if poly.is_zero or poly.is_constant or poly.degree > budget:
                continue
            try:
                check_coefficients(poly.coeffs)
            except SolverError:
                continue
            queries.append((poly.coeffs, lo, hi))
        return queries

    def solve_rows(self, lo: float, hi: float) -> list[TimeSet]:
        """Solve every row over ``[lo, hi)`` in one cached batch."""
        row_solve_counter().bump(len(self.rows))
        return solve_tasks([(r.poly, r.rel, lo, hi) for r in self.rows])

    def evaluate_structure(
        self, row_sets: Sequence[TimeSet], lo: float, hi: float
    ) -> TimeSet:
        """Combine pre-solved per-row TimeSets through the boolean tree."""

        def walk(node: _Node) -> TimeSet:
            if isinstance(node, _LiteralNode):
                return (
                    TimeSet.interval(lo, hi) if node.value else TimeSet.empty()
                )
            if isinstance(node, _AtomNode):
                return row_sets[node.row]
            if isinstance(node, _AndNode):
                result = TimeSet.interval(lo, hi)
                for child in node.children:
                    result = result & walk(child)
                    if result.is_empty:
                        return result
                return result
            if isinstance(node, _OrNode):
                result = TimeSet.empty()
                for child in node.children:
                    result = result | walk(child)
                return result
            if isinstance(node, _NotNode):
                return walk(node.child).complement(Interval(lo, hi))
            raise SolverError(f"unknown node {node!r}")

        return walk(self._structure)

    def _solve_node(self, node: _Node, lo: float, hi: float) -> TimeSet:
        if isinstance(node, _LiteralNode):
            return TimeSet.interval(lo, hi) if node.value else TimeSet.empty()
        if isinstance(node, _AtomNode):
            return self.rows[node.row].solve(lo, hi)
        if isinstance(node, _AndNode):
            result = TimeSet.interval(lo, hi)
            for child in node.children:
                result = result & self._solve_node(child, lo, hi)
                if result.is_empty:
                    return result
            return result
        if isinstance(node, _OrNode):
            result = TimeSet.empty()
            for child in node.children:
                result = result | self._solve_node(child, lo, hi)
            return result
        if isinstance(node, _NotNode):
            inner = self._solve_node(node.child, lo, hi)
            return inner.complement(Interval(lo, hi))
        raise SolverError(f"unknown node {node!r}")

    def _solve_equality_system(self, lo: float, hi: float) -> TimeSet:
        """Fast path for pure equality systems (Gaussian or SVD).

        Both strategies pre-analyze the coefficient matrix ``D`` before
        any root finding, as Section III-A suggests for natural/equi
        joins: Gaussian elimination row-reduces ``D`` to detect
        inconsistency and isolate a minimal-degree residual row; the SVD
        variant reads rank and consistency from the singular values.
        Candidates from the selected row are verified against every
        original row.
        """
        row_solve_counter().bump()
        hook = fault_hook()
        for row in self.rows:
            task: SolveTask = (row.poly, row.rel, lo, hi)
            if hook is not None:
                replacement = hook(task)
                if replacement is not None:
                    task = replacement
            check_coefficients(task[0].coeffs)
        matrix = self.coefficient_matrix()
        if self.equality_strategy == "svd":
            candidate_poly = self._svd_candidate(matrix)
        else:
            candidate_poly = self._gaussian_candidate(matrix)
        if candidate_poly is _INCONSISTENT:
            return TimeSet.empty()
        if candidate_poly is None:
            # All rows identically zero: the system holds everywhere.
            return TimeSet.interval(lo, hi)
        scale = max(abs(c) for r in self.rows for c in r.poly.coeffs)
        tol = 1e-7 * max(1.0, scale)
        points = [
            r
            for r in real_roots(candidate_poly, lo, hi)
            if lo <= r < hi
            and all(abs(row.poly(r)) <= tol for row in self.rows)
        ]
        return TimeSet.from_points(points)

    def _gaussian_candidate(self, matrix: np.ndarray) -> "Polynomial | None":
        reduced = _row_reduce(matrix)
        candidate: Polynomial | None = None
        for row in reduced:
            if np.allclose(row, 0.0, atol=1e-12):
                continue
            poly = Polynomial(row)
            if poly.is_constant:
                return _INCONSISTENT  # c = 0 with c != 0
            if candidate is None or poly.degree < candidate.degree:
                candidate = poly
        return candidate

    def _svd_candidate(self, matrix: np.ndarray) -> "Polynomial | None":
        """SVD-based pre-analysis of the equality system.

        Rank 0 means the system holds everywhere.  A right-singular
        direction concentrated on the constant column (i.e. the row
        space contains a pure-constant equation) means inconsistency.
        Otherwise the densest row of the rank-truncated row space serves
        as the candidate equation.
        """
        scale = np.max(np.abs(matrix))
        if scale == 0.0:
            return None
        u, s, vt = np.linalg.svd(matrix)
        rank = int(np.sum(s > 1e-12 * s[0])) if s.size else 0
        if rank == 0:
            return None
        # Row space basis: the first `rank` right-singular vectors.
        for basis_row in vt[:rank]:
            # A basis vector supported only on the constant term encodes
            # the equation "c = 0" with c != 0: inconsistent.
            if abs(basis_row[0]) > 1e-9 and np.all(
                np.abs(basis_row[1:]) <= 1e-12 * abs(basis_row[0])
            ):
                return _INCONSISTENT
        # Prefer the basis equation of minimal degree (fewest trailing
        # non-zeros) for cheap root finding.
        best: Polynomial | None = None
        for basis_row in vt[:rank]:
            poly = Polynomial((basis_row * scale).tolist())
            if poly.is_zero:
                continue
            if poly.is_constant:
                return _INCONSISTENT
            if best is None or poly.degree < best.degree:
                best = poly
        return best

    # ------------------------------------------------------------------
    # slack (Section IV)
    # ------------------------------------------------------------------
    def slack(self, lo: float, hi: float, samples: int = 64) -> float:
        """``min_t ||D t||_inf`` over ``[lo, hi]``.

        The continuous measure of how close the query came to producing a
        result.  Computed by dense sampling followed by golden-section
        refinement around the best sample — the objective is piecewise
        smooth, so local refinement recovers the minimum to high accuracy.
        """
        if not self.rows:
            return 0.0
        if hi <= lo:
            return self._inf_norm(lo)
        ts = np.linspace(lo, hi, samples)
        if batch_kernel_enabled():
            # One D @ [1, t, t^2, ...] matrix product over the whole
            # sample grid instead of per-row Horner loops.
            values = np.max(
                np.abs(vandermonde_values(self.coefficient_matrix(), ts)),
                axis=0,
            )
        else:
            values = np.max(
                np.abs(np.vstack([row.poly(ts) for row in self.rows])), axis=0
            )
        best = int(np.argmin(values))
        a = ts[max(best - 1, 0)]
        b = ts[min(best + 1, samples - 1)]
        refined_t = _golden_section(self._inf_norm, a, b)
        return min(float(values[best]), self._inf_norm(refined_t))

    def _inf_norm(self, t: float) -> float:
        return max(abs(row.poly(t)) for row in self.rows)

    def __repr__(self) -> str:
        return f"EquationSystem({len(self.rows)} rows)"


def solve_systems_batch(
    jobs: Sequence[tuple["EquationSystem", float, float]],
    failures: dict[int, SolverError] | None = None,
) -> list[TimeSet]:
    """Solve many systems' rows through one batched kernel sweep.

    ``jobs`` holds ``(system, lo, hi)`` triples — e.g. every candidate
    pair produced by one join probe.  All rows of all general systems
    are pooled into a single :func:`solve_tasks` call (one cache pass,
    one degree-bucketed eigensolve); equality fast-path systems keep
    their own pre-analysis, and everything falls back to the scalar
    per-system path when the batch kernel is disabled.

    With a ``failures`` dict, a failing system records its typed error
    under its job index (result ``TimeSet.empty()``) instead of sinking
    the whole sweep — one poisoned candidate pair costs only itself.
    """
    hook = _SPAN_BATCH
    if hook is None:
        return _solve_systems_batch_impl(jobs, failures)
    with hook(len(jobs)):
        return _solve_systems_batch_impl(jobs, failures)


def _solve_systems_batch_impl(
    jobs: Sequence[tuple["EquationSystem", float, float]],
    failures: dict[int, SolverError] | None = None,
) -> list[TimeSet]:
    results: list[TimeSet | None] = [None] * len(jobs)
    spans: list[tuple[int, int, int]] = []  # (job index, start, stop)
    tasks: list[SolveTask] = []
    use_batch = batch_kernel_enabled()
    for ji, (system, lo, hi) in enumerate(jobs):
        if (
            not use_batch
            or lo >= hi
            or not system.rows
            or (
                system.all_equalities
                and system.is_conjunctive
                and len(system.rows) > 1
            )
        ):
            try:
                results[ji] = system.solve(lo, hi)
            except SolverError as exc:
                if failures is None:
                    raise
                failures[ji] = exc
                results[ji] = TimeSet.empty()
            continue
        try:
            system.check_budget()
        except SolverError as exc:
            if failures is None:
                raise
            failures[ji] = exc
            results[ji] = TimeSet.empty()
            continue
        start = len(tasks)
        tasks.extend((r.poly, r.rel, lo, hi) for r in system.rows)
        row_solve_counter().bump(len(system.rows))
        spans.append((ji, start, len(tasks)))
    if tasks:
        task_failures: dict[int, SolverError] | None = (
            None if failures is None else {}
        )
        solved = solve_tasks(tasks, failures=task_failures)
        for ji, start, stop in spans:
            system, lo, hi = jobs[ji]
            if task_failures:
                bad = [
                    task_failures[k]
                    for k in range(start, stop)
                    if k in task_failures
                ]
                if bad:
                    failures[ji] = bad[0]  # type: ignore[index]
                    results[ji] = TimeSet.empty()
                    continue
            results[ji] = system.evaluate_structure(solved[start:stop], lo, hi)
    return results  # type: ignore[return-value]


#: Sentinel distinguishing "inconsistent system" from "no candidate row".
_INCONSISTENT = Polynomial([1.0])


def _row_reduce(matrix: np.ndarray) -> np.ndarray:
    """Reduced row-echelon form, eliminating from the highest power down.

    Pivoting on the *highest*-degree columns first drives the reduction
    toward a minimal-degree residual row, which is the cheapest to solve by
    root finding.
    """
    m = matrix.astype(float).copy()
    rows, cols = m.shape
    pivot_row = 0
    for col in range(cols - 1, -1, -1):
        if pivot_row >= rows:
            break
        pivot = pivot_row + int(np.argmax(np.abs(m[pivot_row:, col])))
        if abs(m[pivot, col]) < 1e-12:
            continue
        m[[pivot_row, pivot]] = m[[pivot, pivot_row]]
        m[pivot_row] /= m[pivot_row, col]
        for r in range(rows):
            if r != pivot_row and abs(m[r, col]) > 1e-14:
                m[r] -= m[r, col] * m[pivot_row]
        pivot_row += 1
    return m


def _golden_section(
    f: Callable[[float], float],
    a: float,
    b: float,
    tol: float = 1e-10,
    max_iter: int = 80,
) -> float:
    """Golden-section minimization of ``f`` on ``[a, b]``."""
    inv_phi = (np.sqrt(5.0) - 1.0) / 2.0
    c = b - inv_phi * (b - a)
    d = a + inv_phi * (b - a)
    fc, fd = f(c), f(d)
    for _ in range(max_iter):
        if b - a < tol * max(1.0, abs(a) + abs(b)):
            break
        if fc < fd:
            b, d, fd = d, c, fc
            c = b - inv_phi * (b - a)
            fc = f(c)
        else:
            a, c, fc = c, d, fd
            d = a + inv_phi * (b - a)
            fd = f(d)
    return 0.5 * (a + b)
