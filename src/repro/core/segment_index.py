"""Segment indexing for highly segmented datasets (Section VII).

The paper's future work calls for "segment indexing techniques to
process highly segmented datasets".  This module provides a static-top
interval index: segments are bucketed into fixed-width time cells (each
segment registered in every cell it overlaps), so an overlap query
touches only the cells the probe range covers instead of scanning the
whole buffer.

For the paper's workloads (hundreds of live segments) a linear scan is
fine; with many unmodeled attributes fragmenting the models into
thousands of live segments, the index turns the join's partner lookup
from O(n) into O(answer + cells).  `IndexedSegmentBuffer` is a drop-in
replacement for :class:`SegmentBuffer`.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Iterator

from .segment import Key, Segment, apply_update_semantics


class IntervalIndex:
    """Fixed-cell interval index over segment validity ranges.

    Parameters
    ----------
    cell_width:
        Width of one time cell.  Choose near the typical segment
        duration; much smaller wastes memory (a segment registers in
        ``duration / cell_width`` cells), much larger degrades to a
        scan within the cell.
    """

    def __init__(self, cell_width: float = 1.0):
        if cell_width <= 0:
            raise ValueError("cell width must be positive")
        self.cell_width = float(cell_width)
        self._cells: dict[int, list[Segment]] = defaultdict(list)
        self._count = 0

    def _cell_range(self, lo: float, hi: float) -> range:
        first = math.floor(lo / self.cell_width)
        last = math.ceil(hi / self.cell_width)
        return range(first, max(last, first + 1))

    def insert(self, segment: Segment) -> None:
        for cell in self._cell_range(segment.t_start, segment.t_end):
            self._cells[cell].append(segment)
        self._count += 1

    def remove(self, segment: Segment) -> bool:
        """Remove by identity; returns whether anything was removed."""
        removed = False
        for cell in self._cell_range(segment.t_start, segment.t_end):
            bucket = self._cells.get(cell)
            if bucket is None:
                continue
            before = len(bucket)
            self._cells[cell] = [s for s in bucket if s.seg_id != segment.seg_id]
            if len(self._cells[cell]) < before:
                removed = True
            if not self._cells[cell]:
                del self._cells[cell]
        if removed:
            self._count -= 1
        return removed

    def overlapping(self, lo: float, hi: float) -> Iterator[Segment]:
        """All indexed segments overlapping ``[lo, hi)``, deduplicated."""
        seen: set[int] = set()
        for cell in self._cell_range(lo, hi):
            for segment in self._cells.get(cell, ()):
                if segment.seg_id in seen:
                    continue
                if segment.t_start < hi and lo < segment.t_end:
                    seen.add(segment.seg_id)
                    yield segment

    def evict_before(self, watermark: float) -> int:
        """Drop segments ending at or before ``watermark``."""
        victims: dict[int, Segment] = {}
        boundary = math.ceil(watermark / self.cell_width)
        for cell in [c for c in self._cells if c <= boundary]:
            for segment in self._cells[cell]:
                if segment.t_end <= watermark:
                    victims[segment.seg_id] = segment
        for segment in victims.values():
            self.remove(segment)
        return len(victims)

    def __len__(self) -> int:
        return self._count

    @property
    def cell_count(self) -> int:
        return len(self._cells)


class IndexedSegmentBuffer:
    """A :class:`SegmentBuffer` drop-in backed by an interval index.

    Per-key lists preserve the update semantics; the index accelerates
    the cross-key ``overlapping`` queries joins issue per arrival.
    """

    def __init__(self, cell_width: float = 1.0):
        self._by_key: dict[Key, list[Segment]] = {}
        self._index = IntervalIndex(cell_width)
        self._watermark = float("-inf")

    def __len__(self) -> int:
        return sum(len(v) for v in self._by_key.values())

    @property
    def watermark(self) -> float:
        return self._watermark

    def insert(self, segment: Segment) -> None:
        current = self._by_key.get(segment.key, [])
        updated = apply_update_semantics(current, segment)
        # Re-index the key's changed segments (update semantics may trim
        # or drop predecessors).
        for old in current:
            self._index.remove(old)
        for seg in updated:
            self._index.insert(seg)
        self._by_key[segment.key] = updated

    def keys(self) -> Iterator[Key]:
        return iter(self._by_key)

    def segments(self, key: Key | None = None) -> Iterator[Segment]:
        if key is not None:
            yield from self._by_key.get(key, [])
            return
        for segs in self._by_key.values():
            yield from segs

    def overlapping(
        self, lo: float, hi: float, key: Key | None = None
    ) -> Iterator[Segment]:
        if key is not None:
            for seg in self._by_key.get(key, []):
                if seg.t_start < hi and lo < seg.t_end:
                    yield seg
            return
        yield from self._index.overlapping(lo, hi)

    def evict_before(self, watermark: float) -> int:
        self._watermark = max(self._watermark, watermark)
        dropped = self._index.evict_before(watermark)
        for key in list(self._by_key):
            kept = [s for s in self._by_key[key] if s.t_end > watermark]
            if kept:
                self._by_key[key] = kept
            else:
                del self._by_key[key]
        return dropped

    def clear(self) -> None:
        self._by_key.clear()
        self._index = IntervalIndex(self._index.cell_width)
