"""Dense univariate polynomials over time.

This is the numeric kernel underneath every Pulse model: a modeled stream
attribute ``a`` is ``a(t) = sum_i c_i t^i`` (Section II-B), and operator
transforms manipulate these coefficient vectors — differencing them for
selective predicates, integrating them for sum/average window functions, and
expanding ``(t - w)^i`` terms by the binomial theorem for tail integrals.

Coefficients are stored in ascending order (``coeffs[i]`` multiplies
``t**i``) as a tuple of floats, so instances are immutable and hashable.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence, Union

Number = Union[int, float]

def _trim(coeffs: Sequence[float]) -> tuple[float, ...]:
    """Drop exactly-zero leading coefficients.

    Only *exact* zeros are trimmed: any magnitude threshold would
    silently delete legitimately tiny coefficients (a cubed millimeter
    slope matters at large t).  Cancellation residue from differencing
    nearly-equal models survives as a tiny leading coefficient; the
    root finder's residual checks are built to tolerate that.
    """
    end = len(coeffs)
    while end > 1 and coeffs[end - 1] == 0.0:
        end -= 1
    return tuple(float(c) for c in coeffs[:end])


class Polynomial:
    """An immutable dense polynomial with ascending coefficients."""

    __slots__ = ("coeffs",)

    def __init__(self, coeffs: Iterable[Number] = (0.0,)):
        seq = list(coeffs)
        if not seq:
            seq = [0.0]
        object.__setattr__(self, "coeffs", _trim(seq))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Polynomial is immutable")

    def __reduce__(self):
        # The immutable ``__setattr__`` blocks the default slots pickle
        # protocol; durability snapshots round-trip models through here.
        return (Polynomial, (self.coeffs,))

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def zero(cls) -> "Polynomial":
        return _ZERO

    @classmethod
    def constant(cls, value: Number) -> "Polynomial":
        return cls([value])

    @classmethod
    def linear(cls, intercept: Number, slope: Number) -> "Polynomial":
        """The line ``intercept + slope * t``."""
        return cls([intercept, slope])

    @classmethod
    def monomial(cls, degree: int, coefficient: Number = 1.0) -> "Polynomial":
        """``coefficient * t**degree``."""
        if degree < 0:
            raise ValueError("monomial degree must be non-negative")
        return cls([0.0] * degree + [coefficient])

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def degree(self) -> int:
        return len(self.coeffs) - 1

    @property
    def is_zero(self) -> bool:
        return len(self.coeffs) == 1 and self.coeffs[0] == 0.0

    @property
    def is_constant(self) -> bool:
        return len(self.coeffs) == 1

    @property
    def leading_coefficient(self) -> float:
        return self.coeffs[-1]

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def __call__(self, t):
        """Evaluate by Horner's rule.

        Accepts a scalar or anything supporting ``*`` and ``+`` (e.g. a
        numpy array), returning the same shape.
        """
        result = self.coeffs[-1]
        if len(self.coeffs) == 1:
            # Broadcast constants over array arguments.
            try:
                return result + 0.0 * t
            except TypeError:
                return result
        for c in reversed(self.coeffs[:-1]):
            result = result * t + c
        return result

    # ------------------------------------------------------------------
    # ring arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: "Polynomial | Number") -> "Polynomial":
        other = _coerce(other)
        if other is None:
            return NotImplemented
        n = max(len(self.coeffs), len(other.coeffs))
        out = [0.0] * n
        for i, c in enumerate(self.coeffs):
            out[i] += c
        for i, c in enumerate(other.coeffs):
            out[i] += c
        return Polynomial(out)

    __radd__ = __add__

    def __neg__(self) -> "Polynomial":
        return Polynomial([-c for c in self.coeffs])

    def __sub__(self, other: "Polynomial | Number") -> "Polynomial":
        other = _coerce(other)
        if other is None:
            return NotImplemented
        return self + (-other)

    def __rsub__(self, other: "Polynomial | Number") -> "Polynomial":
        other = _coerce(other)
        if other is None:
            return NotImplemented
        return other + (-self)

    def __mul__(self, other: "Polynomial | Number") -> "Polynomial":
        other = _coerce(other)
        if other is None:
            return NotImplemented
        out = [0.0] * (len(self.coeffs) + len(other.coeffs) - 1)
        for i, a in enumerate(self.coeffs):
            if a == 0.0:
                continue
            for j, b in enumerate(other.coeffs):
                out[i + j] += a * b
        return Polynomial(out)

    __rmul__ = __mul__

    def __truediv__(self, scalar: Number) -> "Polynomial":
        if isinstance(scalar, Polynomial):
            raise TypeError("polynomial division is not closed; divide by scalars only")
        return Polynomial([c / scalar for c in self.coeffs])

    def __pow__(self, exponent: int) -> "Polynomial":
        if not isinstance(exponent, int) or exponent < 0:
            raise ValueError("polynomial powers must be non-negative integers")
        result = Polynomial([1.0])
        base = self
        e = exponent
        while e:
            if e & 1:
                result = result * base
            base = base * base
            e >>= 1
        return result

    # ------------------------------------------------------------------
    # calculus
    # ------------------------------------------------------------------
    def derivative(self) -> "Polynomial":
        if len(self.coeffs) == 1:
            return _ZERO
        return Polynomial([i * c for i, c in enumerate(self.coeffs)][1:])

    def antiderivative(self, constant: float = 0.0) -> "Polynomial":
        """The antiderivative with integration constant ``constant``.

        This is Equation (2)'s ``sum c_{i-1}/i * t^i`` form.
        """
        out = [constant]
        out.extend(c / (i + 1) for i, c in enumerate(self.coeffs))
        return Polynomial(out)

    def definite_integral(self, lo: float, hi: float) -> float:
        anti = self.antiderivative()
        return anti(hi) - anti(lo)

    # ------------------------------------------------------------------
    # composition
    # ------------------------------------------------------------------
    def shift(self, delta: float) -> "Polynomial":
        """Return ``q`` with ``q(t) = p(t + delta)``.

        Expanding ``(t + delta)^i`` by the binomial theorem — the same
        expansion the paper uses for ``(t - w)^i`` terms in tail integrals.
        """
        if delta == 0.0:
            return self
        n = len(self.coeffs)
        out = [0.0] * n
        for i, c in enumerate(self.coeffs):
            if c == 0.0:
                continue
            for k in range(i + 1):
                out[k] += c * math.comb(i, k) * delta ** (i - k)
        return Polynomial(out)

    def compose_affine(self, scale: float, offset: float) -> "Polynomial":
        """Return ``q`` with ``q(t) = p(scale * t + offset)``."""
        n = len(self.coeffs)
        out = [0.0] * n
        for i, c in enumerate(self.coeffs):
            if c == 0.0:
                continue
            for k in range(i + 1):
                out[k] += (
                    c * math.comb(i, k) * (scale**k) * offset ** (i - k)
                )
        return Polynomial(out)

    def sliding_window_integral(self, window: float) -> "Polynomial":
        """The window function ``wf(t) = integral_{t-w}^{t} p(tau) dtau``.

        Used by the sum/average aggregate transform for segments whose
        lifespan covers the whole window (Equation (2)): the result is again
        a polynomial in the window-closing timestamp ``t``, preserving
        operator closure.
        """
        anti = self.antiderivative()
        return anti - anti.shift(-window)

    # ------------------------------------------------------------------
    # extrema helpers
    # ------------------------------------------------------------------
    def bound_on(self, lo: float, hi: float) -> float:
        """A cheap upper bound for ``|p(t)|`` on ``[lo, hi]``.

        Sum of coefficient magnitudes times the max power of the endpoint
        magnitudes — loose but sufficient for validation short-circuits.
        """
        m = max(abs(lo), abs(hi), 1.0)
        return sum(abs(c) * m**i for i, c in enumerate(self.coeffs))

    # ------------------------------------------------------------------
    # comparison / repr
    # ------------------------------------------------------------------
    def approx_equal(self, other: "Polynomial", tol: float = 1e-9) -> bool:
        n = max(len(self.coeffs), len(other.coeffs))
        for i in range(n):
            a = self.coeffs[i] if i < len(self.coeffs) else 0.0
            b = other.coeffs[i] if i < len(other.coeffs) else 0.0
            scale = max(abs(a), abs(b), 1.0)
            if abs(a - b) > tol * scale:
                return False
        return True

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polynomial):
            return NotImplemented
        return self.coeffs == other.coeffs

    def __hash__(self) -> int:
        return hash(self.coeffs)

    def __repr__(self) -> str:
        terms = []
        for i, c in enumerate(self.coeffs):
            if c == 0.0 and len(self.coeffs) > 1:
                continue
            if i == 0:
                terms.append(f"{c:g}")
            elif i == 1:
                terms.append(f"{c:g}*t")
            else:
                terms.append(f"{c:g}*t^{i}")
        return f"Polynomial({' + '.join(terms) or '0'})"


def _coerce(value: "Polynomial | Number | object") -> "Polynomial | None":
    if isinstance(value, Polynomial):
        return value
    if isinstance(value, (int, float)):
        return Polynomial([value])
    return None


_ZERO = Polynomial([0.0])
