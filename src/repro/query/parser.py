"""Recursive-descent parser for the StreamSQL-style dialect.

Grammar (informally)::

    select   := SELECT items FROM from [WHERE pred] [GROUP BY names]
                [HAVING pred] [ERROR WITHIN num (% | ABSOLUTE)]
                [SAMPLE PERIOD num]
    items    := '*' | item (',' item)*           item := expr [AS name]
    from     := unit (JOIN unit ON pred)*
    unit     := [STREAM] name models? window? (AS name)? window?
              | '(' select ')' window? (AS name)? window?
    models   := (MODEL qualified '=' expr)+ (',' separated also accepted)
    window   := '[' SIZE num ADVANCE num ']'
    pred     := or; or := and (OR and)*; and := unary (AND unary)*
    unary    := NOT unary | comparison | '(' pred ')'
    expr     := additive with * / ^ precedence; primaries are numbers,
                strings, (qualified) names, function calls, parens.

Functions: ``sqrt``, ``abs``, ``pow``, and the paper's ``distance(x1, y1,
x2, y2)`` (expanded to the Euclidean form); ``min/max/sum/avg/count``
parse to :class:`AggregateCall` for the planner.
"""

from __future__ import annotations

from ..core.errors import QuerySyntaxError
from ..core.expr import Abs, Add, Attr, Const, Div, Expr, Mul, Neg, Pow, Sqrt, Sub
from ..core.predicate import And, BoolExpr, Comparison, Not, Or
from ..core.relation import Rel
from .ast_nodes import (
    AggregateCall,
    ErrorSpec,
    FromItem,
    JoinClause,
    ModelClause,
    SampleSpec,
    SelectItem,
    SelectStmt,
    StreamRef,
    SubQuery,
    Window,
)
from .lexer import Token, tokenize

_AGGREGATE_FUNCS = frozenset({"min", "max", "sum", "avg", "count"})
_RELOPS = frozenset({"<", "<=", "=", "==", "<>", "!=", ">=", ">"})


def parse_query(source: str) -> SelectStmt:
    """Parse one SELECT statement; raises :class:`QuerySyntaxError`."""
    parser = _Parser(tokenize(source))
    stmt = parser.select_stmt()
    parser.expect_eof()
    return stmt


def parse_expression(source: str) -> Expr:
    """Parse a standalone scalar expression (used for MODEL strings)."""
    parser = _Parser(tokenize(source))
    expr = parser.expr()
    parser.expect_eof()
    return expr


def parse_predicate(source: str) -> BoolExpr:
    """Parse a standalone predicate."""
    parser = _Parser(tokenize(source))
    pred = parser.predicate()
    parser.expect_eof()
    return pred


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # ------------------------------------------------------------------
    # token helpers
    # ------------------------------------------------------------------
    @property
    def _cur(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        tok = self._cur
        if tok.kind != "EOF":
            self._pos += 1
        return tok

    def _error(self, message: str) -> QuerySyntaxError:
        tok = self._cur
        return QuerySyntaxError(
            f"{message}, found {tok.text or 'end of input'!r}",
            tok.line,
            tok.column,
        )

    def _accept_keyword(self, word: str) -> bool:
        if self._cur.is_keyword(word):
            self._advance()
            return True
        return False

    def _expect_keyword(self, word: str) -> None:
        if not self._accept_keyword(word):
            raise self._error(f"expected {word.upper()}")

    def _accept_punct(self, text: str) -> bool:
        if self._cur.kind == "PUNCT" and self._cur.text == text:
            self._advance()
            return True
        return False

    def _expect_punct(self, text: str) -> None:
        if not self._accept_punct(text):
            raise self._error(f"expected {text!r}")

    def _accept_op(self, text: str) -> bool:
        if self._cur.kind == "OP" and self._cur.text == text:
            self._advance()
            return True
        return False

    def _ident(self) -> str:
        if self._cur.kind != "IDENT":
            raise self._error("expected identifier")
        return self._advance().text

    def _number(self) -> float:
        if self._cur.kind != "NUMBER":
            raise self._error("expected number")
        return float(self._advance().text)

    def expect_eof(self) -> None:
        if self._cur.kind != "EOF":
            raise self._error("unexpected trailing input")

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def select_stmt(self) -> SelectStmt:
        self._expect_keyword("select")
        items = self._select_items()
        self._expect_keyword("from")
        source = self._from_clause()
        where = self.predicate() if self._accept_keyword("where") else None
        group_by: tuple[str, ...] = ()
        if self._accept_keyword("group"):
            self._expect_keyword("by")
            group_by = tuple(self._name_list())
        having = self.predicate() if self._accept_keyword("having") else None
        error_spec = self._error_spec()
        sample_spec = self._sample_spec()
        return SelectStmt(
            items=tuple(items),
            source=source,
            where=where,
            group_by=group_by,
            having=having,
            error_spec=error_spec,
            sample_spec=sample_spec,
        )

    def _select_items(self) -> list[SelectItem]:
        if self._accept_op("*"):
            return [SelectItem(None)]
        # The intro's collision query writes a bare "select from ...":
        # treat an immediate FROM as "select *".
        if self._cur.is_keyword("from"):
            return [SelectItem(None)]
        items = [self._select_item()]
        while self._accept_punct(","):
            items.append(self._select_item())
        return items

    def _select_item(self) -> SelectItem:
        expr = self.expr()
        alias = None
        if self._accept_keyword("as"):
            alias = self._ident()
        elif self._cur.kind == "IDENT" and not self._peek_is_clause_boundary():
            # Implicit alias ("expr name") is not supported; identifiers
            # here are a syntax error surfaced at the next expect.
            pass
        return SelectItem(expr, alias)

    def _peek_is_clause_boundary(self) -> bool:
        return self._cur.kind in ("KEYWORD", "EOF", "PUNCT")

    def _name_list(self) -> list[str]:
        names = [self._qualified_name()]
        while self._accept_punct(","):
            names.append(self._qualified_name())
        return names

    def _qualified_name(self) -> str:
        name = self._ident()
        if self._accept_punct("."):
            name = f"{name}.{self._ident()}"
        return name

    # ------------------------------------------------------------------
    # FROM clause
    # ------------------------------------------------------------------
    def _from_clause(self) -> FromItem:
        left = self._from_unit()
        while self._accept_keyword("join"):
            right = self._from_unit()
            self._expect_keyword("on")
            pred = self.predicate()
            left = JoinClause(left, right, pred)
        return left

    def _from_unit(self) -> FromItem:
        if self._accept_punct("("):
            query = self.select_stmt()
            self._expect_punct(")")
            window = self._window()
            alias = self._alias()
            if window is None:
                window = self._window()
            return SubQuery(query, alias=alias, window=window)
        self._accept_keyword("stream")
        name = self._ident()
        models = self._model_clauses()
        window = self._window()
        alias = self._alias()
        if window is None:
            window = self._window()
        return StreamRef(name, alias=alias, window=window, models=tuple(models))

    def _alias(self) -> str | None:
        """``AS name`` or SQL's implicit alias (``objects R``)."""
        if self._accept_keyword("as"):
            return self._ident()
        if self._cur.kind == "IDENT":
            return self._advance().text
        return None

    def _model_clauses(self) -> list[ModelClause]:
        clauses: list[ModelClause] = []
        while self._cur.is_keyword("model"):
            self._advance()
            attr = self._qualified_name()
            if not self._accept_op("="):
                raise self._error("expected '=' in MODEL clause")
            clauses.append(ModelClause(attr, self.expr()))
            self._accept_punct(",")  # optional separator between clauses
        return clauses

    def _window(self) -> Window | None:
        if not self._accept_punct("["):
            return None
        self._expect_keyword("size")
        size = self._number()
        self._expect_keyword("advance")
        advance = self._number()
        self._expect_punct("]")
        return Window(size, advance)

    # ------------------------------------------------------------------
    # trailing specs
    # ------------------------------------------------------------------
    def _error_spec(self) -> ErrorSpec | None:
        if not self._accept_keyword("error"):
            return None
        self._expect_keyword("within")
        bound = self._number()
        if self._accept_op("%"):
            return ErrorSpec(bound / 100.0, relative=True)
        if self._accept_keyword("absolute"):
            return ErrorSpec(bound, relative=False)
        # Default: percentage (matches the paper's "1% error threshold").
        return ErrorSpec(bound / 100.0, relative=True)

    def _sample_spec(self) -> SampleSpec | None:
        if not self._accept_keyword("sample"):
            return None
        self._expect_keyword("period")
        return SampleSpec(self._number())

    # ------------------------------------------------------------------
    # predicates
    # ------------------------------------------------------------------
    def predicate(self) -> BoolExpr:
        return self._or_pred()

    def _or_pred(self) -> BoolExpr:
        left = self._and_pred()
        while self._accept_keyword("or"):
            left = Or(left, self._and_pred())
        return left

    def _and_pred(self) -> BoolExpr:
        left = self._unary_pred()
        while self._accept_keyword("and"):
            left = And(left, self._unary_pred())
        return left

    def _unary_pred(self) -> BoolExpr:
        if self._accept_keyword("not"):
            return Not(self._unary_pred())
        if self._cur.kind == "PUNCT" and self._cur.text == "(":
            # Ambiguous: parenthesized predicate or parenthesized
            # arithmetic LHS.  Try the predicate reading, backtrack on
            # failure or if an operator continues an arithmetic expression.
            snapshot = self._pos
            try:
                self._advance()
                inner = self.predicate()
                self._expect_punct(")")
                if self._cur.kind == "OP":
                    raise QuerySyntaxError("arithmetic continues", 0, 0)
                return inner
            except QuerySyntaxError:
                self._pos = snapshot
        return self._comparison()

    def _comparison(self) -> BoolExpr:
        left = self.expr()
        if self._cur.kind != "OP" or self._cur.text not in _RELOPS:
            raise self._error("expected comparison operator")
        rel = Rel.from_symbol(self._advance().text)
        right = self.expr()
        return Comparison(left, rel, right)

    # ------------------------------------------------------------------
    # scalar expressions
    # ------------------------------------------------------------------
    def expr(self) -> Expr:
        return self._additive()

    def _additive(self) -> Expr:
        left = self._multiplicative()
        while True:
            if self._accept_op("+"):
                left = Add(left, self._multiplicative())
            elif self._accept_op("-"):
                left = Sub(left, self._multiplicative())
            else:
                return left

    def _multiplicative(self) -> Expr:
        left = self._unary_expr()
        while True:
            if self._accept_op("*"):
                left = Mul(left, self._unary_expr())
            elif self._accept_op("/"):
                left = Div(left, self._unary_expr())
            else:
                return left

    def _unary_expr(self) -> Expr:
        if self._accept_op("-"):
            return Neg(self._unary_expr())
        if self._accept_op("+"):
            return self._unary_expr()
        return self._power()

    def _power(self) -> Expr:
        base = self._primary()
        if self._accept_op("^"):
            if self._cur.kind != "NUMBER":
                raise self._error("expected integer exponent after '^'")
            exponent = self._number()
            if exponent != int(exponent):
                raise self._error("exponent must be an integer")
            return Pow(base, int(exponent))
        return base

    def _primary(self) -> Expr:
        tok = self._cur
        if tok.kind == "NUMBER":
            return Const(self._number())
        if tok.kind == "STRING":
            self._advance()
            return _StringConst(tok.text)
        if tok.kind == "PUNCT" and tok.text == "(":
            self._advance()
            inner = self.expr()
            self._expect_punct(")")
            return inner
        if tok.kind == "IDENT" or tok.kind == "KEYWORD" and tok.text in _AGGREGATE_FUNCS:
            name = self._advance().text
            if self._cur.kind == "PUNCT" and self._cur.text == "(":
                return self._function_call(name)
            if self._accept_punct("."):
                return Attr(f"{name}.{self._ident()}")
            return Attr(name)
        raise self._error("expected expression")

    def _function_call(self, name: str) -> Expr:
        self._expect_punct("(")
        args: list[Expr] = []
        if not self._accept_punct(")"):
            args.append(self.expr())
            while self._accept_punct(","):
                args.append(self.expr())
            self._expect_punct(")")
        return self._build_function(name, args)

    def _build_function(self, name: str, args: list[Expr]) -> Expr:
        def arity(n: int) -> None:
            if len(args) != n:
                raise self._error(f"{name}() takes {n} argument(s)")

        if name in _AGGREGATE_FUNCS:
            arity(1)
            return AggregateCall(name, args[0])
        if name == "sqrt":
            arity(1)
            return Sqrt(args[0])
        if name == "abs":
            arity(1)
            return Abs(args[0])
        if name == "pow":
            arity(2)
            exponent = args[1]
            if not isinstance(exponent, Const) or exponent.value != int(exponent.value):
                raise self._error("pow() requires a literal integer exponent")
            return Pow(args[0], int(exponent.value))
        if name == "distance":
            arity(4)
            x1, y1, x2, y2 = args
            return Sqrt(Add(Pow(Sub(x1, x2), 2), Pow(Sub(y1, y2), 2)))
        raise self._error(f"unknown function {name!r}")


class _StringConst(Const):
    """A string literal; inherits Const so discrete comparison works."""

    def __init__(self, value: str):
        object.__setattr__(self, "value", value)

    def __repr__(self) -> str:
        return f"'{self.value}'"
