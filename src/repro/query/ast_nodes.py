"""Abstract syntax tree for the StreamSQL-style dialect.

The AST mirrors the surface syntax; semantic analysis (resolving
aggregates, group keys, model clauses) happens in the planner.
Expressions reuse :mod:`repro.core.expr` / :mod:`repro.core.predicate`
directly so the same trees flow into both processing paths, with one
query-level addition: :class:`AggregateCall`, which only appears in
select lists and ``HAVING`` clauses and is resolved away during planning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from ..core.expr import Expr
from ..core.predicate import BoolExpr


@dataclass(frozen=True)
class AggregateCall(Expr):
    """``func(expr)`` in a select list or HAVING clause.

    Not a scalar expression — evaluating or compiling it directly is an
    error; the planner replaces it with a reference to the aggregate
    operator's output attribute.
    """

    func: str
    argument: Expr

    def attributes(self) -> frozenset[str]:
        return self.argument.attributes()

    def evaluate(self, env):
        raise TypeError(
            f"aggregate {self.func}() must be resolved by the planner "
            "before evaluation"
        )

    def to_polynomial(self, resolve):
        raise TypeError(
            f"aggregate {self.func}() must be resolved by the planner "
            "before compilation"
        )

    def __repr__(self) -> str:
        return f"{self.func}({self.argument!r})"


@dataclass(frozen=True)
class Window:
    """``[SIZE n ADVANCE m]``."""

    size: float
    advance: float


@dataclass(frozen=True)
class ModelClause:
    """``MODEL attr = expr`` — a declarative model specification.

    ``expr`` is a polynomial in the stream's coefficient attributes and
    the reserved time variable ``t`` (Figure 1's
    ``MODEL A.x = A.x + A.v*t``).
    """

    attr: str
    expr: Expr


@dataclass(frozen=True)
class SelectItem:
    """One select-list column ``expr [AS alias]``; ``*`` has expr=None."""

    expr: Optional[Expr]
    alias: Optional[str] = None

    @property
    def is_star(self) -> bool:
        return self.expr is None


class FromItem:
    """Base class for FROM-clause items."""


@dataclass(frozen=True)
class StreamRef(FromItem):
    """``stream_name [MODEL ...] [[SIZE..ADVANCE..]] [AS alias]``."""

    name: str
    alias: Optional[str] = None
    window: Optional[Window] = None
    models: tuple[ModelClause, ...] = ()

    @property
    def binding_name(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class SubQuery(FromItem):
    """``(select ...) [[SIZE..ADVANCE..]] [AS alias]``."""

    query: "SelectStmt"
    alias: Optional[str] = None
    window: Optional[Window] = None

    @property
    def binding_name(self) -> str:
        if self.alias is None:
            raise ValueError("subquery requires an alias")
        return self.alias


@dataclass(frozen=True)
class JoinClause(FromItem):
    """``left JOIN right ON (predicate)``."""

    left: FromItem
    right: FromItem
    on: BoolExpr


@dataclass(frozen=True)
class ErrorSpec:
    """``ERROR WITHIN x%`` (relative) or ``ERROR WITHIN x ABSOLUTE``."""

    bound: float
    relative: bool = True


@dataclass(frozen=True)
class SampleSpec:
    """``SAMPLE PERIOD p`` — the output sampling rate (Section III-C)."""

    period: float


@dataclass(frozen=True)
class SelectStmt:
    """A full SELECT statement."""

    items: tuple[SelectItem, ...]
    source: FromItem
    where: Optional[BoolExpr] = None
    group_by: tuple[str, ...] = ()
    having: Optional[BoolExpr] = None
    error_spec: Optional[ErrorSpec] = None
    sample_spec: Optional[SampleSpec] = None

    def aggregates(self) -> list[tuple[AggregateCall, Optional[str]]]:
        """Aggregate calls in the select list with their aliases."""
        out = []
        for item in self.items:
            if isinstance(item.expr, AggregateCall):
                out.append((item.expr, item.alias))
        return out
