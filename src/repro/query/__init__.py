"""StreamSQL-style query language: lexer, parser, planner."""

from .ast_nodes import (
    AggregateCall,
    ErrorSpec,
    JoinClause,
    ModelClause,
    SampleSpec,
    SelectItem,
    SelectStmt,
    StreamRef,
    SubQuery,
    Window,
)
from .logical import (
    LogicalAggregate,
    LogicalFilter,
    LogicalJoin,
    LogicalNode,
    LogicalProject,
    LogicalScan,
    explain,
)
from .parser import parse_expression, parse_predicate, parse_query
from .planner import PlannedQuery, plan_query

__all__ = [
    "AggregateCall",
    "ErrorSpec",
    "JoinClause",
    "LogicalAggregate",
    "LogicalFilter",
    "LogicalJoin",
    "LogicalNode",
    "LogicalProject",
    "LogicalScan",
    "ModelClause",
    "PlannedQuery",
    "SampleSpec",
    "SelectItem",
    "SelectStmt",
    "StreamRef",
    "SubQuery",
    "Window",
    "explain",
    "parse_expression",
    "parse_predicate",
    "parse_query",
    "plan_query",
]
