"""Lexer for the StreamSQL-style query language.

Tokenizes the dialect used throughout the paper: standard SQL keywords
plus stream extensions — ``[SIZE n ADVANCE m]`` windows, the ``MODEL``
clause for declarative model specification (Section II-B), and the
accuracy/sampling specifications Pulse adds to the query language
(``ERROR WITHIN x%``, ``SAMPLE PERIOD p``).

Keywords and identifiers are case-insensitive (the paper itself mixes
``S.Symbol`` and ``symbol``); identifiers are normalized to lower case.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import QuerySyntaxError

KEYWORDS = frozenset(
    {
        "select",
        "from",
        "join",
        "on",
        "where",
        "group",
        "by",
        "having",
        "as",
        "and",
        "or",
        "not",
        "model",
        "size",
        "advance",
        "stream",
        "error",
        "within",
        "absolute",
        "sample",
        "period",
    }
)

#: Multi-character operators, longest first so the scanner is greedy.
_OPERATORS = ("<=", ">=", "<>", "!=", "==", "<", ">", "=", "+", "-", "*", "/", "^", "%")

_PUNCT = "()[],."


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based)."""

    kind: str  # KEYWORD, IDENT, NUMBER, STRING, OP, PUNCT, EOF
    text: str
    line: int
    column: int

    def is_keyword(self, word: str) -> bool:
        return self.kind == "KEYWORD" and self.text == word

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r})"


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source``; raises :class:`QuerySyntaxError` on bad input."""
    tokens: list[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def advance(count: int) -> None:
        nonlocal i, line, col
        for _ in range(count):
            if i < n and source[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        ch = source[i]
        if ch.isspace():
            advance(1)
            continue
        if source.startswith("--", i):
            while i < n and source[i] != "\n":
                advance(1)
            continue
        start_line, start_col = line, col
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (source[j].isdigit() or (source[j] == "." and not seen_dot)):
                if source[j] == ".":
                    # A dot not followed by a digit is a qualifier, not a
                    # decimal point (e.g. the range "10." never appears).
                    if j + 1 >= n or not source[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            # Scientific notation.
            if j < n and source[j] in "eE":
                k = j + 1
                if k < n and source[k] in "+-":
                    k += 1
                if k < n and source[k].isdigit():
                    while k < n and source[k].isdigit():
                        k += 1
                    j = k
            text = source[i:j]
            tokens.append(Token("NUMBER", text, start_line, start_col))
            advance(j - i)
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            word = source[i:j].lower()
            kind = "KEYWORD" if word in KEYWORDS else "IDENT"
            tokens.append(Token(kind, word, start_line, start_col))
            advance(j - i)
            continue
        if ch in ("'", '"'):
            j = i + 1
            while j < n and source[j] != ch:
                j += 1
            if j >= n:
                raise QuerySyntaxError("unterminated string literal", start_line, start_col)
            tokens.append(Token("STRING", source[i + 1 : j], start_line, start_col))
            advance(j - i + 1)
            continue
        matched = False
        for op in _OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("OP", op, start_line, start_col))
                advance(len(op))
                matched = True
                break
        if matched:
            continue
        if ch in _PUNCT:
            tokens.append(Token("PUNCT", ch, start_line, start_col))
            advance(1)
            continue
        raise QuerySyntaxError(f"unexpected character {ch!r}", start_line, start_col)

    tokens.append(Token("EOF", "", line, col))
    return tokens
