"""Logical query plans: the engine-neutral middle layer.

The planner turns the AST into this small relational algebra; the two
lowering passes (:mod:`repro.core.transform` for the continuous path,
:mod:`repro.engine.lowering` for the discrete baseline) share it, which
is what makes the paper's "operator-by-operator transformation" concrete:
each logical node maps to exactly one physical operator on either side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..core.expr import Expr
from ..core.operators.map_op import Projection
from ..core.predicate import BoolExpr
from .ast_nodes import ModelClause, Window


class LogicalNode:
    """Base class for logical plan nodes."""

    def children(self) -> tuple["LogicalNode", ...]:
        raise NotImplementedError

    def walk(self):
        """Pre-order traversal."""
        yield self
        for child in self.children():
            yield from child.walk()


@dataclass(frozen=True)
class LogicalScan(LogicalNode):
    """A base stream reference.

    ``source_id`` disambiguates multiple scans of the same stream (the
    AIS query scans ``vessels`` twice).
    """

    stream: str
    alias: Optional[str]
    window: Optional[Window]
    models: tuple[ModelClause, ...] = ()
    source_id: int = 0

    def children(self) -> tuple[LogicalNode, ...]:
        return ()

    @property
    def binding_name(self) -> str:
        return self.alias or self.stream

    @property
    def source_name(self) -> str:
        return f"{self.stream}#{self.source_id}"


@dataclass(frozen=True)
class LogicalFilter(LogicalNode):
    child: LogicalNode
    predicate: BoolExpr

    def children(self) -> tuple[LogicalNode, ...]:
        return (self.child,)


@dataclass(frozen=True)
class LogicalProject(LogicalNode):
    child: LogicalNode
    projections: tuple[Projection, ...]

    def children(self) -> tuple[LogicalNode, ...]:
        return (self.child,)


@dataclass(frozen=True)
class LogicalJoin(LogicalNode):
    left: LogicalNode
    right: LogicalNode
    predicate: BoolExpr
    left_alias: str
    right_alias: str
    window: float

    def children(self) -> tuple[LogicalNode, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class LogicalAggregate(LogicalNode):
    """One windowed aggregate with hash group-by.

    ``group_fields`` name discrete attributes of the child's output;
    grouping falls back to the stream key when empty.
    """

    child: LogicalNode
    func: str
    attr: str
    window: float
    slide: float
    output_attr: str
    group_fields: tuple[str, ...] = ()

    def children(self) -> tuple[LogicalNode, ...]:
        return (self.child,)


def explain(node: LogicalNode, indent: int = 0) -> str:
    """A readable multi-line rendering of a logical plan."""
    pad = "  " * indent
    if isinstance(node, LogicalScan):
        win = (
            f" [size {node.window.size} advance {node.window.advance}]"
            if node.window
            else ""
        )
        line = f"{pad}Scan({node.stream} as {node.binding_name}{win})"
        lines = [line]
    elif isinstance(node, LogicalFilter):
        lines = [f"{pad}Filter({node.predicate!r})"]
    elif isinstance(node, LogicalProject):
        cols = ", ".join(p.name for p in node.projections)
        lines = [f"{pad}Project({cols})"]
    elif isinstance(node, LogicalJoin):
        lines = [
            f"{pad}Join({node.left_alias} ⋈ {node.right_alias} "
            f"on {node.predicate!r}, window={node.window})"
        ]
    elif isinstance(node, LogicalAggregate):
        group = f" group by {node.group_fields}" if node.group_fields else ""
        lines = [
            f"{pad}Aggregate({node.func}({node.attr}) as {node.output_attr}, "
            f"window={node.window}/{node.slide}{group})"
        ]
    else:
        lines = [f"{pad}{type(node).__name__}"]
    for child in node.children():
        lines.append(explain(child, indent + 1))
    return "\n".join(lines)
