"""Planner: AST to logical plan.

Responsibilities, mirroring Section III-C's query transform pipeline:

* resolve FROM items (scans, subqueries, joins) into logical subtrees,
  numbering repeated scans of the same stream;
* place WHERE filters before aggregation and HAVING filters after;
* turn aggregate calls in the select list into
  :class:`LogicalAggregate` nodes, inferring the window from the FROM
  item's ``[SIZE n ADVANCE m]`` and the group keys from ``GROUP BY``
  plus any plain attributes in the select list (the paper's subqueries
  rely on this implicit grouping: ``select symbol, avg(price) ...``);
* rewrite aggregate references in HAVING and the select list to the
  aggregates' output attributes;
* add a final projection unless it would be the identity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core.errors import PlanError
from ..core.expr import Attr, Expr
from ..core.operators.map_op import Projection
from ..core.predicate import BoolExpr, Comparison, And, Not, Or
from .ast_nodes import (
    AggregateCall,
    ErrorSpec,
    FromItem,
    JoinClause,
    SampleSpec,
    SelectStmt,
    StreamRef,
    SubQuery,
    Window,
)
from .logical import (
    LogicalAggregate,
    LogicalFilter,
    LogicalJoin,
    LogicalNode,
    LogicalProject,
    LogicalScan,
)

#: Join state-retention window used when neither input carries a window
#: specification (seconds).  Kept below typical aggregate slides so joins
#: over aggregate outputs pair equal window-closes only.
DEFAULT_JOIN_WINDOW = 0.5


@dataclass
class PlannedQuery:
    """A logical plan plus the query-level execution specifications."""

    root: LogicalNode
    error_spec: Optional[ErrorSpec]
    sample_spec: Optional[SampleSpec]
    #: ``stream -> [source_name, ...]`` for wiring inputs to scans.
    stream_sources: dict[str, list[str]] = field(default_factory=dict)

    def scans(self) -> list[LogicalScan]:
        return [n for n in self.root.walk() if isinstance(n, LogicalScan)]


def plan_query(stmt: SelectStmt) -> PlannedQuery:
    """Plan a parsed SELECT statement."""
    planner = _Planner()
    root = planner.plan_select(stmt)
    sources: dict[str, list[str]] = {}
    for scan in [n for n in root.walk() if isinstance(n, LogicalScan)]:
        sources.setdefault(scan.stream, []).append(scan.source_name)
    return PlannedQuery(
        root=root,
        error_spec=stmt.error_spec,
        sample_spec=stmt.sample_spec,
        stream_sources=sources,
    )


@dataclass
class _FromResult:
    node: LogicalNode
    #: Window of the FROM item, if any (drives aggregate windows).
    window: Optional[Window]
    binding_name: Optional[str]


class _Planner:
    def __init__(self):
        self._scan_counter = 0

    # ------------------------------------------------------------------
    def plan_select(self, stmt: SelectStmt) -> LogicalNode:
        source = self._plan_from(stmt.source)
        node = source.node

        aggregates = self._collect_aggregates(stmt)
        if stmt.where is not None:
            if _contains_aggregate_pred(stmt.where):
                raise PlanError("aggregates are not allowed in WHERE")
            if aggregates:
                # Pre-aggregation filter.
                node = LogicalFilter(node, stmt.where)

        agg_outputs: dict[tuple[str, Expr], str] = {}
        if aggregates:
            group_fields = self._group_fields(stmt)
            for call, alias in aggregates:
                node, output_attr = self._plan_aggregate(
                    node, call, alias, source.window, group_fields
                )
                agg_outputs[(call.func, call.argument)] = output_attr

        if stmt.having is not None:
            if not aggregates:
                raise PlanError("HAVING requires aggregation")
            node = LogicalFilter(
                node, _rewrite_aggregates_pred(stmt.having, agg_outputs)
            )

        if stmt.where is not None and not aggregates:
            node = LogicalFilter(node, stmt.where)

        projections = self._projections(stmt, agg_outputs)
        if projections is not None:
            node = LogicalProject(node, tuple(projections))
        return node

    # ------------------------------------------------------------------
    # FROM
    # ------------------------------------------------------------------
    def _plan_from(self, item: FromItem) -> _FromResult:
        if isinstance(item, StreamRef):
            self._scan_counter += 1
            scan = LogicalScan(
                stream=item.name,
                alias=item.alias,
                window=item.window,
                models=item.models,
                source_id=self._scan_counter,
            )
            return _FromResult(scan, item.window, scan.binding_name)
        if isinstance(item, SubQuery):
            inner = self.plan_select(item.query)
            return _FromResult(inner, item.window, item.alias)
        if isinstance(item, JoinClause):
            left = self._plan_from(item.left)
            right = self._plan_from(item.right)
            window = DEFAULT_JOIN_WINDOW
            for side in (left, right):
                if side.window is not None:
                    window = max(
                        window if window != DEFAULT_JOIN_WINDOW else 0.0,
                        side.window.size,
                    )
            join = LogicalJoin(
                left=left.node,
                right=right.node,
                predicate=item.on,
                left_alias=left.binding_name or "l",
                right_alias=right.binding_name or "r",
                window=window,
            )
            return _FromResult(join, None, None)
        raise PlanError(f"unknown FROM item {item!r}")

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------
    def _collect_aggregates(self, stmt: SelectStmt):
        aggregates = list(stmt.aggregates())
        # HAVING may reference aggregates not in the select list.
        if stmt.having is not None:
            known = {(c.func, c.argument) for c, _ in aggregates}
            for call in _aggregate_calls_in_pred(stmt.having):
                if (call.func, call.argument) not in known:
                    aggregates.append((call, None))
                    known.add((call.func, call.argument))
        return aggregates

    def _group_fields(self, stmt: SelectStmt) -> tuple[str, ...]:
        fields = list(stmt.group_by)
        for item in stmt.items:
            if isinstance(item.expr, Attr):
                name = item.alias or item.expr.name
                if name not in fields:
                    fields.append(item.expr.name)
        return tuple(fields)

    def _plan_aggregate(
        self,
        node: LogicalNode,
        call: AggregateCall,
        alias: Optional[str],
        window: Optional[Window],
        group_fields: tuple[str, ...],
    ) -> tuple[LogicalNode, str]:
        if window is None:
            raise PlanError(
                f"aggregate {call.func}() requires a windowed input "
                "([SIZE n ADVANCE m])"
            )
        if isinstance(call.argument, Attr):
            attr = call.argument.name
        else:
            # Materialize the argument expression first.
            attr = f"__agg_arg_{call.func}"
            node = LogicalProject(
                node,
                (Projection(attr, call.argument),)
                + tuple(Projection(g, Attr(g)) for g in group_fields),
            )
        output_attr = alias or f"{call.func}_{attr.split('.')[-1]}"
        agg = LogicalAggregate(
            child=node,
            func=call.func,
            attr=attr,
            window=window.size,
            slide=window.advance,
            output_attr=output_attr,
            group_fields=group_fields,
        )
        return agg, output_attr

    # ------------------------------------------------------------------
    # projection
    # ------------------------------------------------------------------
    def _projections(
        self, stmt: SelectStmt, agg_outputs: dict
    ) -> list[Projection] | None:
        if len(stmt.items) == 1 and stmt.items[0].is_star:
            return None
        projections: list[Projection] = []
        identity = True
        for item in stmt.items:
            expr = _rewrite_aggregates_expr(item.expr, agg_outputs)
            if isinstance(expr, Attr):
                name = item.alias or expr.name.split(".")[-1]
                if name != expr.name:
                    identity = False
            else:
                name = item.alias or f"col{len(projections)}"
                identity = False
            projections.append(Projection(name, expr))
        if identity and not agg_outputs:
            # Pure attribute list without renames: keep, it still narrows
            # the schema; only skip a literal star.
            pass
        return projections


# ----------------------------------------------------------------------
# aggregate-reference rewriting
# ----------------------------------------------------------------------
def _aggregate_calls_in_pred(pred: BoolExpr):
    for atom in pred.atoms():
        for side in (atom.left, atom.right):
            yield from _aggregate_calls_in_expr(side)


def _aggregate_calls_in_expr(expr: Expr):
    if isinstance(expr, AggregateCall):
        yield expr
        return
    for attr in ("left", "right", "operand", "base", "argument"):
        child = getattr(expr, attr, None)
        if isinstance(child, Expr):
            yield from _aggregate_calls_in_expr(child)


def _contains_aggregate_pred(pred: BoolExpr) -> bool:
    return any(True for _ in _aggregate_calls_in_pred(pred))


def _rewrite_aggregates_expr(expr: Expr, agg_outputs: dict) -> Expr:
    if isinstance(expr, AggregateCall):
        key = (expr.func, expr.argument)
        if key not in agg_outputs:
            raise PlanError(f"unplanned aggregate {expr!r}")
        return Attr(agg_outputs[key])
    # Rebuild binary/unary nodes with rewritten children.
    from ..core.expr import Add, Div, Mul, Neg, Pow, Sub, Sqrt, Abs

    if isinstance(expr, (Add, Sub, Mul, Div)):
        return type(expr)(
            _rewrite_aggregates_expr(expr.left, agg_outputs),
            _rewrite_aggregates_expr(expr.right, agg_outputs),
        )
    if isinstance(expr, Neg):
        return Neg(_rewrite_aggregates_expr(expr.operand, agg_outputs))
    if isinstance(expr, (Sqrt, Abs)):
        return type(expr)(_rewrite_aggregates_expr(expr.operand, agg_outputs))
    if isinstance(expr, Pow):
        return Pow(_rewrite_aggregates_expr(expr.base, agg_outputs), expr.exponent)
    return expr


def _rewrite_aggregates_pred(pred: BoolExpr, agg_outputs: dict) -> BoolExpr:
    if isinstance(pred, Comparison):
        return Comparison(
            _rewrite_aggregates_expr(pred.left, agg_outputs),
            pred.rel,
            _rewrite_aggregates_expr(pred.right, agg_outputs),
        )
    if isinstance(pred, And):
        return And(*[_rewrite_aggregates_pred(c, agg_outputs) for c in pred.children])
    if isinstance(pred, Or):
        return Or(*[_rewrite_aggregates_pred(c, agg_outputs) for c in pred.children])
    if isinstance(pred, Not):
        return Not(_rewrite_aggregates_pred(pred.child, agg_outputs))
    return pred
