"""repro: a reproduction of "Simultaneous Equation Systems for Query
Processing on Continuous-Time Data Streams" (Pulse, ICDE 2008).

Public API tour:

* :mod:`repro.core` — segments, polynomials, equation systems, the
  continuous operators and query transform, validation, and the
  predictive/historical processing modes.
* :mod:`repro.engine` — the discrete (tuple-at-a-time) baseline engine.
* :mod:`repro.query` — the StreamSQL-style language (MODEL clauses,
  windows, error bounds) with parser and planner.
* :mod:`repro.fitting` — regression and online time-series segmentation.
* :mod:`repro.workloads` — synthetic moving-object / NYSE / AIS feeds.
* :mod:`repro.bench` — the experiment harness behind ``benchmarks/``.

Quickstart::

    from repro import parse_query, plan_query, to_continuous_plan
    planned = plan_query(parse_query("select * from s where x > 0"))
    query = to_continuous_plan(planned)
    outputs = query.push("s#1", segment)
"""

from .core import (
    EquationSystem,
    HistoricalProcessor,
    Polynomial,
    PredictiveProcessor,
    Segment,
    TimeSet,
    to_continuous_plan,
)
from .core.validation import ErrorBound, QueryValidator
from .engine.lowering import to_discrete_plan
from .query import parse_query, plan_query

__version__ = "1.0.0"

__all__ = [
    "EquationSystem",
    "ErrorBound",
    "HistoricalProcessor",
    "Polynomial",
    "PredictiveProcessor",
    "QueryValidator",
    "Segment",
    "TimeSet",
    "__version__",
    "parse_query",
    "plan_query",
    "to_continuous_plan",
    "to_discrete_plan",
]
