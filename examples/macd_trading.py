"""The MACD trading query on a trade feed — Fig. 9i's workload.

Runs the paper's moving-average convergence/divergence query over a
synthetic NYSE-like trade stream three ways:

1. the discrete baseline engine, tuple by tuple;
2. Pulse historical mode: fit price models once, process segments;
3. validated execution: how many raw tuples the inverted 1% error
   bound lets Pulse drop without any query work.

Run:  python examples/macd_trading.py
"""

from repro import ErrorBound, QueryValidator, to_continuous_plan, to_discrete_plan
from repro.bench.queries import macd_planned
from repro.core.validation import collect_dependencies
from repro.fitting import build_segments
from repro.workloads import NyseConfig, NyseTradeGenerator


def main() -> None:
    gen = NyseTradeGenerator(
        NyseConfig(num_symbols=3, rate=200.0, volatility=5e-5,
                   drift_period=15.0, seed=7)
    )
    tuples = list(gen.tuples(8000))  # 40 seconds of trades
    planned = macd_planned(short=4.0, long=12.0, slide=1.0)
    print(f"replaying {len(tuples)} trades across {gen.symbols[:3]}")

    # ------------------------------------------------------------------
    # 1. Discrete baseline.
    # ------------------------------------------------------------------
    discrete = to_discrete_plan(planned)
    signals = []
    for tup in tuples:
        signals.extend(discrete.push("trades", tup))
    signals.extend(discrete.flush())
    print(f"\ndiscrete engine: {len(signals)} MACD signals")
    for row in signals[:5]:
        print(
            f"  t={row.time:5.1f}  {row['symbol']:>5}  "
            f"short-long diff = {row['diff']:+.4f}"
        )

    # ------------------------------------------------------------------
    # 2. Historical mode: one model, compact segment processing.
    # ------------------------------------------------------------------
    segments = build_segments(
        tuples, attrs=("price",), tolerance=0.02,
        key_fields=("symbol",), constants=("symbol",),
    )
    continuous = to_continuous_plan(planned)
    out_segments = []
    for seg in segments:
        out_segments.extend(continuous.push("trades", seg))
    compression = len(tuples) / len(segments)
    print(
        f"\npulse historical mode: {len(segments)} price segments "
        f"({compression:.0f}x compression), {len(out_segments)} result segments"
    )
    for out in out_segments[:3]:
        mid = 0.5 * (out.t_start + out.t_end)
        print(
            f"  {out.constants.get('symbol', '?'):>5}: crossing during "
            f"[{out.t_start:.1f}, {out.t_end:.1f})s, diff({mid:.1f}) = "
            f"{out.value_at('diff', mid):+.4f}"
        )

    # ------------------------------------------------------------------
    # 3. Validated execution: invert the 1% bound to the inputs and see
    #    how many raw trades can be dropped unprocessed.
    # ------------------------------------------------------------------
    validator = QueryValidator(
        to_continuous_plan(planned),
        ErrorBound(0.01, relative=True),
        splitter="gradient",
        dependencies=collect_dependencies(planned.root),
    )
    # Interleave as a stream processor would: a segment's model becomes
    # active, then the raw trades it covers arrive and are validated.
    for seg in segments:
        validator.ingest("trades", seg)
    for seg in segments:
        validator.activate(seg)
        for tup in tuples:
            if (
                tup["symbol"] == seg.key[0]
                and seg.t_start <= tup.time < seg.t_end
            ):
                validator.validate(
                    (tup["symbol"],), "price", tup.time, tup["price"]
                )
    stats = validator.stats
    print(
        f"\nvalidated execution: {stats.tuples_checked} trades checked, "
        f"{stats.dropped} dropped ({100 * stats.drop_rate:.1f}%), "
        f"{stats.violations} violations, "
        f"{stats.solver_runs} solver runs"
    )


if __name__ == "__main__":
    main()
