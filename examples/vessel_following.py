"""Vessel-following detection over an AIS-style feed — Fig. 9ii's workload.

The paper's query self-joins the vessel stream on distinct ids, computes
pairwise distance, averages it over a long window, and reports pairs
whose long-term separation stays under a threshold.  The continuous path
handles the non-polynomial ``sqrt`` in the distance projection by
re-approximating it per segment (a low-degree least-squares fit — models
as approximations are exactly Pulse's premise).

Run:  python examples/vessel_following.py
"""

from repro import to_continuous_plan, to_discrete_plan
from repro.bench.queries import following_planned
from repro.fitting import build_segments
from repro.workloads import AisConfig, AisVesselGenerator


def main() -> None:
    gen = AisVesselGenerator(
        AisConfig(num_vessels=8, follower_pairs=2, rate=50.0,
                  follow_distance=400.0, course_period=40.0, seed=3)
    )
    tuples = list(gen.tuples(6000))  # two minutes of reports
    print(f"replaying {len(tuples)} AIS reports from 8 vessels")
    print(f"injected follower pairs: {gen.follower_pairs}")

    planned = following_planned(join_window=2.0, avg_window=30.0, slide=5.0)

    # ------------------------------------------------------------------
    # Discrete baseline.
    # ------------------------------------------------------------------
    discrete = to_discrete_plan(planned)
    rows = []
    for tup in tuples:
        rows.extend(discrete.push("vessels", tup))
    rows.extend(discrete.flush())
    discrete_pairs = {
        tuple(sorted((r["id1"], r["id2"]))) for r in rows
    }
    print(f"\ndiscrete engine: {len(rows)} window results, "
          f"pairs flagged: {sorted(discrete_pairs)}")

    # ------------------------------------------------------------------
    # Pulse on fitted trajectory segments.
    # ------------------------------------------------------------------
    segments = build_segments(
        tuples, attrs=("x", "y"), tolerance=2.0,
        key_fields=("id",), constants=("id",),
    )
    continuous = to_continuous_plan(planned)
    out = []
    for seg in segments:
        out.extend(continuous.push("vessels", seg))
    pulse_pairs = {
        tuple(
            sorted((o.constants.get("id1"), o.constants.get("id2")))
        )
        for o in out
    }
    print(
        f"pulse: {len(segments)} trajectory segments "
        f"({len(tuples) / len(segments):.0f}x compression), "
        f"{len(out)} result segments, pairs flagged: {sorted(pulse_pairs)}"
    )

    injected = {tuple(sorted(p)) for p in gen.follower_pairs}
    found_discrete = injected & discrete_pairs
    found_pulse = injected & pulse_pairs
    print(
        f"\ninjected pairs recovered — discrete: {len(found_discrete)}/2, "
        f"pulse: {len(found_pulse)}/2"
    )


if __name__ == "__main__":
    main()
