"""Periodic signals through frequency models — the paper's future work.

Section VII plans support for "frequency models such as Fourier series".
This example monitors a diurnal temperature signal: a Fourier series is
fitted to a day of noisy samples, converted to the piecewise polynomials
Pulse processes, and a threshold query then *predicts* tomorrow's
overheating windows analytically.

Run:  python examples/periodic_sensor.py
"""

import math

import numpy as np

from repro import parse_query, plan_query, to_continuous_plan
from repro.fitting.fourier import (
    conversion_error,
    estimate_period,
    fit_fourier,
    fourier_segments,
    fourier_to_piecewise,
)

QUERY = "select * from sensor where temp > 28"
DAY = 24.0  # hours


def main() -> None:
    # ------------------------------------------------------------------
    # A day of noisy samples from a sensor with a diurnal cycle:
    # 22 C mean, +-7 C swing peaking mid-afternoon, second harmonic.
    # ------------------------------------------------------------------
    rng = np.random.default_rng(4)
    t = np.linspace(0.0, DAY, 24 * 12)  # five-minute samples
    clean = (
        22.0
        + 7.0 * np.sin(2 * math.pi * (t - 9.0) / DAY)
        + 1.5 * np.sin(4 * math.pi * t / DAY)
    )
    samples = clean + rng.normal(0.0, 0.4, t.size)
    print(f"fitted from {t.size} noisy samples over one day")

    # ------------------------------------------------------------------
    # Fit the frequency model and convert to piecewise polynomials.
    # ------------------------------------------------------------------
    period = estimate_period(t, samples)
    print(f"estimated period: {period:.1f} h (true: {DAY} h)")
    model = fit_fourier(t, samples, period=DAY, harmonics=3)
    pieces = fourier_to_piecewise(model, DAY, 2 * DAY)  # tomorrow
    err = conversion_error(model, pieces)
    print(
        f"Fourier model: {model.harmonics} harmonics; converted to "
        f"{len(pieces)} polynomial pieces (conversion error {err:.4f} C)"
    )

    # ------------------------------------------------------------------
    # Predict tomorrow's overheating windows with the threshold query.
    # ------------------------------------------------------------------
    planned = plan_query(parse_query(QUERY))
    query = to_continuous_plan(planned)
    segments = fourier_segments(
        model, "temp", ("roof-sensor",), DAY, 2 * DAY
    )
    alerts = []
    for seg in segments:
        alerts.extend(query.push("sensor", seg))

    print("\npredicted overheating windows tomorrow (temp > 28 C):")
    for alert in alerts:
        peak = max(
            alert.value_at("temp", alert.t_start),
            alert.value_at("temp", 0.5 * (alert.t_start + alert.t_end)),
        )
        print(
            f"  {alert.t_start - DAY:5.2f}h - {alert.t_end - DAY:5.2f}h "
            f"(peak ≈ {peak:.1f} C)"
        )
    total = sum(a.duration for a in alerts)
    print(f"total predicted exposure: {total:.2f} h")

    # Sanity: the true signal exceeds 28 C for a contiguous afternoon
    # stretch; the prediction must land on it.
    true_hot = clean > 28.0
    true_hours = float(np.sum(true_hot)) * (DAY / t.size)
    print(f"ground-truth exposure yesterday: {true_hours:.2f} h")
    assert abs(total - true_hours) < 1.0


if __name__ == "__main__":
    main()
