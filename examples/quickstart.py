"""Quickstart: continuous-time query processing in five minutes.

Builds a tiny piecewise-linear model of a sensor stream by hand, runs a
filter query over it on both processing paths — the discrete baseline
engine on tuples and Pulse's equation-system plan on segments — and
shows they agree while Pulse does a fraction of the work.

Run:  python examples/quickstart.py
"""

from repro import parse_query, plan_query, to_continuous_plan, to_discrete_plan
from repro.core import Polynomial, Segment
from repro.core.operators import OutputSampler
from repro.engine import StreamTuple

QUERY = "select * from sensor where temp > 25"


def main() -> None:
    planned = plan_query(parse_query(QUERY))
    print(f"query: {QUERY.strip()}\n")

    # ------------------------------------------------------------------
    # The continuous path: two model segments instead of 400 tuples.
    # temp ramps 20 -> 30 over [0, 100), then cools 30 -> 22 over
    # [100, 200).  The filter compiles (temp - 25)(t) > 0 and solves it.
    # ------------------------------------------------------------------
    segments = [
        Segment(("probe1",), 0.0, 100.0, {"temp": Polynomial([20.0, 0.1])}),
        Segment(("probe1",), 100.0, 200.0, {"temp": Polynomial([38.0, -0.08])}),
    ]
    continuous = to_continuous_plan(planned)
    outputs = []
    for seg in segments:
        outputs.extend(continuous.push("sensor", seg))

    print("continuous path (2 segments in):")
    for out in outputs:
        print(
            f"  temp > 25 during [{out.t_start:.1f}, {out.t_end:.1f})  "
            f"model: {out.model('temp')!r}"
        )

    # Sample tuples back out of the result models (Section III-C).
    sampler = OutputSampler(period=25.0)
    rows = [row for out in outputs for row in sampler.tuples(out)]
    print("  sampled output tuples:")
    for row in rows:
        print(f"    t={row['time']:6.1f}  temp={row['temp']:.2f}")

    # ------------------------------------------------------------------
    # The discrete path: the same data as 400 raw tuples.
    # ------------------------------------------------------------------
    discrete = to_discrete_plan(planned)
    matches = 0
    for i in range(400):
        t = i * 0.5
        temp = 20.0 + 0.1 * t if t < 100.0 else 38.0 - 0.08 * t
        if discrete.push("sensor", StreamTuple({"time": t, "temp": temp})):
            matches += 1
    print(f"\ndiscrete path (400 tuples in): {matches} tuples passed")

    # Agreement: discrete matches fall inside the continuous ranges.
    total_range = sum(o.t_end - o.t_start for o in outputs)
    print(
        f"continuous result covers {total_range:.1f}s of stream time "
        f"≈ {matches} tuples at 2 Hz — the two paths agree."
    )


if __name__ == "__main__":
    main()
