"""What-if analysis over a historical stream — Pulse's second mode.

Section II-A: offline analysis replays a recorded stream into a large
number of "parameter sweeping" queries (common in finance).  Pulse fits
the continuous-time model *once* and feeds the compact segment stream to
every query, amortizing the modeling cost across the whole sweep.

Here: sweep a trading rule's threshold over a recorded trade feed to
find the threshold maximizing signal selectivity, then compare the cost
against tuple-at-a-time what-if processing.

Run:  python examples/whatif_historical.py
"""

import time

from repro import HistoricalProcessor, parse_query, plan_query, to_discrete_plan
from repro.workloads import NyseConfig, NyseTradeGenerator

#: Alert whenever a stock trades above a what-if threshold.
QUERY_TEMPLATE = "select symbol, price from trades where price > {threshold}"

THRESHOLDS = [60, 70, 80, 90, 100, 110, 120, 130, 140, 150]


def main() -> None:
    gen = NyseTradeGenerator(
        NyseConfig(num_symbols=5, rate=500.0, volatility=2e-4,
                   drift_period=10.0, seed=12)
    )
    tuples = list(gen.tuples(20_000))
    print(f"recorded stream: {len(tuples)} trades, "
          f"{len(THRESHOLDS)} what-if queries\n")

    # ------------------------------------------------------------------
    # Historical mode: model once, run the whole sweep on segments.
    # ------------------------------------------------------------------
    start = time.perf_counter()
    hist = HistoricalProcessor(
        tuples, attrs=("price",), tolerance=0.05,
        key_fields=("symbol",), constant_fields=("symbol",),
    )
    fit_seconds = time.perf_counter() - start
    print(
        f"model fitted once: {hist.segment_count} segments "
        f"({len(tuples) / hist.segment_count:.0f}x compression) "
        f"in {fit_seconds * 1e3:.0f} ms"
    )

    queries = [
        plan_query(parse_query(QUERY_TEMPLATE.format(threshold=c)))
        for c in THRESHOLDS
    ]
    start = time.perf_counter()
    results = hist.run_many(queries)
    sweep_seconds = time.perf_counter() - start

    print(f"\n{'threshold':>9}  {'alert time (s)':>14}  {'segments':>8}")
    for threshold, outs in zip(THRESHOLDS, results):
        covered = sum(o.duration for o in outs)
        print(f"{threshold:9.0f}  {covered:14.1f}  {len(outs):8d}")
    print(
        f"\nwhole sweep on segments: {sweep_seconds * 1e3:.0f} ms "
        f"(+{fit_seconds * 1e3:.0f} ms one-time modeling)"
    )

    # ------------------------------------------------------------------
    # The tuple-at-a-time alternative for comparison.
    # ------------------------------------------------------------------
    start = time.perf_counter()
    for planned in queries[:3]:  # three queries are enough to see the rate
        query = to_discrete_plan(planned)
        for tup in tuples:
            query.push("trades", tup)
    per_query = (time.perf_counter() - start) / 3
    print(
        f"tuple-at-a-time: {per_query * 1e3:.0f} ms per query, "
        f"x{len(THRESHOLDS)} queries ≈ {per_query * len(THRESHOLDS) * 1e3:.0f} ms"
    )
    speedup = per_query * len(THRESHOLDS) / (sweep_seconds + fit_seconds)
    print(f"historical-mode speedup over the sweep: {speedup:.1f}x")


if __name__ == "__main__":
    main()
