"""Collision detection over moving objects — the paper's intro example.

The query joins an object stream with itself and selects pairs whose
distance falls below a threshold.  A standard stream processor compares
many position samples; Pulse solves the trajectory models analytically
and names the exact future time window of each close encounter —
*before* it happens (predictive processing).

Run:  python examples/collision_detection.py
"""

import math

from repro import parse_query, plan_query, to_continuous_plan
from repro.core import Polynomial, Segment

# The intro's query, with distance squared to stay polynomial (the
# parser also accepts abs(distance(...)) < c and rewrites it).
QUERY = """
select from objects R join objects S on (R.id <> S.id)
where pow(R.x - S.x, 2) + pow(R.y - S.y, 2) < 2500
"""


def trajectory(obj_id, t0, t1, x0, y0, vx, vy):
    """A linear motion model segment: position + velocity, as AIS/GPS
    reports provide."""
    return Segment(
        key=(obj_id,),
        t_start=t0,
        t_end=t1,
        models={
            "x": Polynomial([x0 - vx * t0, vx]),
            "y": Polynomial([y0 - vy * t0, vy]),
        },
        constants={"id": obj_id},
    )


def main() -> None:
    planned = plan_query(parse_query(QUERY))
    query = to_continuous_plan(planned)

    # Three aircraft-like objects over the next 120 seconds:
    #  - alpha flies east, bravo flies west on a crossing course;
    #  - charlie is far away and stays far away.
    objects = [
        trajectory("alpha", 0, 120, x0=0.0, y0=0.0, vx=10.0, vy=0.0),
        trajectory("bravo", 0, 120, x0=1000.0, y0=10.0, vx=-10.0, vy=0.0),
        trajectory("charlie", 0, 120, x0=0.0, y0=5000.0, vx=3.0, vy=3.0),
    ]

    print("trajectories:")
    for seg in objects:
        vx = seg.model("x").derivative()(0.0)
        vy = seg.model("y").derivative()(0.0)
        print(
            f"  {seg.constants['id']:>7}: from "
            f"({seg.value_at('x', 0):7.1f}, {seg.value_at('y', 0):7.1f}) "
            f"at velocity ({vx:+.1f}, {vy:+.1f}) m/s"
        )

    alerts = []
    for seg in objects:
        alerts.extend(query.push("objects", seg))

    print("\npredicted close encounters (distance < 50 m):")
    seen = set()
    for alert in alerts:
        pair = tuple(sorted((alert.constants["r.id"], alert.constants["s.id"])))
        window = (round(alert.t_start, 2), round(alert.t_end, 2))
        if (pair, window) in seen:
            continue  # the self-join reports each pair twice
        seen.add((pair, window))
        mid = 0.5 * (alert.t_start + alert.t_end)
        dx = alert.model("r.x")(mid) - alert.model("s.x")(mid)
        dy = alert.model("r.y")(mid) - alert.model("s.y")(mid)
        print(
            f"  {pair[0]} <-> {pair[1]}: t in [{window[0]}, {window[1]}) s, "
            f"closest observed ≈ {math.hypot(dx, dy):.1f} m"
        )

    # Verify analytically: alpha and bravo close at relative speed
    # 20 m/s from 1000 m apart; |gap| < sqrt(2500 - 100) = 49 m around
    # t = 50 s.
    assert any(a.t_start < 50.0 < a.t_end for a in alerts)
    print(
        "\nPulse solved one equation system per pair — no position "
        "samples were compared."
    )


if __name__ == "__main__":
    main()
