"""Setup shim enabling legacy editable installs in offline environments.

The environment has no ``wheel`` package and no network access, so the
PEP 517 editable path (which shells out to ``bdist_wheel``) fails; the
legacy ``setup.py develop`` path used by
``pip install -e . --no-use-pep517`` works without it.  All metadata lives
in ``pyproject.toml``.
"""

from setuptools import setup

setup()
