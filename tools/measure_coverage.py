"""Stdlib line-coverage measurement for the tier-1 suite.

CI enforces a coverage floor via pytest-cov (``--cov-fail-under``); this
tool exists to *recalibrate* that floor from an environment that has no
coverage packages installed.  It traces only files under ``src/repro``
(the tracer returns ``None`` for every other code object, so third-party
and test code pay nothing per line), then reports::

    executed lines / executable lines

where the denominator is every line that appears in a line table of a
code object compiled from the package's sources — close to coverage.py's
statement universe, so the two numbers track within a point or two.

Usage::

    PYTHONPATH=src python tools/measure_coverage.py [pytest args...]

Prints a per-package summary and the total percentage; the CI floor in
``.github/workflows/ci.yml`` should be this total minus a two-point
regression allowance.
"""

from __future__ import annotations

import os
import sys
import threading
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC_PREFIX = str(REPO / "src" / "repro") + os.sep

_executed: dict[str, set[int]] = {}


def _tracer(frame, event, arg):
    filename = frame.f_code.co_filename
    if not filename.startswith(SRC_PREFIX):
        return None  # never pay per-line cost outside the package
    if event == "line":
        _executed.setdefault(filename, set()).add(frame.f_lineno)
    return _tracer


def _executable_lines(path: Path) -> set[int]:
    """Every line in any code object compiled from ``path``."""
    try:
        code = compile(path.read_text(), str(path), "exec")
    except SyntaxError:
        return set()
    lines: set[int] = set()
    stack = [code]
    while stack:
        obj = stack.pop()
        lines.update(
            line for _, _, line in obj.co_lines() if line is not None
        )
        stack.extend(
            c for c in obj.co_consts if hasattr(c, "co_lines")
        )
    return lines


def main(argv: list[str]) -> int:
    import pytest

    threading.settrace(_tracer)
    sys.settrace(_tracer)
    try:
        exit_code = pytest.main(["-x", "-q", *argv])
    finally:
        sys.settrace(None)
        threading.settrace(None)
    if exit_code != 0:
        print("test run failed; coverage numbers would be meaningless")
        return int(exit_code)

    total_exec = total_possible = 0
    rows = []
    for path in sorted((REPO / "src" / "repro").rglob("*.py")):
        possible = _executable_lines(path)
        if not possible:
            continue
        hit = _executed.get(str(path), set()) & possible
        rows.append((str(path.relative_to(REPO)), len(hit), len(possible)))
        total_exec += len(hit)
        total_possible += len(possible)

    width = max(len(r[0]) for r in rows)
    for name, hit, possible in rows:
        print(f"{name:<{width}}  {hit:>5}/{possible:<5} "
              f"{100.0 * hit / possible:6.1f}%")
    pct = 100.0 * total_exec / total_possible
    print(f"\nTOTAL {total_exec}/{total_possible} lines = {pct:.1f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
