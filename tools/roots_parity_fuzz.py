#!/usr/bin/env python
"""Fuzz the closed-form kernel ladder against the companion eigensolve.

The dispatch ladder in :mod:`repro.core.batch_solver` sends degree-3/4
rows through the Cardano/Ferrari kernels and everything at degree >= 5
through the stacked companion eigensolve.  Both paths share the Newton
polish / residual filter / dedupe tail, so for every row the final root
list must agree to tight tolerance regardless of which kernel produced
the candidates.  This script is that contract as a fuzzer:

* random dense polynomials of degree 1..6 at coefficient scales from
  1e-3 to 1e8 (the trig/radical cubic branches and the Ferrari vs
  biquadratic quartic branches all get exercised);
* constructed repeated and near-multiple roots (the branches where
  naive formulas lose digits);
* trailing-zero monomial gaps (rows whose effective degree drops after
  the batch pops exact zeros);
* scalar-vs-batch parity: ``real_roots`` must agree with a one-row
  ``real_roots_rows`` call exactly, since the scalar path delegates
  degree-3/4 work to the batch.

Rows with **near-multiple roots are held to a weaker contract**: at a
multiplicity-``k`` root a coefficient perturbation of ``eps`` moves
the root by ``eps**(1/k)``, so the two kernels can legitimately
disagree on both position and *count* (a tangential double root sits
on the residual filter's knife edge).  For those rows — detected via a
``np.roots`` referee cluster-gap test — the check is containment: every
root either path reports must lie near a true root cluster.  Rows with
well-separated roots get the strict list-equality comparison.

Exit status 0 when every comparison agrees, 1 with a per-case report
otherwise.  CI runs this as the blocking ``roots-parity`` job.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.batch_solver import SOLVER_CONFIG, real_roots_rows
from repro.core.polynomial import Polynomial
from repro.core.roots import real_roots

DOMAIN = (-10.0, 10.0)
SCALES = (1e-3, 1.0, 1e3, 1e8)
#: Relative tolerance for cross-kernel root agreement after polish.
REL_TOL = 1e-7
#: A row whose true roots (np.roots referee) come closer than this
#: (relative) is "clustered": conditioning, not the kernel, bounds
#: agreement there.
CLUSTER_TOL = 1e-3
#: On clustered rows every reported root must still sit within this
#: (relative) of a true root — divergence beyond conditioning fails.
LOOSE_TOL = 1e-2


def _random_rows(n: int, seed: int) -> list[list[float]]:
    """Ascending-coefficient rows covering the ladder's branch space."""
    rng = np.random.default_rng(seed)
    rows: list[list[float]] = []
    while len(rows) < n:
        kind = len(rows) % 4
        degree = int(rng.integers(1, 7))
        scale = float(SCALES[int(rng.integers(0, len(SCALES)))])
        if kind == 0:
            # Dense random coefficients at the chosen scale.
            coeffs = (rng.normal(0.0, 1.0, degree + 1) * scale).tolist()
            if coeffs[-1] == 0.0:
                coeffs[-1] = scale
        elif kind == 1:
            # Product of linear factors: known real roots in-domain,
            # including exact repeats (multiplicity 2).
            roots = rng.uniform(DOMAIN[0], DOMAIN[1], max(degree, 1))
            if degree >= 2 and rng.random() < 0.5:
                roots[1] = roots[0]
            p = Polynomial([scale])
            for r in roots:
                p = p * Polynomial([-float(r), 1.0])
            coeffs = list(p.coeffs)
        elif kind == 2:
            # Near-multiple roots: a cluster separated by ~1e-7.
            base = float(rng.uniform(DOMAIN[0], DOMAIN[1]))
            eps = 1e-7 * float(rng.uniform(0.5, 2.0))
            p = Polynomial([scale])
            for k in range(max(degree, 2)):
                p = p * Polynomial([-(base + k * eps), 1.0])
            coeffs = list(p.coeffs)
        else:
            # Monomial gaps: zero out interior/trailing coefficients so
            # the batch's exact-zero popping changes effective degree.
            coeffs = (rng.normal(0.0, 1.0, degree + 1) * scale).tolist()
            for idx in rng.integers(0, degree + 1, size=degree // 2 + 1):
                coeffs[int(idx)] = 0.0
            if all(c == 0.0 for c in coeffs):
                coeffs[0] = scale
        rows.append([float(c) for c in coeffs])
    return rows


def _solve(rows: list[list[float]], closed_form: bool) -> list[list[float]]:
    saved = SOLVER_CONFIG.closed_form
    SOLVER_CONFIG.closed_form = closed_form
    try:
        return real_roots_rows([(r, *DOMAIN) for r in rows])
    finally:
        SOLVER_CONFIG.closed_form = saved


def _agree(a: list[float], b: list[float]) -> bool:
    if len(a) != len(b):
        return False
    return all(
        abs(x - y) <= REL_TOL * max(1.0, abs(x), abs(y))
        for x, y in zip(a, b)
    )


def _referee_roots(coeffs: list[float]) -> np.ndarray:
    """All complex roots per ``np.roots`` (descending input)."""
    desc = list(reversed(coeffs))
    while desc and desc[0] == 0.0:
        desc.pop(0)
    if len(desc) < 2:
        return np.empty(0, dtype=complex)
    return np.roots(desc)


def _is_clustered(true_roots: np.ndarray) -> bool:
    for i in range(len(true_roots)):
        for j in range(i + 1, len(true_roots)):
            gap = abs(true_roots[i] - true_roots[j])
            if gap <= CLUSTER_TOL * max(1.0, abs(true_roots[i])):
                return True
    return False


def _contained(roots: list[float], true_roots: np.ndarray) -> bool:
    """Every reported root lies within LOOSE_TOL of some true root."""
    return all(
        any(
            abs(r - t) <= LOOSE_TOL * max(1.0, abs(r))
            for t in true_roots
        )
        for r in roots
    )


def run(n: int, seed: int) -> int:
    rows = _random_rows(n, seed)
    closed = _solve(rows, closed_form=True)
    eig = _solve(rows, closed_form=False)
    failures = 0
    clustered_rows = 0
    for i, (coeffs, c_roots, e_roots) in enumerate(zip(rows, closed, eig)):
        if _agree(c_roots, e_roots):
            continue
        true_roots = _referee_roots(coeffs)
        if _is_clustered(true_roots):
            # Conditioning-bound row: both paths must stay near the
            # true cluster, but count/position parity is not owed.
            clustered_rows += 1
            if _contained(c_roots, true_roots) and _contained(
                e_roots, true_roots
            ):
                continue
        failures += 1
        print(
            f"[cross-kernel] row {i}: coeffs={coeffs}\n"
            f"  closed-form: {c_roots}\n"
            f"  eigval:      {e_roots}",
            file=sys.stderr,
        )
    # Scalar-vs-batch: exact equality, the scalar path delegates.
    scalar_failures = 0
    for i, (coeffs, batch_roots) in enumerate(zip(rows, closed)):
        if all(c == 0.0 for c in coeffs[1:]):
            continue  # constant rows: scalar API rejects degree 0
        s_roots = real_roots(Polynomial(coeffs), *DOMAIN)
        if s_roots != batch_roots:
            scalar_failures += 1
            print(
                f"[scalar-vs-batch] row {i}: coeffs={coeffs}\n"
                f"  scalar: {s_roots}\n"
                f"  batch:  {batch_roots}",
                file=sys.stderr,
            )
    print(
        f"roots-parity fuzz: {n} rows, seed {seed} — "
        f"{failures} cross-kernel mismatches, "
        f"{scalar_failures} scalar-vs-batch mismatches "
        f"({clustered_rows} clustered rows held to containment)"
    )
    return 1 if failures or scalar_failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=400, help="rows to fuzz")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    return run(args.n, args.seed)


if __name__ == "__main__":
    raise SystemExit(main())
