"""Subscription scaling: shared-plan fan-out vs per-instance baseline.

The shared-plan runtime serves every subscription to a (query, mode)
from ONE operator graph solved at the tightest subscribed bound; the
pre-refactor server materialized a full per-(query, mode, bound)
instance — its own registration, fitting builders and solve work — per
subscriber.  This benchmark measures both economies on an identical
workload at growing subscription counts:

* **shared** — one :class:`~repro.server.bridge.EngineBridge`,
  ``N_QUERIES`` standing queries, ``n`` subscriptions fanned out over
  the shared graphs (bounds drawn from a strictly increasing ladder so
  the first subscriber per query is the tightest — no mid-run
  retargets, the steady-state economics);
* **baseline** — the old model reconstructed faithfully: one runtime,
  one registration + dedicated builders per subscription.

Recorded to ``BENCH_subscription_scaling.json``: per-count row-solve
counts, tracemalloc peaks and wall times for both sides, plus headline
growth ratios.  The run **fails** unless

* every subscriber's delivered stream is bit-exact with the baseline
  instance at its query's tightest bound (in-run parity — a recorded
  number always describes a correct fan-out),
* shared solve work stays ~flat while subscriptions grow
  (sub-linear growth), and
* the baseline does ≥ ``MIN_SOLVE_ADVANTAGE``× the shared solve work
  at the largest count.

``REPRO_BENCH_SMOKE=1`` shrinks the workload for CI.
"""

from __future__ import annotations

import os
import sys
import time
import tracemalloc
from collections import defaultdict
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from harness import record_result  # noqa: E402

from repro.core.solve_cache import (  # noqa: E402
    reset_global_solve_cache,
    reset_worker_root_cache,
)
from repro.core.transform import TransformedQuery, to_continuous_plan  # noqa: E402
from repro.engine.metrics import get_counter, reset_counters  # noqa: E402
from repro.engine.scheduler import QueryRuntime  # noqa: E402
from repro.engine.tuples import StreamTuple  # noqa: E402
from repro.fitting.model_builder import StreamModelBuilder  # noqa: E402
from repro.query import parse_query, plan_query  # noqa: E402
from repro.server.bridge import EngineBridge, FitSpec  # noqa: E402

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
N_QUERIES = 8 if SMOKE else 24
SUB_COUNTS = (16, 64) if SMOKE else (64, 256, 1056)
TUPLES_PER_KEY = 20 if SMOKE else 40
KEYS = ("k0", "k1")
#: Bounds ladder: ``BASE_BOUND * (1 + j/n)`` for subscription ``j`` —
#: strictly increasing, so subscription ``j == query_index`` is its
#: query's tightest and the shared graph never retargets mid-run.
BASE_BOUND = 0.02
MIN_SOLVE_ADVANTAGE = 2.0 if SMOKE else 4.0
FIT = FitSpec(attrs=("x",), key_fields=("id",))


def query_text(i: int) -> str:
    return f"select * from s{i} where x > 0"


def bound(j: int, n: int) -> float:
    return BASE_BOUND * (1.0 + j / n)


def make_tuples(i: int) -> list[StreamTuple]:
    """Deterministic per-stream trace: exact linear zig-zag pieces.

    Four collinear points, then a drop — every fourth point forces a
    segment cut at any tolerance in the bench's bound ladder, so solve
    work per instance is substantial and identical across bounds.
    """
    out = []
    for key_idx, key in enumerate(KEYS):
        for j in range(TUPLES_PER_KEY):
            x = (j % 4) * 0.8 + 0.1 * i + 2.0 * key_idx
            out.append(
                StreamTuple(
                    {"time": 0.5 * j, "id": key, "x": float(x)}
                )
            )
    return out


TUPLES = {i: make_tuples(i) for i in range(N_QUERIES)}
ROW_SOLVES = get_counter("equation_system.row_solves")


def canon(outputs) -> list:
    return [
        (
            s.key,
            s.t_start,
            s.t_end,
            {a: p.coeffs for a, p in sorted(s.models.items())},
            tuple(sorted(s.constants.items())),
        )
        for s in outputs
    ]


def _reset() -> None:
    reset_global_solve_cache()
    reset_worker_root_cache()
    reset_counters()


def run_shared(n_subs: int) -> dict:
    """n subscriptions over N_QUERIES shared graphs, one bridge."""
    _reset()
    delivered: dict[int, list] = defaultdict(list)

    def on_outputs(subscribers, info, outputs):
        for sub_id, _cursor in subscribers:
            delivered[sub_id].extend(outputs)

    bridge = EngineBridge(on_outputs=on_outputs)
    bridge.start()
    sub_query: dict[int, int] = {}
    try:
        solves0 = ROW_SOLVES.value
        tracemalloc.start()
        t0 = time.perf_counter()
        for i in range(N_QUERIES):
            bridge.register_query(f"q{i}", query_text(i), FIT).result()
        for j in range(n_subs):
            qi = j % N_QUERIES
            bridge.subscribe(
                j + 1, f"q{qi}", "continuous", bound(j, n_subs)
            ).result()
            sub_query[j + 1] = qi
        for i in range(N_QUERIES):
            bridge.ingest(None, f"s{i}", TUPLES[i]).result()
        bridge.flush().result()
        wall = time.perf_counter() - t0
        _current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        solves = ROW_SOLVES.value - solves0
        stats = bridge.stats().result()
        n_graphs = len(stats["graphs"])
    finally:
        bridge.stop()
    return {
        "wall_s": wall,
        "row_solves": solves,
        "peak_bytes": peak,
        "graphs": n_graphs,
        "delivered": {k: canon(v) for k, v in delivered.items()},
        "sub_query": sub_query,
    }


def run_baseline(n_subs: int) -> dict:
    """The per-instance economics: one registration + dedicated
    builders per subscription, exactly as the pre-shared-plan bridge
    materialized them (one runtime, namespaced streams)."""
    _reset()
    planned = {
        i: plan_query(parse_query(query_text(i)))
        for i in range(N_QUERIES)
    }
    rt = QueryRuntime()
    per_query: dict[int, list] = defaultdict(list)
    outputs: dict[str, list] = {}
    try:
        solves0 = ROW_SOLVES.value
        tracemalloc.start()
        t0 = time.perf_counter()
        for j in range(n_subs):
            qi = j % N_QUERIES
            name = f"q{qi}~c@{j}"
            compiled = to_continuous_plan(planned[qi])
            stream = f"s{qi}"
            namespaced = TransformedQuery(
                compiled.plan,
                {f"{name}/{stream}": compiled.stream_sources[stream]},
                sample_period=compiled.sample_period,
                inferred_period=compiled.inferred_period,
                error_bound=compiled.error_bound,
            )
            rt.register(name, namespaced)
            builder = StreamModelBuilder(
                FIT.attrs,
                bound(j, n_subs),
                key_fields=FIT.key_fields,
                constants=FIT.effective_constants,
            )
            per_query[qi].append((name, builder))
            outputs[name] = []
        for i in range(N_QUERIES):
            for tup in TUPLES[i]:
                for name, builder in per_query[i]:
                    for seg in builder.add(tup):
                        rt.enqueue(f"{name}/s{i}", seg)
            rt.run_until_idle()
            for name, _builder in per_query[i]:
                outputs[name].extend(rt.outputs(name))
        for i in range(N_QUERIES):
            for name, builder in per_query[i]:
                for seg in builder.finish():
                    rt.enqueue(f"{name}/s{i}", seg)
        rt.run_until_idle()
        for name_list in per_query.values():
            for name, _builder in name_list:
                outputs[name].extend(rt.outputs(name))
        wall = time.perf_counter() - t0
        _current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        solves = ROW_SOLVES.value - solves0
    finally:
        rt.close()
    return {
        "wall_s": wall,
        "row_solves": solves,
        "peak_bytes": peak,
        "outputs": {k: canon(v) for k, v in outputs.items()},
    }


def assert_parity(n_subs: int, shared: dict, base: dict) -> int:
    """Every subscriber's stream == the baseline instance at its
    query's tightest bound (subscription ``j == qi`` is the tightest,
    and the shared graph solves at exactly that bound)."""
    checked = 0
    for sub_id, qi in shared["sub_query"].items():
        ref = base["outputs"][f"q{qi}~c@{qi}"]
        got = shared["delivered"].get(sub_id, [])
        if got != ref:
            raise SystemExit(
                f"PARITY FAILURE at n={n_subs}: subscription {sub_id} "
                f"(query q{qi}) diverged from the tightest-bound "
                f"baseline instance ({len(got)} vs {len(ref)} outputs)"
            )
        if not ref:
            raise SystemExit(
                f"VACUOUS PARITY at n={n_subs}: query q{qi} produced "
                f"no outputs — the workload is not exercising solves"
            )
        checked += 1
    return checked


def main() -> None:
    rows = []
    for n in SUB_COUNTS:
        shared = run_shared(n)
        base = run_baseline(n)
        checked = assert_parity(n, shared, base)
        rows.append(
            {
                "subscriptions": n,
                "queries": N_QUERIES,
                "shared_graphs": shared["graphs"],
                "parity_checked_subscriptions": checked,
                "shared_row_solves": shared["row_solves"],
                "baseline_row_solves": base["row_solves"],
                "shared_peak_mb": shared["peak_bytes"] / 1e6,
                "baseline_peak_mb": base["peak_bytes"] / 1e6,
                "shared_wall_s": shared["wall_s"],
                "baseline_wall_s": base["wall_s"],
            }
        )
        print(
            f"n={n:5d}  solves shared={shared['row_solves']:8d} "
            f"baseline={base['row_solves']:8d}  "
            f"peak shared={shared['peak_bytes']/1e6:7.2f}MB "
            f"baseline={base['peak_bytes']/1e6:7.2f}MB  "
            f"wall shared={shared['wall_s']:6.2f}s "
            f"baseline={base['wall_s']:6.2f}s"
        )

    first, last = rows[0], rows[-1]
    sub_growth = last["subscriptions"] / first["subscriptions"]
    solve_growth = (
        last["shared_row_solves"] / max(1, first["shared_row_solves"])
    )
    mem_growth = last["shared_peak_mb"] / first["shared_peak_mb"]
    solve_advantage = last["baseline_row_solves"] / max(
        1, last["shared_row_solves"]
    )
    mem_advantage = last["baseline_peak_mb"] / last["shared_peak_mb"]

    # Sub-linearity gates: shared work must grow far slower than the
    # subscription count (it is ~flat — the graphs do the same work
    # regardless of fan-out).
    if solve_growth > 1.5:
        raise SystemExit(
            f"shared solve count grew {solve_growth:.2f}x over a "
            f"{sub_growth:.1f}x subscription growth — not sub-linear"
        )
    if mem_growth > sub_growth / 2:
        raise SystemExit(
            f"shared memory grew {mem_growth:.2f}x over a "
            f"{sub_growth:.1f}x subscription growth — not sub-linear"
        )
    if solve_advantage < MIN_SOLVE_ADVANTAGE:
        raise SystemExit(
            f"baseline/shared solve ratio {solve_advantage:.2f}x at "
            f"n={last['subscriptions']} — expected ≥ "
            f"{MIN_SOLVE_ADVANTAGE}x"
        )

    metrics = {
        "smoke": SMOKE,
        "sub_counts": list(SUB_COUNTS),
        "rows": rows,
        "max_subscriptions": last["subscriptions"],
        "shared_solve_growth": solve_growth,
        "shared_mem_growth": mem_growth,
        "subscription_growth": sub_growth,
        "solve_advantage_at_max": solve_advantage,
        "mem_advantage_at_max": mem_advantage,
        "wall_time_s": sum(
            r["shared_wall_s"] + r["baseline_wall_s"] for r in rows
        ),
        "speedup": last["baseline_wall_s"] / last["shared_wall_s"],
    }
    path = record_result("subscription_scaling", metrics)
    print(f"recorded {path}")
    print(
        f"n={last['subscriptions']}: solve advantage "
        f"{solve_advantage:.1f}x, memory advantage "
        f"{mem_advantage:.1f}x, shared solve growth "
        f"{solve_growth:.2f}x over {sub_growth:.1f}x subscriptions"
    )


if __name__ == "__main__":
    main()
