"""Fig. 7ii — join processing cost vs stream rate.

The paper: total tuple-based join cost grows quadratically with the
stream rate (each tuple is compared against a window's worth of the
opposite stream, and the window holds rate x 0.1s tuples), while Pulse's
cost stays low — validation is linear in the number of model
coefficients, independent of rate.
"""

from __future__ import annotations

import time

from repro.bench import (
    FIG7II_JOIN_WINDOW,
    FIG7II_RATES,
    MICRO_PRECISION,
    Series,
    best_of,
    fast_validate_loop,
    format_table,
    growth_ratio,
    is_roughly_flat,
    model_table,
)
from repro.core.expr import Attr
from repro.core.operators import ContinuousJoin
from repro.core.predicate import Comparison
from repro.core.relation import Rel
from repro.engine import DiscreteNestedLoopJoin
from repro.fitting import build_segments
from repro.workloads import MovingObjectConfig, MovingObjectGenerator

PREDICATE = Comparison(Attr("L.x"), Rel.LT, Attr("R.x"))
DURATION = 4.0  # seconds of stream per measurement


def _workload(rate: float):
    n = int(rate * DURATION)
    gen = MovingObjectGenerator(
        MovingObjectConfig(
            num_objects=4, rate=rate, tuples_per_segment=rate / 4.0, seed=46
        )
    )
    tuples = list(gen.tuples(n))
    left = [t for t in tuples if int(t["id"][3:]) % 2 == 0]
    right = [t for t in tuples if int(t["id"][3:]) % 2 == 1]
    seg_left = build_segments(
        left, attrs=("x",), tolerance=1e-6, key_fields=("id",), constants=("id",)
    )
    seg_right = build_segments(
        right, attrs=("x",), tolerance=1e-6, key_fields=("id",), constants=("id",)
    )
    return left, right, seg_left, seg_right


def _interleave(a, b, key):
    merged = sorted(
        [(key(x), 0, x) for x in a] + [(key(x), 1, x) for x in b],
        key=lambda e: (e[0], e[1]),
    )
    return [(port, item) for _, port, item in merged]


def _discrete_cost(left, right) -> float:
    op = DiscreteNestedLoopJoin(PREDICATE, window=FIG7II_JOIN_WINDOW)
    feed = _interleave(left, right, lambda t: t.time)
    start = time.perf_counter()
    for port, tup in feed:
        op.process(tup, port)
    n = len(left) + len(right)
    return (time.perf_counter() - start) / n


def _pulse_cost(left, right, seg_left, seg_right) -> float:
    op = ContinuousJoin(PREDICATE, window=FIG7II_JOIN_WINDOW)
    feed = _interleave(seg_left, seg_right, lambda s: s.t_start)
    bound_abs = MICRO_PRECISION * 1000.0
    start = time.perf_counter()
    for port, seg in feed:
        op.process(seg, port)
    fast_validate_loop(left, model_table(seg_left, "x"), "x", bound_abs)
    fast_validate_loop(right, model_table(seg_right, "x"), "x", bound_abs)
    n = len(left) + len(right)
    return (time.perf_counter() - start) / n


def run_sweep():
    tuple_series = Series("tuple us/tuple")
    pulse_series = Series("pulse us/tuple")
    for rate in FIG7II_RATES:
        left, right, seg_left, seg_right = _workload(rate)
        tuple_series.add(
            rate, 1e6 * best_of(lambda: _discrete_cost(left, right), repeats=2)
        )
        pulse_series.add(
            rate,
            1e6
            * best_of(
                lambda: _pulse_cost(left, right, seg_left, seg_right), repeats=2
            ),
        )
    return tuple_series, pulse_series


def test_fig7ii_join_cost_vs_rate(benchmark, report):
    tuple_series, pulse_series = benchmark.pedantic(
        run_sweep, rounds=1, iterations=1
    )
    xs = tuple_series.xs
    table = format_table(
        "stream rate (t/s)", xs, [tuple_series, pulse_series], y_format="{:.2f}"
    )
    report(
        "fig7ii_join_rate",
        table
        + f"\ncost growth over the sweep — tuple: "
        f"{growth_ratio(tuple_series.ys):.1f}x, "
        f"pulse: {growth_ratio(pulse_series.ys):.1f}x",
    )
    benchmark.extra_info["tuple_growth"] = growth_ratio(tuple_series.ys)

    # Per-tuple discrete cost grows ~linearly with rate (so the total
    # cost is quadratic, as the paper verified at higher rates).
    assert growth_ratio(tuple_series.ys) > 4.0
    # Pulse's per-tuple overhead never grows with rate (if anything it
    # falls: the fixed per-segment cost is amortized over more tuples).
    assert growth_ratio(pulse_series.ys) < 1.5
    assert all(p < t for p, t in zip(pulse_series.ys[2:], tuple_series.ys[2:]))
