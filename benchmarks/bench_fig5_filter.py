"""Fig. 5i — filter microbenchmark: throughput vs tuples/segment.

The paper: a continuous-time filter must amortize its equation-system
solve over many tuples because the discrete filter's per-tuple work is
tiny; Pulse becomes viable only at a high model expressiveness
(~1050 tuples/segment on their testbed).  We reproduce the *shape*: the
discrete filter is flat in tuples/segment, Pulse's throughput grows with
it, and the crossover sits far to the right compared to the aggregate
and join microbenchmarks (Figs. 5ii/5iii).
"""

from __future__ import annotations

import time

from repro.bench import (
    FIG5_TPS_SWEEP,
    MICRO_PRECISION,
    MICRO_WORKLOAD,
    Series,
    best_of,
    crossover,
    fast_validate_loop,
    format_table,
    model_table,
)
from repro.core.expr import Attr, Const
from repro.core.operators import ContinuousFilter
from repro.core.predicate import Comparison
from repro.core.relation import Rel
from repro.engine import DiscreteFilter
from repro.fitting import build_segments
from repro.workloads import MovingObjectConfig, MovingObjectGenerator

PREDICATE = Comparison(Attr("x"), Rel.GT, Const(0.0))


def _workload(tuples_per_segment: int, n: int):
    gen = MovingObjectGenerator(
        MovingObjectConfig(
            num_objects=5,
            rate=10_000.0,
            tuples_per_segment=tuples_per_segment,
            seed=42,
        )
    )
    tuples = list(gen.tuples(n))
    segments = build_segments(
        tuples, attrs=("x",), tolerance=1e-6,
        key_fields=("id",), constants=("id",),
    )
    return tuples, segments


def _discrete_run(tuples) -> float:
    op = DiscreteFilter(PREDICATE)
    start = time.perf_counter()
    for tup in tuples:
        op.process(tup)
    return time.perf_counter() - start


def _pulse_run(tuples, segments, bound_abs: float) -> float:
    """Solve once per segment; validate (and drop) every tuple."""
    op = ContinuousFilter(PREDICATE)
    start = time.perf_counter()
    for seg in segments:
        op.process(seg)
    table = model_table(segments, "x")
    fast_validate_loop(tuples, table, "x", bound_abs)
    return time.perf_counter() - start


def run_sweep(n: int = MICRO_WORKLOAD):
    tuple_series = Series("tuple t/s")
    pulse_series = Series("pulse t/s")
    for tps in FIG5_TPS_SWEEP:
        tuples, segments = _workload(tps, n)
        bound_abs = MICRO_PRECISION * 1000.0  # 1% of the position scale
        tuple_series.add(tps, n / best_of(lambda: _discrete_run(tuples)))
        pulse_series.add(
            tps, n / best_of(lambda: _pulse_run(tuples, segments, bound_abs))
        )
    return tuple_series, pulse_series


def test_fig5i_filter_microbenchmark(benchmark, report):
    tuple_series, pulse_series = benchmark.pedantic(
        run_sweep, rounds=1, iterations=1
    )
    xs = tuple_series.xs
    table = format_table(
        "tuples/segment", xs, [tuple_series, pulse_series], y_format="{:.0f}"
    )
    cross = crossover(xs, pulse_series.ys, tuple_series.ys)
    report(
        "fig5i_filter",
        table
        + f"\ncrossover (pulse >= tuple): {cross if cross else '> sweep'} tuples/segment",
    )
    benchmark.extra_info["crossover_tps"] = cross

    # Shape assertions (paper: filter needs a strong model fit).
    assert pulse_series.ys[0] < tuple_series.ys[0], (
        "at 1 tuple/segment the discrete filter must win"
    )
    assert pulse_series.ys[-1] > tuple_series.ys[-1], (
        "at high tuples/segment Pulse must win"
    )
    assert cross is not None and cross > 2.0, (
        "the filter crossover must sit well above the join's (~1.45)"
    )
    # Pulse throughput grows strongly with model expressiveness.
    assert pulse_series.ys[-1] > 3.0 * pulse_series.ys[0]
