"""Chaos smoke for CI: the Fig. 5 filter benchmark under solver faults.

Runs the moving-object filter workload through the resilient runtime
with a configurable fraction of solves failing, then asserts the
acceptance criteria from the resilience issue:

* nonzero query output (the discrete fallback keeps answering),
* zero uncaught exceptions (the run completing *is* the assertion),
* breaker transitions visible in the metrics registry,
* >= 95% of affected keys recovered once the fault window ends.

Deliberately named without the ``bench_`` prefix so pytest's benchmark
collection never picks it up; CI runs it as a script:

    PYTHONPATH=src python benchmarks/chaos_smoke_fig5.py --rate 0.05
"""

from __future__ import annotations

import argparse
import sys

from repro.core.transform import to_continuous_plan
from repro.engine.lowering import to_discrete_plan
from repro.engine.metrics import counter_snapshot
from repro.engine.resilience import BreakerConfig
from repro.engine.scheduler import QueryRuntime
from repro.fitting import build_segments
from repro.query import parse_query, plan_query
from repro.testing import inject_solver_faults
from repro.workloads import MovingObjectConfig, MovingObjectGenerator


def run(rate: float, n: int, tuples_per_segment: int, seed: int) -> int:
    gen = MovingObjectGenerator(
        MovingObjectConfig(
            num_objects=5,
            rate=10_000.0,
            tuples_per_segment=tuples_per_segment,
            seed=42,
        )
    )
    tuples = list(gen.tuples(n))
    segments = build_segments(
        tuples, attrs=("x",), tolerance=1e-6,
        key_fields=("id",), constants=("id",),
    )
    p = plan_query(parse_query("select * from s where x > 0"))
    rt = QueryRuntime(
        batch_size=16,
        breaker=BreakerConfig(failure_threshold=1, backoff=2),
    )
    rt.register("q", to_continuous_plan(p), fallback=to_discrete_plan(p))

    half = len(segments) // 2
    with inject_solver_faults(rate=rate, seed=seed) as stats:
        for seg in segments[:half]:
            rt.enqueue("s", seg)
        rt.run_until_idle()
    # Fault window over: drive probes with the rest of the trace.
    for seg in segments[half:]:
        rt.enqueue("s", seg)
    rt.run_until_idle()

    outputs = rt.outputs("q")
    res = rt.resilience_stats()
    recovered = rt.breaker.recovered_fraction()
    print(f"segments fed:        {len(segments)}")
    print(f"faults injected:     {stats.injected} "
          f"(rate {stats.observed_rate:.3f} over {stats.calls} solves)")
    print(f"step errors:         {res['step_errors']}")
    print(f"fallback items:      {res['fallback_items']['q']}")
    print(f"outputs produced:    {len(outputs)}")
    print(f"breaker snapshot:    {res.get('breaker')}")
    print(f"recovered fraction:  {recovered:.3f}")
    print(f"breaker counters:    {counter_snapshot('resilience.breaker')}")

    failures = []
    if stats.injected == 0 and rate > 0:
        failures.append("no faults were injected")
    if not outputs:
        failures.append("no query output produced")
    if rt.total_pending:
        failures.append(f"{rt.total_pending} items left unprocessed")
    if recovered < 0.95:
        failures.append(f"recovered fraction {recovered:.3f} < 0.95")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("chaos smoke passed")
    return 1 if failures else 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--rate", type=float, default=0.05,
                    help="solver fault injection rate (default 0.05)")
    ap.add_argument("--tuples", type=int, default=2000,
                    help="workload size in tuples")
    ap.add_argument("--tuples-per-segment", type=int, default=25)
    ap.add_argument("--seed", type=int, default=7,
                    help="fault injector seed")
    args = ap.parse_args()
    return run(args.rate, args.tuples, args.tuples_per_segment, args.seed)


if __name__ == "__main__":
    raise SystemExit(main())
