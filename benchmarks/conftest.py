"""Shared fixtures for the figure-reproduction benchmarks.

Each benchmark reproduces one table/figure of the paper: it measures the
relevant series, writes the rendered table to ``benchmarks/results/``,
echoes it to stdout, and asserts the paper's *shape* (who wins, rough
factors, crossover ordering).  Absolute numbers are Python-scale, not
2006-C++-scale; EXPERIMENTS.md records both.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def report(results_dir):
    """Callable writing a figure's rendered table to disk and stdout."""

    def _report(figure: str, text: str) -> None:
        path = results_dir / f"{figure}.txt"
        path.write_text(text + "\n")
        sys.stdout.write(f"\n=== {figure} ===\n{text}\n")

    return _report
