"""CI server smoke: replay a CSV trace through the socket, check parity.

Writes a 200-tuple moving-objects trace to disk with
:func:`~repro.workloads.write_trace` (plus a few deliberately damaged
rows appended), replays it through a live server with
:func:`~repro.workloads.read_trace` feeding
:class:`~repro.server.client.PulseClient`, and asserts:

* the damaged rows were skipped at the CSV boundary (never sent);
* the server's results are bit-exact against an in-process execution
  of the same query over the same replayed tuples, in both modes;
* the server and engine threads shut down cleanly.

Exit code 0 on success; any failure raises.  This is the CI
``server-smoke`` job's entry point, kept importless of pytest so it
doubles as a local sanity command::

    PYTHONPATH=src python benchmarks/server_smoke_trace.py
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from repro.core.transform import to_continuous_plan
from repro.engine.lowering import to_discrete_plan
from repro.engine.metrics import get_counter
from repro.engine.tuples import StreamTuple
from repro.fitting.model_builder import StreamModelBuilder
from repro.query import parse_query, plan_query
from repro.server import PulseClient, ServerConfig, ServerThread
from repro.server.protocol import serialize_results
from repro.workloads import (
    MovingObjectConfig,
    MovingObjectGenerator,
    read_trace,
    write_trace,
)

QUERY = "select * from objects where x > 0"
STREAM = "objects"
FIT = {"attrs": ["x", "y"], "key_fields": ["id"]}
N = 200
BOUND = 0.05


def build_trace(path: Path) -> None:
    gen = MovingObjectGenerator(MovingObjectConfig(rate=float(N), seed=7))
    write_trace(path, gen.tuples(N), ("time", "id", "x", "y"))
    with path.open("a") as f:  # damage the tail: replay must shrug
        f.write("9.0,objX,nan,1.0\n")
        f.write("9.1,objX,inf,1.0\n")
        f.write("9.2,objX\n")


def main() -> int:
    skipped = get_counter("replay.skipped_rows")
    nonfinite = get_counter("replay.nonfinite_rows")
    skipped.reset()
    nonfinite.reset()
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "smoke.csv"
        build_trace(trace_path)
        tuples = [dict(t) for t in read_trace(trace_path)]
    assert len(tuples) == N, f"expected {N} clean tuples, got {len(tuples)}"
    assert skipped.value == 3 and nonfinite.value == 2, (
        f"damage counters wrong: skipped={skipped.value} "
        f"nonfinite={nonfinite.value}"
    )

    # in-process references
    dq = to_discrete_plan(plan_query(parse_query(QUERY)))
    d_ref = []
    for tup in tuples:
        d_ref.extend(dq.push(STREAM, StreamTuple(tup)))
    d_ref.extend(dq.flush())
    d_ref = serialize_results(d_ref)

    builder = StreamModelBuilder(
        tuple(FIT["attrs"]), BOUND,
        key_fields=tuple(FIT["key_fields"]),
        constants=tuple(FIT["key_fields"]),
    )
    cq = to_continuous_plan(plan_query(parse_query(QUERY)))
    c_ref = []
    for tup in tuples:
        for seg in builder.add(StreamTuple(tup)):
            c_ref.extend(cq.push(STREAM, seg))
    for seg in builder.finish():
        c_ref.extend(cq.push(STREAM, seg))
    c_ref = serialize_results(c_ref)

    with ServerThread(ServerConfig(), [("q", QUERY, None)]) as handle:
        with PulseClient("127.0.0.1", handle.port) as client:
            client.connect()
            client.register("qc", QUERY, fit=FIT)
            d_sub = client.subscribe("q", mode="discrete")
            c_sub = client.subscribe("qc", mode="continuous",
                                     error_bound=BOUND)
            ack = client.ingest(STREAM, tuples)
            assert ack["accepted"] == N, ack
            assert ack["rejected"] == 0, ack
            client.flush()
            d_got = client.drain_results(d_sub["subscription"])
            c_got = client.drain_results(c_sub["subscription"])
    # exiting both context managers IS the clean-shutdown assertion:
    # ServerThread.stop raises if either thread fails to join

    assert d_got == d_ref, (
        f"discrete parity failure: {len(d_got)} vs {len(d_ref)} results"
    )
    assert c_got == c_ref, (
        f"continuous parity failure: {len(c_got)} vs {len(c_ref)} segments"
    )
    print(
        f"server smoke ok: {N} tuples replayed from trace "
        f"(3 damaged rows skipped at the CSV boundary), "
        f"{len(d_got)} discrete results and {len(c_got)} segments "
        f"bit-exact, clean shutdown"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
