"""Fig. 8 — historical aggregate processing: throughput vs offered rate.

The paper: replaying a recorded stream through a min aggregate (60 s
window, 2 s slide), tuple processing saturates around 15,000 t/s and
tails off as queues exhaust memory; segment processing (online model
fitting + continuous aggregation) keeps scaling past it; model fitting
alone (the inset) saturates higher still (~40,000 t/s), proving the
modeling operator is not the bottleneck.

We measure each path's real service time in Python, then drive the
bounded-memory queueing model across an offered-rate sweep scaled to the
measured tuple capacity — reproducing the saturation *ordering* and the
tail-off shape rather than 2006 hardware numbers.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench import Series, best_of, format_table
from repro.core.operators import ContinuousExtremumAggregate
from repro.engine import DiscreteWindowAggregate, QueueingModel
from repro.fitting import StreamModelBuilder
from repro.workloads import MovingObjectConfig, MovingObjectGenerator

#: Window/slide ratio follows the paper (60 s / 2 s = 30 open windows).
WINDOW = 0.6
SLIDE = 0.02
N_TUPLES = 12_000
FIT_TOLERANCE = 0.5


def _workload():
    gen = MovingObjectGenerator(
        MovingObjectConfig(
            num_objects=5, rate=10_000.0, tuples_per_segment=200,
            noise=0.05, seed=47,
        )
    )
    return list(gen.tuples(N_TUPLES))


def _tuple_service_time(tuples) -> float:
    op = DiscreteWindowAggregate("x", "min", window=WINDOW, slide=SLIDE)
    start = time.perf_counter()
    for tup in tuples:
        op.process(tup)
    op.flush()
    return (time.perf_counter() - start) / len(tuples)


def _segment_service_time(tuples) -> float:
    """Online fitting + continuous aggregation, per input tuple."""
    builder = StreamModelBuilder(
        ("x",), FIT_TOLERANCE, key_fields=("id",), constants=("id",)
    )
    op = ContinuousExtremumAggregate("x", func="min", window=WINDOW, slide=SLIDE)
    start = time.perf_counter()
    for tup in tuples:
        for seg in builder.add(tup):
            op.process(seg)
    for seg in builder.finish():
        op.process(seg)
    return (time.perf_counter() - start) / len(tuples)


def _modeling_service_time(tuples) -> float:
    builder = StreamModelBuilder(
        ("x",), FIT_TOLERANCE, key_fields=("id",), constants=("id",)
    )
    start = time.perf_counter()
    for tup in tuples:
        builder.add(tup)
    builder.finish()
    return (time.perf_counter() - start) / len(tuples)


def run_experiment():
    tuples = _workload()
    st_tuple = best_of(lambda: _tuple_service_time(tuples), repeats=2)
    st_segment = best_of(lambda: _segment_service_time(tuples), repeats=2)
    st_model = best_of(lambda: _modeling_service_time(tuples), repeats=2)

    cap_tuple = 1.0 / st_tuple
    # Offered rates: 0.2x .. 2.0x of the tuple path's capacity, echoing
    # the paper's 3000-30000 sweep around its 15000 t/s saturation.
    rates = [cap_tuple * f for f in np.linspace(0.2, 2.0, 10)]
    queue_cap = 25_000.0  # the 1.5 GB page pool, in queued-tuple units

    series = {}
    for name, st in (
        ("tuple", st_tuple), ("segment", st_segment), ("modeling", st_model)
    ):
        model = QueueingModel(st, queue_capacity=queue_cap)
        s = Series(f"{name} t/s")
        for rate in rates:
            s.add(rate, model.offered(rate, duration=30.0).achieved_throughput)
        series[name] = s
    return rates, series, {
        "tuple": cap_tuple,
        "segment": 1.0 / st_segment,
        "modeling": 1.0 / st_model,
    }


def test_fig8_historical_throughput(benchmark, report):
    rates, series, capacities = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    table = format_table(
        "offered t/s", rates, list(series.values()), y_format="{:.0f}"
    )
    caps = "  ".join(f"{k}={v:,.0f} t/s" for k, v in capacities.items())
    report("fig8_historical", table + f"\nmeasured capacities: {caps}")
    benchmark.extra_info["capacities"] = capacities

    # Saturation ordering: the segment path scales well past the tuple
    # path, and is itself bounded by its modeling component (per-segment
    # aggregation cost is negligible next to fitting, so segment and
    # modeling capacities agree to measurement noise).
    assert capacities["segment"] > 1.5 * capacities["tuple"]
    assert capacities["segment"] <= capacities["modeling"] * 1.5
    # Fig. 8's inset claim: modeling alone is comfortably above the
    # aggregate paths (paper: ~40k vs ~15k, a ~2.7x gap; require > 1.5x).
    assert capacities["modeling"] > 1.5 * capacities["tuple"]
    # The tuple path tails off within the sweep: its achieved throughput
    # at the top offered rate is below its own capacity.
    tuple_final = series["tuple"].ys[-1]
    assert tuple_final < capacities["tuple"] * 1.01
    assert rates[-1] > capacities["tuple"]
    # Segment processing still keeps up where the tuple path saturates.
    idx = next(i for i, r in enumerate(rates) if r > capacities["tuple"])
    assert series["segment"].ys[idx] > series["tuple"].ys[idx]
