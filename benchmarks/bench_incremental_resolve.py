"""Incremental delta re-solve benchmark: update-heavy trace, A/B by knob.

The trace is the regime the incremental path exists for: few keys, many
*re-confirmations*.  Each per-key epoch is one genuine model refit
(fresh coefficients over a full window) followed by ``EPOCH_LEN - 1``
re-emissions of the **same** coefficients over narrowing windows — the
shape Pulse's fitter produces when arriving tuples validate against the
live model (Section II-A).  The join's right side re-fits once per
epoch, so re-confirmed left content probes unchanged partners.

The same trace runs through the same queries twice: with the
``incremental`` solver knob off (full re-solve of every probe) and on
(content-addressed solution stores serve re-confirmed probes above the
equation-system layer).  The run asserts, before reporting any timing:

* **bit-exact output parity** between the two modes, and
* a **row-solve reduction of at least** ``RATIO_FLOOR``x — the
  incremental path must eliminate the re-confirmation solves, not just
  shave constants.

A second experiment replays the shard-scaling benchmark's trace (model
coefficients persisting across ``REFIT_EVERY`` arrivals) in *default*
mode and records the solve-cache cold misses, pinning the cache-reuse
benefit model persistence provides even without the knob.

Results land in ``benchmarks/results/BENCH_incremental_resolve.json``
via the harness.  Runnable standalone::

    PYTHONPATH=src python benchmarks/bench_incremental_resolve.py

``REPRO_BENCH_SMOKE=1`` shrinks the trace (all asserts still run).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from harness import record_result  # noqa: E402

from repro.core.batch_solver import incremental_mode
from repro.core.polynomial import Polynomial
from repro.core.segment import Segment
from repro.core.solve_cache import (
    reset_global_solve_cache,
    reset_worker_root_cache,
)
from repro.core.transform import to_continuous_plan
from repro.engine.metrics import counter_snapshot, reset_counters
from repro.engine.scheduler import QueryRuntime
from repro.query import parse_query, plan_query

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

KEYS = ("aapl", "ibm")
FILT_SQL = "select * from ticks where x > 1"
JOIN_SQL = (
    "select from ticks T join quotes Q "
    "on (T.sym = Q.sym and T.x > Q.y)"
)
#: Arrivals per epoch: one refit + (EPOCH_LEN - 1) re-confirmations.
EPOCH_LEN = 8
#: Window geometry: a refit covers [s, s + DURATION); re-confirmation
#: ``j`` covers [s + j * STEP, s + DURATION) — same content, narrowing
#: window, exactly what a validated prediction re-emits.
DURATION = 4.0
STEP = 0.25
EPOCHS = 6 if SMOKE else 40
ROUNDS = 1 if SMOKE else 3
SEED = 11
#: Acceptance floor: the incremental path must do at least this many
#: times fewer row solves than the full path on this trace.
RATIO_FLOOR = 3.0
#: PR-7 recorded solve-cache cold misses on the shard-scaling trace
#: (fresh coefficients every arrival, 256 rows/key).  The persistence
#: experiment must come in below it (full-size runs only).
PR7_COLD_MISSES = 3067


def make_trace(epochs: int = EPOCHS, seed: int = SEED):
    """Update-heavy two-stream trace: refit epochs of re-confirmations."""
    import random

    rng = random.Random(seed)
    events = []
    for e in range(epochs):
        for k in KEYS:
            s = e * DURATION
            c1 = [rng.uniform(-2, 2) for _ in range(3)]
            c2 = [rng.uniform(-2, 2) for _ in range(3)]
            # The join's right side: one refit per epoch, full window.
            events.append(
                ("quotes", Segment((k,), s, s + DURATION,
                                   {"y": Polynomial(c2)},
                                   constants={"sym": k}))
            )
            # The left side: a refit, then re-confirmations of the same
            # model over narrowing windows.
            for j in range(EPOCH_LEN):
                start = s + j * STEP
                events.append(
                    ("ticks", Segment((k,), start, s + DURATION,
                                      {"x": Polynomial(c1)},
                                      constants={"sym": k}))
                )
    return events


def canon(outputs):
    """Value-level view of an output stream (ids/lineage excluded)."""
    return [
        (
            s.key,
            s.t_start,
            s.t_end,
            {a: p.coeffs for a, p in sorted(s.models.items())},
            tuple(sorted(s.constants.items())),
        )
        for s in outputs
    ]


def run_once(events, incremental: bool):
    """One full trace through a fresh runtime under the given mode."""
    reset_global_solve_cache()
    reset_worker_root_cache()
    reset_counters()
    with incremental_mode(incremental):
        rt = QueryRuntime()
        try:
            rt.register(
                "filt", to_continuous_plan(plan_query(parse_query(FILT_SQL)))
            )
            rt.register(
                "join", to_continuous_plan(plan_query(parse_query(JOIN_SQL)))
            )
            t0 = time.perf_counter()
            for stream, seg in events:
                rt.enqueue(stream, seg)
            rt.run_until_idle()
            elapsed = time.perf_counter() - t0
            outputs = {
                name: canon(rt.outputs(name)) for name in rt.query_names
            }
        finally:
            rt.close()
    counters = dict(counter_snapshot("equation_system"))
    counters.update(counter_snapshot("delta"))
    return elapsed, outputs, counters


def measure_scaling_trace_cold_misses() -> dict:
    """Solve-cache misses on the shard-scaling trace, default mode.

    The scaling trace's model persistence (coefficients refit every
    ``REFIT_EVERY`` arrivals) makes repeated interior-pair probes exact
    solve-cache repeats even with the incremental knob off; this pins
    the resulting cold-miss count against the PR-7 baseline, which was
    recorded on a fresh-coefficients-every-arrival trace.
    """
    from bench_scaling_shards import ROWS, make_trace as scaling_trace
    from bench_scaling_shards import run_once as scaling_run

    _, _, _, _ = scaling_run(1, scaling_trace(ROWS))  # warm = measured run
    cache = counter_snapshot("solve_cache")
    return {
        "scaling_trace_rows_per_key": ROWS,
        "scaling_trace_cold_misses": cache.get("solve_cache.misses", 0),
        "scaling_trace_cache_hits": cache.get("solve_cache.hits", 0),
        "pr7_cold_misses_baseline": PR7_COLD_MISSES,
    }


def run_experiment(epochs: int = EPOCHS, rounds: int = ROUNDS) -> dict:
    events = make_trace(epochs)
    results = {}
    baseline = None
    for incremental in (False, True):
        best = float("inf")
        counters = {}
        for _ in range(rounds):
            elapsed, outputs, counters = run_once(events, incremental)
            best = min(best, elapsed)
            if baseline is None:
                baseline = outputs
            else:
                assert outputs == baseline, (
                    "incremental outputs diverge from full re-solve"
                )
        results[incremental] = {"wall_time_s": best, "counters": counters}

    full = results[False]
    incr = results[True]
    full_solves = full["counters"].get("equation_system.row_solves", 0)
    incr_solves = incr["counters"].get("equation_system.row_solves", 0)
    ratio = full_solves / incr_solves if incr_solves else float("inf")
    metrics = {
        "keys": len(KEYS),
        "epochs": epochs,
        "epoch_len": EPOCH_LEN,
        "events": len(events),
        "rounds_best_of": rounds,
        "output_segments": sum(len(v) for v in (baseline or {}).values()),
        "parity": True,  # asserted above, both rounds and modes
        "row_solves_full": full_solves,
        "row_solves_incremental": incr_solves,
        "row_solve_ratio": round(ratio, 2),
        "wall_time_full_s": round(full["wall_time_s"], 4),
        "wall_time_s": round(incr["wall_time_s"], 4),
        "speedup": round(full["wall_time_s"] / incr["wall_time_s"], 3),
        "throughput_items_per_s": round(
            len(events) / incr["wall_time_s"], 1
        ),
        "delta_store_hits": incr["counters"].get("delta.store.hits", 0),
        "delta_store_misses": incr["counters"].get("delta.store.misses", 0),
        "delta_store_seam_rejects": incr["counters"].get(
            "delta.store.seam_rejects", 0
        ),
        "delta_changes_refit": incr["counters"].get(
            "delta.changes.refit", 0
        ),
        "delta_changes_reemitted": incr["counters"].get(
            "delta.changes.reemitted", 0
        ),
        "smoke": SMOKE,
    }
    metrics.update(measure_scaling_trace_cold_misses())
    return metrics


def test_incremental_resolve(benchmark, report):
    r = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    lines = [
        f"trace: {r['events']} events, {r['keys']} keys x {r['epochs']} "
        f"epochs of {r['epoch_len']} (1 refit + "
        f"{r['epoch_len'] - 1} re-confirmations)",
        f"output segments: {r['output_segments']} "
        f"(bit-exact across modes)",
        f"row solves: full={r['row_solves_full']} "
        f"incremental={r['row_solves_incremental']} "
        f"({r['row_solve_ratio']:.1f}x fewer)",
        f"wall: full={r['wall_time_full_s']:.3f}s "
        f"incremental={r['wall_time_s']:.3f}s "
        f"({r['speedup']:.2f}x)",
        f"store: {r['delta_store_hits']} hits, "
        f"{r['delta_store_misses']} misses, "
        f"{r['delta_store_seam_rejects']} seam rejects",
        f"scaling-trace cold misses (default mode, persistent "
        f"models): {r['scaling_trace_cold_misses']} "
        f"(PR-7 baseline {r['pr7_cold_misses_baseline']})",
    ]
    report("incremental_resolve", "\n".join(lines))
    benchmark.extra_info.update(r)
    record_result("incremental_resolve", r)
    assert r["parity"]
    assert r["row_solve_ratio"] >= RATIO_FLOOR, (
        f"incremental row-solve reduction {r['row_solve_ratio']:.2f}x "
        f"below the {RATIO_FLOOR}x floor"
    )
    if not SMOKE:
        assert r["scaling_trace_cold_misses"] < PR7_COLD_MISSES, (
            "model persistence did not reduce solve-cache cold misses "
            f"below the PR-7 baseline ({PR7_COLD_MISSES})"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--epochs", type=int, default=EPOCHS,
                        help="refit epochs per key")
    parser.add_argument("--rounds", type=int, default=ROUNDS,
                        help="best-of-N timing rounds")
    args = parser.parse_args(argv)
    r = run_experiment(epochs=args.epochs, rounds=args.rounds)
    path = record_result("incremental_resolve", r)
    print(
        f"row solves: full={r['row_solves_full']} "
        f"incremental={r['row_solves_incremental']} "
        f"({r['row_solve_ratio']:.1f}x fewer)"
    )
    print(
        f"wall: full={r['wall_time_full_s']:.3f}s "
        f"incremental={r['wall_time_s']:.3f}s ({r['speedup']:.2f}x)"
    )
    print(
        f"scaling-trace cold misses: {r['scaling_trace_cold_misses']} "
        f"(PR-7 baseline {r['pr7_cold_misses_baseline']})"
    )
    print(f"parity: {r['parity']}  recorded: {path}")
    if r["row_solve_ratio"] < RATIO_FLOOR:
        print(f"FAIL: row-solve ratio below {RATIO_FLOOR}x floor")
        return 1
    if not SMOKE and r["scaling_trace_cold_misses"] >= PR7_COLD_MISSES:
        print("FAIL: cold misses not below PR-7 baseline")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
