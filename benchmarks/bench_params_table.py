"""Fig. 6 — the experimental-parameters table, regenerated.

A bookkeeping benchmark: renders the parameter table the paper lists and
checks that the concrete sweep constants used by the sibling benchmarks
stay on the paper's axes.
"""

from __future__ import annotations

from repro.bench import (
    FIG5_TPS_SWEEP,
    FIG7II_RATES,
    FIG7I_WINDOWS,
    FIG8_RATES,
    FIG9III_PRECISIONS,
    FIG9II_RATES,
    FIG9I_RATES,
    MICRO_PRECISION,
    PARAMS_TABLE,
    format_params_table,
)


def test_fig6_parameter_table(benchmark, report):
    text = benchmark.pedantic(format_params_table, rounds=1, iterations=1)
    report("fig6_params", text)

    # The table covers every experiment family of Section V.
    experiments = {row.experiment for row in PARAMS_TABLE}
    for token in ("Filter", "Aggregate", "Join"):
        assert any(token in e for e in experiments)
    assert any("NYSE" in e for e in experiments)
    assert any("AIS" in e for e in experiments)

    # Concrete sweeps stay on the paper's axes.
    assert MICRO_PRECISION == 0.01
    assert min(FIG7I_WINDOWS) == 10 and max(FIG7I_WINDOWS) == 100
    assert min(FIG7II_RATES) == 100 and max(FIG7II_RATES) == 900
    assert min(FIG8_RATES) == 3000 and max(FIG8_RATES) == 30000
    assert min(FIG9I_RATES) == 3000 and max(FIG9I_RATES) == 8500
    assert min(FIG9II_RATES) == 200 and max(FIG9II_RATES) == 6000
    assert min(FIG9III_PRECISIONS) == 0.001
    assert max(FIG9III_PRECISIONS) == 0.2
    assert len(FIG5_TPS_SWEEP) >= 8
