"""Ablation — segmentation algorithm choice for model fitting.

The paper uses the online sliding-window algorithm [13] for historical
model fitting; Keogh et al. also define bottom-up (offline, best
quality) and SWAB (online, near-bottom-up quality).  This ablation runs
all three on the same NYSE-like price trace at equal tolerance and
compares compactness (pieces per 1000 points — fewer pieces means fewer
solver invocations downstream) and fitting cost.
"""

from __future__ import annotations

import time

from repro.bench import best_of
from repro.fitting import (
    bottom_up_segmentation,
    sliding_window_segmentation,
    swab_segmentation,
)
from repro.workloads import NyseConfig, NyseTradeGenerator

N_POINTS = 1500
TOLERANCE = 0.05


def _signal():
    gen = NyseTradeGenerator(
        NyseConfig(num_symbols=1, rate=100.0, volatility=2e-3,
                   drift_period=3.0, seed=53)
    )
    tuples = list(gen.tuples(N_POINTS))
    return [t["time"] for t in tuples], [t["price"] for t in tuples]


ALGOS = {
    "sliding": sliding_window_segmentation,
    "bottom-up": bottom_up_segmentation,
    "swab": swab_segmentation,
}


def run_experiment():
    times, values = _signal()
    results = {}
    for name, algo in ALGOS.items():
        def fit():
            start = time.perf_counter()
            pieces = algo(times, values, TOLERANCE)
            return time.perf_counter() - start, pieces

        elapsed, pieces = fit()
        elapsed = best_of(lambda: fit()[0], repeats=2)
        results[name] = {
            "pieces": len(pieces),
            "seconds": elapsed,
            "max_error": max(p.max_error for p in pieces),
        }
    return results


def test_ablation_segmentation_algorithms(benchmark, report):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    lines = [
        f"{name:>9}: {r['pieces']:4d} pieces, {r['seconds']*1e3:8.1f} ms, "
        f"max residual {r['max_error']:.4f}"
        for name, r in results.items()
    ]
    report("ablation_segmentation", "\n".join(lines))
    benchmark.extra_info["results"] = results

    # All respect the tolerance.
    for r in results.values():
        assert r["max_error"] <= TOLERANCE + 1e-9
    # The three algorithms land in the same compactness ballpark (the
    # classic bottom-up quality edge holds for SSE cost; under the
    # max-residual criterion Pulse uses, no strict ordering is
    # guaranteed, so we check comparability, not dominance).
    best = min(r["pieces"] for r in results.values())
    for name, r in results.items():
        assert r["pieces"] <= 2.5 * best, name
    # Each algorithm achieves real compression over raw points.
    for r in results.values():
        assert r["pieces"] < N_POINTS / 5
