"""Fig. 5iii — join microbenchmark: throughput vs tuples/segment.

The paper: the nested-loop sliding-window join performs a number of
comparisons quadratic in the stream rate, so the continuous join wins
almost immediately — from ~1.45 tuples/segment at a 0.1 s window.  We
reproduce the shape: the join crossover is dramatically below both the
aggregate's (~120-180) and the filter's (~1050).
"""

from __future__ import annotations

import time

from repro.bench import (
    MICRO_PRECISION,
    Series,
    best_of,
    crossover,
    fast_validate_loop,
    format_table,
    model_table,
)
from repro.core.expr import Attr
from repro.core.operators import ContinuousJoin
from repro.core.predicate import Comparison
from repro.core.relation import Rel
from repro.engine import DiscreteNestedLoopJoin
from repro.fitting import build_segments
from repro.workloads import MovingObjectConfig, MovingObjectGenerator

#: Paper's join window (seconds).
JOIN_WINDOW = 0.1

#: Smaller sweep: the discrete join is quadratic, keep runtimes sane.
TPS_SWEEP = (1, 2, 3, 5, 10, 25, 50, 100)

PREDICATE = Comparison(Attr("L.x"), Rel.LT, Attr("R.x"))


def _workload(tuples_per_segment: int, n: int):
    """Two position streams: objects split by parity into L and R."""
    gen = MovingObjectGenerator(
        MovingObjectConfig(
            num_objects=4,
            rate=2000.0,
            tuples_per_segment=tuples_per_segment,
            seed=44,
        )
    )
    tuples = list(gen.tuples(n))
    left = [t for t in tuples if int(t["id"][3:]) % 2 == 0]
    right = [t for t in tuples if int(t["id"][3:]) % 2 == 1]
    seg_left = build_segments(
        left, attrs=("x",), tolerance=1e-6, key_fields=("id",), constants=("id",)
    )
    seg_right = build_segments(
        right, attrs=("x",), tolerance=1e-6, key_fields=("id",), constants=("id",)
    )
    return left, right, seg_left, seg_right


def _interleave(a, b, key):
    merged = sorted(
        [(key(x), 0, x) for x in a] + [(key(x), 1, x) for x in b],
        key=lambda e: (e[0], e[1]),
    )
    return [(port, item) for _, port, item in merged]


def _discrete_run(left, right) -> float:
    op = DiscreteNestedLoopJoin(PREDICATE, window=JOIN_WINDOW)
    feed = _interleave(left, right, lambda t: t.time)
    start = time.perf_counter()
    for port, tup in feed:
        op.process(tup, port)
    return time.perf_counter() - start


def _pulse_run(left, right, seg_left, seg_right, bound_abs) -> float:
    op = ContinuousJoin(PREDICATE, window=JOIN_WINDOW)
    feed = _interleave(seg_left, seg_right, lambda s: s.t_start)
    start = time.perf_counter()
    for port, seg in feed:
        op.process(seg, port)
    table_l = model_table(seg_left, "x")
    table_r = model_table(seg_right, "x")
    fast_validate_loop(left, table_l, "x", bound_abs)
    fast_validate_loop(right, table_r, "x", bound_abs)
    return time.perf_counter() - start


def run_sweep(n: int = 1600):
    bound_abs = MICRO_PRECISION * 1000.0
    tuple_series = Series("tuple t/s")
    pulse_series = Series("pulse t/s")
    for tps in TPS_SWEEP:
        left, right, seg_left, seg_right = _workload(tps, n)
        tuple_series.add(
            tps, n / best_of(lambda: _discrete_run(left, right), repeats=2)
        )
        pulse_series.add(
            tps,
            n
            / best_of(
                lambda: _pulse_run(left, right, seg_left, seg_right, bound_abs),
                repeats=2,
            ),
        )
    return tuple_series, pulse_series


def test_fig5iii_join_microbenchmark(benchmark, report):
    tuple_series, pulse_series = benchmark.pedantic(
        run_sweep, rounds=1, iterations=1
    )
    xs = tuple_series.xs
    table = format_table(
        "tuples/segment", xs, [tuple_series, pulse_series], y_format="{:.0f}"
    )
    cross = crossover(xs, pulse_series.ys, tuple_series.ys)
    report(
        "fig5iii_join",
        table
        + f"\ncrossover (pulse >= tuple): {cross if cross else '> sweep'} tuples/segment",
    )
    benchmark.extra_info["crossover_tps"] = cross

    # Paper: the join crossover is tiny (~1.45 tuples/segment); ours
    # must land far below the aggregate (~16-33) and filter (~37)
    # crossovers measured by the sibling benchmarks.
    assert cross is not None and cross <= 10.0
    # At moderate expressiveness Pulse wins decisively.
    assert pulse_series.ys[-1] > 2.0 * tuple_series.ys[-1]
