"""Ablation — slack validation on vs off (Section IV).

After a null result, accuracy validation is undefined; without the slack
mechanism every subsequent tuple would force the solver to re-run "just
in case".  With slack, tuples are ignored until they leave the slack
range.  This ablation runs the predictive processor over a stream that
produces no results and counts solver executions both ways.
"""

from __future__ import annotations

import numpy as np

from repro.core.modes import PredictiveProcessor
from repro.core.validation import ErrorBound
from repro.engine.tuples import StreamTuple
from repro.query import parse_expression, parse_query, plan_query

#: x stays near -50; the filter wants x > 0: permanently null.
SQL = "select * from objects where x > 0"
N_TUPLES = 2_000


def _processor(slack_validation: bool) -> PredictiveProcessor:
    planned = plan_query(parse_query(SQL))
    return PredictiveProcessor(
        planned,
        model_exprs={"x": parse_expression("x + vx * t")},
        horizon=100.0,
        bound=ErrorBound(0.5),
        key_fields=("id",),
        constant_fields=("id",),
        slack_validation=slack_validation,
    )


def run_experiment(seed: int = 54):
    rng = np.random.default_rng(seed)
    tuples = [
        StreamTuple(
            {
                "time": i * 0.01,
                "id": "a",
                "x": -50.0 + rng.normal(0.0, 1.0),
                "vx": 0.0,
            }
        )
        for i in range(N_TUPLES)
    ]
    results = {}
    for name, slack_on in (("slack on", True), ("slack off", False)):
        proc = _processor(slack_on)
        for tup in tuples:
            proc.process_tuple(tup)
        results[name] = {
            "solver_runs": proc.stats.models_built,
            "dropped": proc.stats.tuples_dropped,
        }
    return results


def test_ablation_slack_validation(benchmark, report):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    lines = [
        f"{name:>10}: {r['solver_runs']:5d} solver runs, "
        f"{r['dropped']:5d} tuples dropped"
        for name, r in results.items()
    ]
    report("ablation_slack", "\n".join(lines))
    benchmark.extra_info["results"] = results

    on = results["slack on"]
    off = results["slack off"]
    # With slack, the solver runs only a handful of times over a
    # permanently-null stream; without it, on (nearly) every tuple.
    assert on["solver_runs"] <= N_TUPLES * 0.05
    assert off["solver_runs"] >= N_TUPLES * 0.5
    assert on["solver_runs"] < off["solver_runs"] / 10
