"""Fig. 9i — NYSE MACD query: throughput vs replay rate.

The paper: the tuple-based MACD query tails off around 4000 t/s; the
continuous-time processor (online modeling + segment processing +
validation) scales to ~6500 t/s; historical processing (segments alone,
no modeling or validation on the measured path) scales further still.

The NYSE TAQ trace is proprietary — the synthetic regime-switching trade
feed substitutes for it (see DESIGN.md).  We measure real Python service
times for all three paths over the same workload and drive the queueing
model across an offered-rate sweep scaled to the tuple path's capacity.
"""

from __future__ import annotations

import numpy as np

from repro.bench import (
    Series,
    format_table,
    macd_planned,
    time_historical_path,
    time_pulse_online_path,
    time_tuple_path,
)
from repro.engine import QueueingModel
from repro.fitting import build_segments
from repro.workloads import NyseConfig, NyseTradeGenerator

N_TUPLES = 12_000
FIT_TOLERANCE = 0.05  # dollars; ~0.05% of an $80-130 price


def _workload():
    gen = NyseTradeGenerator(
        NyseConfig(num_symbols=5, rate=500.0, volatility=5e-5,
                   drift_period=20.0, seed=48)
    )
    return list(gen.tuples(N_TUPLES))


def run_experiment():
    tuples = _workload()
    # Windows scaled to the workload's 24 s span; the window/slide
    # ratios (8 and 24 open windows) approach the paper's 5 and 30.
    planned = macd_planned(short=4.0, long=12.0, slide=0.5)

    tuple_run = time_tuple_path(planned, tuples, "trades")
    pulse_run = time_pulse_online_path(
        planned, tuples, "trades",
        attrs=("price",), tolerance=FIT_TOLERANCE,
        key_fields=("symbol",), constants=("symbol",), bound=0.01,
    )
    segments = build_segments(
        tuples, attrs=("price",), tolerance=FIT_TOLERANCE,
        key_fields=("symbol",), constants=("symbol",),
    )
    hist_run = time_historical_path(planned, segments, "trades", len(tuples))

    capacities = {
        "tuple": tuple_run.throughput,
        "pulse": pulse_run.throughput,
        "historical": hist_run.throughput,
    }
    rates = [capacities["tuple"] * f for f in np.linspace(0.3, 2.2, 9)]
    series = {}
    for name, run in (
        ("tuple", tuple_run), ("pulse", pulse_run), ("historical", hist_run)
    ):
        model = QueueingModel(run.service_time, queue_capacity=25_000.0)
        s = Series(f"{name} t/s")
        for rate in rates:
            s.add(rate, model.offered(rate, duration=30.0).achieved_throughput)
        series[name] = s
    outputs = {
        "tuple": tuple_run.outputs,
        "pulse": pulse_run.outputs,
        "historical": hist_run.outputs,
    }
    return rates, series, capacities, outputs


def test_fig9i_nyse_macd_throughput(benchmark, report):
    rates, series, capacities, outputs = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    table = format_table(
        "offered t/s", rates, list(series.values()), y_format="{:.0f}"
    )
    caps = "  ".join(f"{k}={v:,.0f} t/s" for k, v in capacities.items())
    report(
        "fig9i_nyse",
        table + f"\nmeasured capacities: {caps}\noutputs: {outputs}",
    )
    benchmark.extra_info["capacities"] = capacities

    # All three paths produce MACD results.
    assert all(v > 0 for v in outputs.values())
    # Paper's ordering: tuple tails off first, Pulse scales ~1.6x past it
    # (4000 -> 6500), historical scales best.
    assert capacities["pulse"] > 1.3 * capacities["tuple"]
    assert capacities["historical"] > capacities["pulse"]
    # Tail-off: at the top offered rate the tuple path has saturated
    # while Pulse still keeps up or saturates later.
    assert series["tuple"].ys[-1] < rates[-1] * 0.9
    assert series["pulse"].ys[-1] > series["tuple"].ys[-1]
