"""Ablation — join implementation: nested-loop vs hash vs Pulse.

Section V-A's conjecture: "We plan on investigating this result with
other join implementations, such as a hash join or indexed join, but
believe the result will still hold due to the low overhead of validation
compared to the join predicate evaluation."

We test it: an equi-key proximity join runs as (a) the nested-loop
baseline, (b) a hash join bucketed on the key, (c) Pulse on segments
with validation, and (d) Pulse with the future-work interval index on
its state buffers.  The paper's conjecture holds if Pulse still wins
against the hash join.
"""

from __future__ import annotations

import time

from repro.bench import (
    MICRO_PRECISION,
    best_of,
    fast_validate_loop,
    model_table,
)
from repro.core.expr import Attr
from repro.core.operators import ContinuousJoin
from repro.core.predicate import And, Comparison
from repro.core.relation import Rel
from repro.engine import DiscreteHashJoin, DiscreteNestedLoopJoin
from repro.fitting import build_segments
from repro.workloads import MovingObjectConfig, MovingObjectGenerator

WINDOW = 0.1
N_TUPLES = 3000

#: Join pairs same-group objects whose x-positions are ordered.
RESIDUAL = Comparison(Attr("L.x"), Rel.LT, Attr("R.x"))
FULL_PRED = And(
    Comparison(Attr("L.grp"), Rel.EQ, Attr("R.grp")), RESIDUAL
)


def _workload():
    gen = MovingObjectGenerator(
        MovingObjectConfig(num_objects=8, rate=2000.0,
                           tuples_per_segment=100, seed=55)
    )
    tuples = list(gen.tuples(N_TUPLES))
    # Assign a group key so hash bucketing has selectivity; adjacent
    # object pairs share a group, so each group spans both join sides.
    for t in tuples:
        t["grp"] = (int(t["id"][3:]) // 2) % 2
    left = [t for t in tuples if int(t["id"][3:]) % 2 == 0]
    right = [t for t in tuples if int(t["id"][3:]) % 2 == 1]
    seg_kw = dict(
        attrs=("x",), tolerance=1e-6, key_fields=("id",),
        constants=("id", "grp"),
    )
    return left, right, build_segments(left, **seg_kw), build_segments(right, **seg_kw)


def _interleave(a, b, key):
    merged = sorted(
        [(key(x), 0, x) for x in a] + [(key(x), 1, x) for x in b],
        key=lambda e: (e[0], e[1]),
    )
    return [(port, item) for _, port, item in merged]


def _run_discrete(op_factory, left, right) -> float:
    op = op_factory()
    feed = _interleave(left, right, lambda t: t.time)
    start = time.perf_counter()
    for port, item in feed:
        op.process(item, port)
    return time.perf_counter() - start


def _run_pulse(left, right, seg_l, seg_r, indexed: bool) -> float:
    op = ContinuousJoin(
        FULL_PRED,
        window=WINDOW,
        index_cell_width=0.5 if indexed else None,
    )
    feed = _interleave(seg_l, seg_r, lambda s: s.t_start)
    bound_abs = MICRO_PRECISION * 1000.0
    start = time.perf_counter()
    for port, item in feed:
        op.process(item, port)
    fast_validate_loop(left, model_table(seg_l, "x"), "x", bound_abs)
    fast_validate_loop(right, model_table(seg_r, "x"), "x", bound_abs)
    return time.perf_counter() - start


def run_experiment():
    left, right, seg_l, seg_r = _workload()
    n = len(left) + len(right)
    throughputs = {
        "nested-loop": n / best_of(
            lambda: _run_discrete(
                lambda: DiscreteNestedLoopJoin(FULL_PRED, window=WINDOW),
                left, right,
            ),
            repeats=2,
        ),
        "hash": n / best_of(
            lambda: _run_discrete(
                lambda: DiscreteHashJoin(
                    "grp", "grp", residual=RESIDUAL, window=WINDOW
                ),
                left, right,
            ),
            repeats=2,
        ),
        "pulse": n / best_of(
            lambda: _run_pulse(left, right, seg_l, seg_r, indexed=False),
            repeats=2,
        ),
        "pulse+index": n / best_of(
            lambda: _run_pulse(left, right, seg_l, seg_r, indexed=True),
            repeats=2,
        ),
    }
    return throughputs


def test_ablation_join_implementations(benchmark, report):
    throughputs = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    lines = [
        f"{name:>12}: {tps:>10,.0f} t/s" for name, tps in throughputs.items()
    ]
    report("ablation_join_impl", "\n".join(lines))
    benchmark.extra_info["throughputs"] = throughputs

    # Hash join beats nested-loop, as expected of the better baseline.
    assert throughputs["hash"] > throughputs["nested-loop"]
    # The paper's conjecture: Pulse still wins against the hash join.
    assert throughputs["pulse"] > throughputs["hash"]
    # The interval index does not hurt at this (modest) state size.
    assert throughputs["pulse+index"] > 0.5 * throughputs["pulse"]
